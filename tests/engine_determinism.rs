//! Property-based determinism tests for the staged engine: sharded
//! parallel system generation must be *bit-identical* to sequential
//! generation (same run ids, same interned view ids, same tables), and
//! knowledge verdicts must therefore agree point for point regardless of
//! thread or shard count.

use eba_kripke::{Evaluator, Formula, NonRigidSet};
use eba_model::{FailureMode, ProcessorId, Scenario, Time, Value};
use eba_sim::SystemBuilder;
use proptest::prelude::*;

/// Small scenarios covering every failure mode; indexes are stable so a
/// failing case names its scenario reproducibly.
fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for mode in [
        FailureMode::Crash,
        FailureMode::Omission,
        FailureMode::GeneralOmission,
    ] {
        for (n, t, horizon) in [(2usize, 1usize, 2u16), (3, 1, 2), (3, 2, 2)] {
            if let Ok(scenario) = Scenario::new(n, t, mode, horizon) {
                if eba_model::ScenarioSpace::new(scenario).total_runs() < 20_000 {
                    out.push(scenario);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: for any scenario, thread count, and shard
    /// count, the sharded builder reproduces the sequential build exactly —
    /// run records in the same order, the same view table, and the same
    /// view id at every (run, processor, time) slot.
    #[test]
    fn sharded_generation_is_bit_identical_to_sequential(
        idx in 0usize..9,
        threads in 1usize..=4,
        shards in 1usize..=9,
    ) {
        let all = scenarios();
        let scenario = all[idx % all.len()];
        let sequential = SystemBuilder::new(&scenario).threads(1).build().unwrap();
        let sharded = SystemBuilder::new(&scenario)
            .threads(threads)
            .shards(shards)
            .build()
            .unwrap();
        prop_assert_eq!(sequential.num_runs(), sharded.num_runs());
        prop_assert_eq!(sequential.table().len(), sharded.table().len());
        for r in sequential.run_ids() {
            let a = sequential.run(r);
            let b = sharded.run(r);
            prop_assert_eq!(&a.config, &b.config, "config of run {}", r.index());
            prop_assert_eq!(&a.pattern, &b.pattern, "pattern of run {}", r.index());
            prop_assert_eq!(a.nonfaulty, b.nonfaulty);
            for p in ProcessorId::all(scenario.n()) {
                for time in Time::upto(scenario.horizon()) {
                    prop_assert_eq!(
                        sequential.view(r, p, time),
                        sharded.view(r, p, time),
                        "view of {p} at {time} in run {}", r.index()
                    );
                }
            }
        }
    }

    /// End-to-end: knowledge verdicts computed over a sharded build agree
    /// with the sequential build on every point, for formulas exercising
    /// the reachability engine (common and continual common knowledge).
    #[test]
    fn knowledge_verdicts_agree_across_builds(
        idx in 0usize..9,
        threads in 2usize..=4,
        zero in proptest::bool::ANY,
    ) {
        let all = scenarios();
        let scenario = all[idx % all.len()];
        let sequential = SystemBuilder::new(&scenario).threads(1).build().unwrap();
        let sharded = SystemBuilder::new(&scenario).threads(threads).build().unwrap();
        let value = if zero { Value::Zero } else { Value::One };
        let phi = Formula::exists(value);
        let formulas = [
            phi.clone().common(NonRigidSet::Nonfaulty),
            phi.clone().continual_common(NonRigidSet::Nonfaulty),
            phi.believed_by(ProcessorId::new(0), NonRigidSet::Nonfaulty),
        ];
        let mut eval_a = Evaluator::new(&sequential);
        let mut eval_b = Evaluator::new(&sharded);
        for formula in &formulas {
            let a = eval_a.eval(formula);
            let b = eval_b.eval(formula);
            prop_assert_eq!(a.len(), b.len());
            for point in 0..a.len() {
                prop_assert_eq!(
                    a.get(point),
                    b.get(point),
                    "{formula} differs at point {point}"
                );
            }
        }
    }
}
