//! The epistemic-temporal formula language of the paper.
//!
//! Formulas combine:
//!
//! * run-level atoms (`∃0`, `∃1`, initial values, membership in `N`,
//!   registered run predicates);
//! * state atoms ("processor `i`'s current state lies in the registered
//!   state-set family");
//! * Boolean connectives;
//! * knowledge operators: `K_i` (Section 3.1), the belief operator
//!   `B^S_i φ = K_i(i ∈ S ⇒ φ)`, `E_S`, common knowledge `C_S`, and
//!   **continual common knowledge** `C□_S` (Section 3.3);
//! * temporal operators: `□` (always, present and future), `◇`
//!   (eventually), `□̄` (at all times — past, present and future), and its
//!   dual `◇̄`.
//!
//! Formulas are plain data (`Eq + Hash`), so the evaluator can memoize
//! them; references to state sets and run predicates go through ids
//! registered with the [`crate::Evaluator`].

use crate::nonrigid::{NonRigidSet, PointPredId, RunPredId, StateSetsId};
use eba_model::{ProcessorId, Value};
use std::fmt;

/// An epistemic-temporal formula; see the module docs.
///
/// # Example
///
/// The decision condition of the protocol `F*` (Proposition 6.6):
/// `B^N_i(∃0 ∧ C□_{N∧Z⁰} ∃0)`, written with the builder methods:
///
/// ```
/// use eba_kripke::{Formula, NonRigidSet, StateSetsId};
/// use eba_model::{ProcessorId, Value};
///
/// # let z0_id = StateSetsId::from_raw(0);
/// let i = ProcessorId::new(0);
/// let chain = NonRigidSet::NonfaultyAnd(z0_id);
/// let condition = Formula::exists(Value::Zero)
///     .and(Formula::exists(Value::Zero).continual_common(chain))
///     .believed_by(i, NonRigidSet::Nonfaulty);
/// assert!(condition.to_string().contains("C□"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// `∃v`: some processor started with initial value `v` (a run-level
    /// fact).
    Exists(Value),
    /// Processor `p` started with initial value `v`.
    Initial(ProcessorId, Value),
    /// `p ∈ N`: processor `p` is nonfaulty (in this run).
    Nonfaulty(ProcessorId),
    /// Processor `p`'s current local state lies in its component of the
    /// registered state-set family.
    StateIn(ProcessorId, StateSetsId),
    /// A registered per-run predicate.
    RunPred(RunPredId),
    /// A registered per-point predicate (e.g. the time-dependent `∃0*`
    /// of Section 6.2).
    PointPred(PointPredId),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty conjunction is true).
    And(Vec<Formula>),
    /// Disjunction (empty disjunction is false).
    Or(Vec<Formula>),
    /// `K_p φ`: processor `p` knows `φ`.
    Knows(ProcessorId, Box<Formula>),
    /// `B^S_p φ = K_p(p ∈ S ⇒ φ)`: `p` believes `φ` relative to the
    /// nonrigid set `S`.
    Believes(ProcessorId, NonRigidSet, Box<Formula>),
    /// `E_S φ`: everyone in `S` believes `φ`.
    Everyone(NonRigidSet, Box<Formula>),
    /// `S_S φ`: someone in `S` believes `φ` (the `S_G` operator of the
    /// \[HM90\] hierarchy, lifted to nonrigid sets).
    Someone(NonRigidSet, Box<Formula>),
    /// `D_S φ`: *distributed* knowledge among `S` — `φ` follows from the
    /// combined information of the members (\[HM90\]).
    Distributed(NonRigidSet, Box<Formula>),
    /// `C_S φ`: common knowledge of `φ` among the nonrigid set `S`.
    Common(NonRigidSet, Box<Formula>),
    /// `C□_S φ`: *continual* common knowledge of `φ` among `S`
    /// (Section 3.3).
    ContinualCommon(NonRigidSet, Box<Formula>),
    /// `□ φ`: `φ` holds now and at all later times of this run.
    Always(Box<Formula>),
    /// `◇ φ`: `φ` holds now or at some later time of this run.
    Eventually(Box<Formula>),
    /// `□̄ φ`: `φ` holds at *all* times of this run — past, present and
    /// future.
    AlwaysAll(Box<Formula>),
    /// `◇̄ φ`: `φ` holds at some time of this run.
    SometimeAll(Box<Formula>),
}

impl Formula {
    /// `∃v` (the paper's `∃0` / `∃1`).
    #[must_use]
    pub fn exists(v: Value) -> Formula {
        Formula::Exists(v)
    }

    /// `¬self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `self ∧ other`.
    #[must_use]
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::And(mut a), Formula::And(b)) => {
                a.extend(b);
                Formula::And(a)
            }
            (Formula::And(mut a), b) => {
                a.push(b);
                Formula::And(a)
            }
            (a, Formula::And(mut b)) => {
                b.insert(0, a);
                Formula::And(b)
            }
            (a, b) => Formula::And(vec![a, b]),
        }
    }

    /// `self ∨ other`.
    #[must_use]
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::Or(mut a), Formula::Or(b)) => {
                a.extend(b);
                Formula::Or(a)
            }
            (Formula::Or(mut a), b) => {
                a.push(b);
                Formula::Or(a)
            }
            (a, Formula::Or(mut b)) => {
                b.insert(0, a);
                Formula::Or(b)
            }
            (a, b) => Formula::Or(vec![a, b]),
        }
    }

    /// `self ⇒ other`.
    #[must_use]
    pub fn implies(self, other: Formula) -> Formula {
        self.not().or(other)
    }

    /// `self ⇔ other`.
    #[must_use]
    pub fn iff(self, other: Formula) -> Formula {
        self.clone().implies(other.clone()).and(other.implies(self))
    }

    /// `K_p self`.
    #[must_use]
    pub fn known_by(self, p: ProcessorId) -> Formula {
        Formula::Knows(p, Box::new(self))
    }

    /// `B^S_p self`.
    #[must_use]
    pub fn believed_by(self, p: ProcessorId, s: NonRigidSet) -> Formula {
        Formula::Believes(p, s, Box::new(self))
    }

    /// `E_S self`.
    #[must_use]
    pub fn everyone(self, s: NonRigidSet) -> Formula {
        Formula::Everyone(s, Box::new(self))
    }

    /// `S_S self` (someone in `S` believes it).
    #[must_use]
    pub fn someone(self, s: NonRigidSet) -> Formula {
        Formula::Someone(s, Box::new(self))
    }

    /// `D_S self` (distributed knowledge among `S`).
    #[must_use]
    pub fn distributed(self, s: NonRigidSet) -> Formula {
        Formula::Distributed(s, Box::new(self))
    }

    /// `E□_S self = □̄ E_S self` (the building block of continual common
    /// knowledge, Section 3.3).
    #[must_use]
    pub fn everyone_box(self, s: NonRigidSet) -> Formula {
        self.everyone(s).always_all()
    }

    /// `C_S self`.
    #[must_use]
    pub fn common(self, s: NonRigidSet) -> Formula {
        Formula::Common(s, Box::new(self))
    }

    /// `C□_S self`.
    #[must_use]
    pub fn continual_common(self, s: NonRigidSet) -> Formula {
        Formula::ContinualCommon(s, Box::new(self))
    }

    /// `□ self` (present and future).
    #[must_use]
    pub fn always(self) -> Formula {
        Formula::Always(Box::new(self))
    }

    /// `◇ self` (present or future).
    #[must_use]
    pub fn eventually(self) -> Formula {
        Formula::Eventually(Box::new(self))
    }

    /// `□̄ self` (at all times of the run).
    #[must_use]
    pub fn always_all(self) -> Formula {
        Formula::AlwaysAll(Box::new(self))
    }

    /// `◇̄ self` (at some time of the run).
    #[must_use]
    pub fn sometime_all(self) -> Formula {
        Formula::SometimeAll(Box::new(self))
    }

    /// Conjunction of an iterator of formulas.
    pub fn conj<I: IntoIterator<Item = Formula>>(iter: I) -> Formula {
        Formula::And(iter.into_iter().collect())
    }

    /// Disjunction of an iterator of formulas.
    pub fn disj<I: IntoIterator<Item = Formula>>(iter: I) -> Formula {
        Formula::Or(iter.into_iter().collect())
    }

    /// Whether the formula is invariant under every processor
    /// relabeling, so that validity over a symmetry-quotiented system
    /// equals validity over the full system (DESIGN.md §4i).
    ///
    /// The check is syntactic and conservative: run-level atoms that
    /// mention no processor (`⊤`, `⊥`, `∃v`) are symmetric; anything
    /// naming a processor (`init(p)`, `p∈N`, `StateIn`, `K_p`, `B_p`) or
    /// referencing an opaque registered predicate is not. Group
    /// operators are symmetric when their scope is and their body is;
    /// `NonfaultyAnd` scopes defer to `family_ok`, which the evaluator
    /// wires to its orbit-closure check for the referenced family.
    pub fn symmetric_under_relabeling(
        &self,
        family_ok: &mut dyn FnMut(StateSetsId) -> bool,
    ) -> bool {
        fn set_ok(s: &NonRigidSet, family_ok: &mut dyn FnMut(StateSetsId) -> bool) -> bool {
            match s {
                NonRigidSet::Everyone | NonRigidSet::Nonfaulty => true,
                NonRigidSet::NonfaultyAnd(id) => family_ok(*id),
            }
        }
        match self {
            Formula::True | Formula::False | Formula::Exists(_) => true,
            Formula::Initial(..)
            | Formula::Nonfaulty(_)
            | Formula::StateIn(..)
            | Formula::RunPred(_)
            | Formula::PointPred(_)
            | Formula::Knows(..)
            | Formula::Believes(..) => false,
            Formula::Not(f)
            | Formula::Always(f)
            | Formula::Eventually(f)
            | Formula::AlwaysAll(f)
            | Formula::SometimeAll(f) => f.symmetric_under_relabeling(family_ok),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().all(|f| f.symmetric_under_relabeling(family_ok))
            }
            Formula::Everyone(s, f)
            | Formula::Someone(s, f)
            | Formula::Distributed(s, f)
            | Formula::Common(s, f)
            | Formula::ContinualCommon(s, f) => {
                set_ok(s, family_ok) && f.symmetric_under_relabeling(family_ok)
            }
        }
    }

    /// Whether every knowledge operator in the formula has a fully
    /// symmetric body (and scope), which is what each kernel's orbit
    /// twist requires to be pointwise-exact on representative points.
    ///
    /// Strictly weaker than
    /// [`symmetric_under_relabeling`](Formula::symmetric_under_relabeling):
    /// processor-naming atoms may appear *outside* knowledge operators
    /// (e.g. the optimality conditions `p∈N ⇒ (StateIn(p,·) ⇔ B^N_p ψ_p)`),
    /// in which case the formula evaluates correctly at each
    /// representative point but its quotient validity is not full-system
    /// validity — deciding that takes folding the whole equivariant
    /// family, as the optimality checker does.
    pub fn quotient_compatible(&self, family_ok: &mut dyn FnMut(StateSetsId) -> bool) -> bool {
        fn set_ok(s: &NonRigidSet, family_ok: &mut dyn FnMut(StateSetsId) -> bool) -> bool {
            match s {
                NonRigidSet::Everyone | NonRigidSet::Nonfaulty => true,
                NonRigidSet::NonfaultyAnd(id) => family_ok(*id),
            }
        }
        match self {
            Formula::True
            | Formula::False
            | Formula::Exists(_)
            | Formula::Initial(..)
            | Formula::Nonfaulty(_)
            | Formula::StateIn(..)
            | Formula::RunPred(_)
            | Formula::PointPred(_) => true,
            Formula::Not(f)
            | Formula::Always(f)
            | Formula::Eventually(f)
            | Formula::AlwaysAll(f)
            | Formula::SometimeAll(f) => f.quotient_compatible(family_ok),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().all(|f| f.quotient_compatible(family_ok))
            }
            Formula::Knows(_, f) => f.symmetric_under_relabeling(family_ok),
            Formula::Believes(_, s, f)
            | Formula::Everyone(s, f)
            | Formula::Someone(s, f)
            | Formula::Distributed(s, f)
            | Formula::Common(s, f)
            | Formula::ContinualCommon(s, f) => {
                set_ok(s, family_ok) && f.symmetric_under_relabeling(family_ok)
            }
        }
    }

    /// The number of nodes of the formula tree (used for reporting).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Formula::True
            | Formula::False
            | Formula::Exists(_)
            | Formula::Initial(..)
            | Formula::Nonfaulty(_)
            | Formula::StateIn(..)
            | Formula::RunPred(_)
            | Formula::PointPred(_) => 1,
            Formula::Not(f)
            | Formula::Knows(_, f)
            | Formula::Believes(_, _, f)
            | Formula::Everyone(_, f)
            | Formula::Someone(_, f)
            | Formula::Distributed(_, f)
            | Formula::Common(_, f)
            | Formula::ContinualCommon(_, f)
            | Formula::Always(f)
            | Formula::Eventually(f)
            | Formula::AlwaysAll(f)
            | Formula::SometimeAll(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
        }
    }
}

impl StateSetsId {
    /// Builds an id from a raw index. Only ids handed out by an
    /// [`crate::Evaluator`] are meaningful to that evaluator; this
    /// constructor exists for documentation examples and serialization.
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        StateSetsId(raw)
    }
}

impl RunPredId {
    /// Builds an id from a raw index; see [`StateSetsId::from_raw`].
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        RunPredId(raw)
    }
}

impl PointPredId {
    /// Builds an id from a raw index; see [`StateSetsId::from_raw`].
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        PointPredId(raw)
    }
}

fn fmt_set(s: &NonRigidSet, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match s {
        NonRigidSet::Everyone => write!(f, "All"),
        NonRigidSet::Nonfaulty => write!(f, "N"),
        NonRigidSet::NonfaultyAnd(id) => write!(f, "N∧A{}", id.0),
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Exists(v) => write!(f, "∃{v}"),
            Formula::Initial(p, v) => write!(f, "init({p})={v}"),
            Formula::Nonfaulty(p) => write!(f, "{p}∈N"),
            Formula::StateIn(p, id) => write!(f, "{p}∈A{}", id.0),
            Formula::RunPred(id) => write!(f, "pred{}", id.0),
            Formula::PointPred(id) => write!(f, "ppred{}", id.0),
            Formula::Not(inner) => write!(f, "¬({inner})"),
            Formula::And(fs) => {
                if fs.is_empty() {
                    return write!(f, "⊤");
                }
                write!(f, "(")?;
                for (k, sub) in fs.iter().enumerate() {
                    if k > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                if fs.is_empty() {
                    return write!(f, "⊥");
                }
                write!(f, "(")?;
                for (k, sub) in fs.iter().enumerate() {
                    if k > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Formula::Knows(p, inner) => write!(f, "K_{p}({inner})"),
            Formula::Believes(p, s, inner) => {
                write!(f, "B^")?;
                fmt_set(s, f)?;
                write!(f, "_{p}({inner})")
            }
            Formula::Everyone(s, inner) => {
                write!(f, "E_")?;
                fmt_set(s, f)?;
                write!(f, "({inner})")
            }
            Formula::Someone(s, inner) => {
                write!(f, "S_")?;
                fmt_set(s, f)?;
                write!(f, "({inner})")
            }
            Formula::Distributed(s, inner) => {
                write!(f, "D_")?;
                fmt_set(s, f)?;
                write!(f, "({inner})")
            }
            Formula::Common(s, inner) => {
                write!(f, "C_")?;
                fmt_set(s, f)?;
                write!(f, "({inner})")
            }
            Formula::ContinualCommon(s, inner) => {
                write!(f, "C□_")?;
                fmt_set(s, f)?;
                write!(f, "({inner})")
            }
            Formula::Always(inner) => write!(f, "□({inner})"),
            Formula::Eventually(inner) => write!(f, "◇({inner})"),
            Formula::AlwaysAll(inner) => write!(f, "□̄({inner})"),
            Formula::SometimeAll(inner) => write!(f, "◇̄({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn builders_compose() {
        let f = Formula::exists(Value::Zero)
            .and(Formula::exists(Value::One).not())
            .believed_by(p(0), NonRigidSet::Nonfaulty);
        assert!(matches!(f, Formula::Believes(..)));
        assert!(f.size() >= 4);
    }

    #[test]
    fn and_flattens() {
        let f = Formula::True
            .and(Formula::False)
            .and(Formula::Exists(Value::Zero));
        match f {
            Formula::And(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn implies_and_iff_desugar() {
        let f = Formula::True.implies(Formula::False);
        assert!(matches!(f, Formula::Or(_)));
        let g = Formula::True.iff(Formula::False);
        assert!(matches!(g, Formula::And(_)));
    }

    #[test]
    fn display_uses_paper_notation() {
        let f = Formula::exists(Value::Zero)
            .continual_common(NonRigidSet::Nonfaulty)
            .believed_by(p(1), NonRigidSet::Nonfaulty);
        let text = f.to_string();
        assert!(text.contains("C□_N"), "{text}");
        assert!(text.contains("B^N_p2"), "{text}");
        assert!(text.contains("∃0"), "{text}");
    }

    #[test]
    fn everyone_box_is_always_all_everyone() {
        let f = Formula::exists(Value::One).everyone_box(NonRigidSet::Nonfaulty);
        assert!(matches!(f, Formula::AlwaysAll(inner) if matches!(*inner, Formula::Everyone(..))));
    }

    #[test]
    fn formulas_are_hashable_for_memoization() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Formula::exists(Value::Zero).always());
        assert!(set.contains(&Formula::exists(Value::Zero).always()));
        assert!(!set.contains(&Formula::exists(Value::One).always()));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Formula::True.size(), 1);
        assert_eq!(Formula::True.not().size(), 2);
        assert_eq!(Formula::conj([Formula::True, Formula::False]).size(), 3);
    }
}
