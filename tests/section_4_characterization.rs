//! Section 4: continual common knowledge is necessary (Proposition 4.3)
//! and sufficient (Proposition 4.4) for nontrivial agreement, plus the
//! decision-fact sanity properties (Proposition 4.1, Lemma 4.2).

use eba::prelude::*;
use eba_core::protocols::{crash_rule, f_lambda_2, zero_chain_pair};

fn crash_system() -> GeneratedSystem {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    GeneratedSystem::exhaustive(&scenario)
}

fn omission_system() -> GeneratedSystem {
    let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
    GeneratedSystem::exhaustive(&scenario)
}

/// Proposition 4.1(a): a processor never decides both values; checked via
/// the absence of nonfaulty conflicts for every constructed protocol.
#[test]
fn proposition_4_1_no_double_decisions() {
    let system = crash_system();
    let mut ctor = Constructor::new(&system);
    for (pair, name) in [
        (f_lambda_2(&mut ctor), "F^{Λ,2}"),
        (crash_rule(&mut ctor), "FIP(Z^cr,O^cr)"),
    ] {
        let d = FipDecisions::compute(&system, &pair, name);
        assert!(
            d.nonfaulty_conflicts(&system).is_empty(),
            "{name} conflicted"
        );
    }
}

/// Lemma 4.2: if nonfaulty `i` decides 0 in run `r`, no nonfaulty `j`
/// ever decides 1 in `r` — at any time, before or after.
#[test]
fn lemma_4_2_cross_value_exclusion() {
    let system = crash_system();
    let mut ctor = Constructor::new(&system);
    let pair = f_lambda_2(&mut ctor);
    let d = FipDecisions::compute(&system, &pair, "F^{Λ,2}");
    for run in system.run_ids() {
        let values = d.decided_values(run, system.nonfaulty(run));
        assert!(values.len() <= 1, "run {} decided {values:?}", run.index());
    }
}

/// Proposition 4.3 (necessity): for a nontrivial agreement protocol
/// `FIP(Z, O)`,
/// `decide_i(0) ⇒ B^N_i(∃0 ∧ C□_{N∧O} ∃0 ∧ ¬decide_i(1))` and
/// symmetrically for 1. Checked for three different protocols in both
/// failure modes.
#[test]
fn proposition_4_3_necessity() {
    for (system, mode) in [(crash_system(), "crash"), (omission_system(), "omission")] {
        let mut ctor = Constructor::new(&system);
        let pairs = if mode == "crash" {
            vec![
                (f_lambda_2(&mut ctor), "F^{Λ,2}"),
                (crash_rule(&mut ctor), "FIP(Z^cr,O^cr)"),
            ]
        } else {
            vec![
                (zero_chain_pair(&mut ctor), "FIP(Z⁰,O⁰)"),
                (f_lambda_2(&mut ctor), "F^{Λ,2}"),
            ]
        };
        for (pair, name) in pairs {
            let n = system.n();
            let (z_id, o_id) = {
                let eval = ctor.evaluator();
                (
                    eval.register_state_sets(pair.zero().clone()),
                    eval.register_state_sets(pair.one().clone()),
                )
            };
            let c0 = Formula::exists(Value::Zero).continual_common(NonRigidSet::NonfaultyAnd(o_id));
            let c1 = Formula::exists(Value::One).continual_common(NonRigidSet::NonfaultyAnd(z_id));
            for i in ProcessorId::all(n) {
                let decide0 = Formula::StateIn(i, z_id);
                let decide1 = Formula::StateIn(i, o_id);
                let nec0 = decide0.clone().implies(
                    Formula::exists(Value::Zero)
                        .and(c0.clone())
                        .and(decide1.clone().not())
                        .believed_by(i, NonRigidSet::Nonfaulty),
                );
                let nec1 = decide1.clone().implies(
                    Formula::exists(Value::One)
                        .and(c1.clone())
                        .and(decide0.clone().not())
                        .believed_by(i, NonRigidSet::Nonfaulty),
                );
                // The necessity conditions concern nonfaulty deciders.
                let guarded0 = Formula::Nonfaulty(i).implies(nec0);
                let guarded1 = Formula::Nonfaulty(i).implies(nec1);
                assert!(
                    ctor.evaluator().valid(&guarded0),
                    "{mode}/{name}: Prop 4.3(a) fails for {i}"
                );
                assert!(
                    ctor.evaluator().valid(&guarded1),
                    "{mode}/{name}: Prop 4.3(b) fails for {i}"
                );
            }
        }
    }
}

/// Proposition 4.4 (sufficiency): a protocol with `decide_i(0) ⇒ B^N_i ∃0`
/// and `decide_i(1) ⇔ B^N_i(∃1 ∧ C□_{N∧Z} ∃1)` is a nontrivial agreement
/// protocol.
///
/// The hypothesis presumes a *protocol* — single-valued decisions — so
/// states satisfying both `B^N_i ∃0` and the decide-1 condition must
/// decide 1 (the biconditional forces it). We build such an instance by
/// iterating `Z ← B∃0 \ O`, `O ← B(∃1 ∧ C□_{N∧Z}∃1)` to its (finite,
/// monotone) fixed point, then verify weak agreement and weak validity
/// exhaustively in both failure modes. A first model-checking pass showed
/// that naively putting the overlap into `Z` breaks agreement — the
/// single-valuedness is load-bearing.
#[test]
fn proposition_4_4_sufficiency() {
    for system in [crash_system(), omission_system()] {
        let mut ctor = Constructor::new(&system);

        let know_zero = ctor.views_satisfying(|i| {
            Formula::exists(Value::Zero).believed_by(i, NonRigidSet::Nonfaulty)
        });

        let mut z = know_zero.clone();
        let mut one;
        let mut iterations = 0;
        loop {
            iterations += 1;
            assert!(iterations <= 10, "fixed point failed to converge");
            let z_id = ctor.evaluator().register_state_sets(z.clone());
            let c1 = Formula::exists(Value::One).continual_common(NonRigidSet::NonfaultyAnd(z_id));
            one = ctor.views_satisfying(|i| {
                Formula::exists(Value::One)
                    .and(c1.clone())
                    .believed_by(i, NonRigidSet::Nonfaulty)
            });
            let new_z = know_zero.difference(&one);
            if new_z == z {
                break;
            }
            z = new_z;
        }

        let pair = DecisionPair::new(z, one);
        let d = FipDecisions::compute(&system, &pair, "Prop-4.4 instance");
        assert!(d.nonfaulty_conflicts(&system).is_empty());
        let report = verify_properties(&system, &d);
        assert!(report.is_nontrivial_agreement(), "Prop 4.4: {report}");
    }
}
