//! Property-based tests (proptest) over the model, the knowledge engine,
//! and the optimization construction.

use eba::prelude::*;
use eba_kripke::axioms;
use proptest::prelude::*;
use std::sync::OnceLock;

fn crash_system() -> &'static GeneratedSystem {
    static SYSTEM: OnceLock<GeneratedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    })
}

fn omission_system() -> &'static GeneratedSystem {
    static SYSTEM: OnceLock<GeneratedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    })
}

/// A generator of epistemic-temporal formulas over 3 processors (no
/// registered ids, so formulas are portable across evaluators).
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        Just(Formula::exists(Value::Zero)),
        Just(Formula::exists(Value::One)),
        (0usize..3, prop_oneof![Just(Value::Zero), Just(Value::One)])
            .prop_map(|(i, v)| Formula::Initial(ProcessorId::new(i), v)),
        (0usize..3).prop_map(|i| Formula::Nonfaulty(ProcessorId::new(i))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (0usize..3, inner.clone()).prop_map(|(i, f)| f.known_by(ProcessorId::new(i))),
            (0usize..3, inner.clone())
                .prop_map(|(i, f)| { f.believed_by(ProcessorId::new(i), NonRigidSet::Nonfaulty) }),
            inner
                .clone()
                .prop_map(|f| f.everyone(NonRigidSet::Nonfaulty)),
            inner
                .clone()
                .prop_map(|f| f.someone(NonRigidSet::Nonfaulty)),
            inner
                .clone()
                .prop_map(|f| f.distributed(NonRigidSet::Nonfaulty)),
            inner.clone().prop_map(|f| f.common(NonRigidSet::Nonfaulty)),
            inner
                .clone()
                .prop_map(|f| f.continual_common(NonRigidSet::Nonfaulty)),
            inner.clone().prop_map(Formula::always),
            inner.clone().prop_map(Formula::eventually),
            inner.clone().prop_map(Formula::always_all),
            inner.prop_map(Formula::sometime_all),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// S5 holds for K_i on arbitrary formulas (Proposition 3.1).
    #[test]
    fn s5_axioms_on_random_formulas(
        phi in formula_strategy(),
        psi in formula_strategy(),
        i in 0usize..3,
    ) {
        let mut eval = Evaluator::new(crash_system());
        for report in axioms::check_s5(&mut eval, ProcessorId::new(i), &phi, &psi) {
            prop_assert!(report.holds(), "{}: {:?}", report.name, report.violation);
        }
    }

    /// The continual-common-knowledge properties of Lemma 3.4 hold on
    /// arbitrary formulas, in both failure modes.
    #[test]
    fn continual_common_axioms_on_random_formulas(
        phi in formula_strategy(),
        psi in formula_strategy(),
        crash in proptest::bool::ANY,
    ) {
        let system = if crash { crash_system() } else { omission_system() };
        let mut eval = Evaluator::new(system);
        for report in axioms::check_continual_common(
            &mut eval,
            NonRigidSet::Nonfaulty,
            &phi,
            &psi,
        ) {
            prop_assert!(report.holds(), "{}: {:?}", report.name, report.violation);
        }
    }

    /// The temporal ladder `□̄φ ⇒ □φ ⇒ φ ⇒ ◇φ ⇒ ◇̄φ` is valid.
    #[test]
    fn temporal_ladder(phi in formula_strategy()) {
        let mut eval = Evaluator::new(crash_system());
        let steps = [
            phi.clone().always_all().implies(phi.clone().always()),
            phi.clone().always().implies(phi.clone()),
            phi.clone().implies(phi.clone().eventually()),
            phi.clone().eventually().implies(phi.clone().sometime_all()),
        ];
        for step in &steps {
            prop_assert!(eval.valid(step), "failed: {step}");
        }
    }

    /// Knowledge of stable (run-level) facts persists: for formulas built
    /// only from run-level atoms, `K_i φ ⇒ □ K_i φ`.
    #[test]
    fn knowledge_of_run_level_facts_persists(
        v in prop_oneof![Just(Value::Zero), Just(Value::One)],
        i in 0usize..3,
        negate in proptest::bool::ANY,
    ) {
        let mut eval = Evaluator::new(crash_system());
        let fact = if negate {
            Formula::exists(v).not()
        } else {
            Formula::exists(v)
        };
        let k = fact.known_by(ProcessorId::new(i));
        prop_assert!(eval.valid(&k.clone().implies(k.always())));
    }

    /// The union-find reachability engine agrees with the textbook
    /// greatest-fixed-point computation on random formulas, for both
    /// common knowledge and continual common knowledge (differential
    /// test of the core algorithm, Prop 3.2 / Cor 3.3).
    #[test]
    fn reachability_agrees_with_fixed_point(
        phi in formula_strategy(),
        crash in proptest::bool::ANY,
        continual in proptest::bool::ANY,
    ) {
        use eba_kripke::fixpoint;
        let system = if crash { crash_system() } else { omission_system() };
        let mut eval = Evaluator::new(system);
        let (via_reach, via_gfp) = if continual {
            let reach = eval.eval(&phi.clone().continual_common(NonRigidSet::Nonfaulty));
            let (gfp, _) = fixpoint::continual_common_by_gfp(
                &mut eval,
                NonRigidSet::Nonfaulty,
                &phi,
            );
            (reach, gfp)
        } else {
            let reach = eval.eval(&phi.clone().common(NonRigidSet::Nonfaulty));
            let (gfp, _) =
                fixpoint::common_by_gfp(&mut eval, NonRigidSet::Nonfaulty, &phi);
            (reach, gfp)
        };
        prop_assert_eq!(
            fixpoint::diff(&eval, &via_reach, &via_gfp),
            None,
            "engines disagree on {}",
            phi
        );
    }

    /// Display and the parser are inverse on the N-indexed fragment:
    /// `parse(format!("{f}")) == f`.
    #[test]
    fn display_parse_round_trip(f in formula_strategy()) {
        use eba_kripke::parse::parse_formula;
        let rendered = f.to_string();
        let reparsed = parse_formula(&rendered)
            .map_err(|e| TestCaseError::fail(format!("`{rendered}`: {e}")))?;
        prop_assert_eq!(reparsed, f, "round trip changed `{}`", rendered);
    }

    /// ProcSet algebra laws.
    #[test]
    fn procset_algebra(a in 0u128..1 << 8, b in 0u128..1 << 8, c in 0u128..1 << 8) {
        let (a, b, c) = (
            ProcSet::from_bits(a),
            ProcSet::from_bits(b),
            ProcSet::from_bits(c),
        );
        // De Morgan within an 8-processor universe.
        prop_assert_eq!(
            (a | b).complement(8),
            a.complement(8) & b.complement(8)
        );
        // Distributivity.
        prop_assert_eq!(a & (b | c), (a & b) | (a & c));
        // Difference via complement.
        prop_assert_eq!(a - b, a & b.complement(8));
        // Cardinality of disjoint unions adds up.
        let disjoint = a & b.complement(8);
        prop_assert_eq!((disjoint | b).len(), disjoint.len() + b.len());
    }

    /// Sampled failure patterns always validate against their scenario.
    #[test]
    fn sampled_patterns_validate(
        seed in proptest::num::u64::ANY,
        crash in proptest::bool::ANY,
        n in 3usize..10,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let t = (n - 1).min(3);
        let mode = if crash { FailureMode::Crash } else { FailureMode::Omission };
        let scenario = Scenario::new(n, t, mode, 4).unwrap();
        let sampler = eba_model::sample::PatternSampler::new(scenario);
        let mut rng = StdRng::seed_from_u64(seed);
        let pattern = sampler.sample(&mut rng);
        prop_assert!(scenario.validate_pattern(&pattern).is_ok());
    }
}

/// Random *nontrivial agreement* protocols: per-processor delayed
/// variants of the crash rule (delaying any sound rule preserves weak
/// agreement and weak validity). The two-step construction must turn
/// every one of them into an optimal protocol that dominates it
/// (Theorem 5.2 + Theorem 5.3).
fn delayed_crash_pair(
    ctor: &mut Constructor<'_>,
    delays0: [u16; 3],
    delays1: [u16; 3],
) -> DecisionPair {
    let base = eba_core::protocols::crash_rule(ctor);
    let table = ctor.system().table();
    let n = ctor.system().n();
    let mut zero = StateSets::empty(n);
    let mut one = StateSets::empty(n);
    for i in ProcessorId::all(n) {
        for v in base.zero().of(i).iter() {
            if table.time(v).ticks() >= delays0[i.index()] {
                zero.insert(i, v);
            }
        }
        for v in base.one().of(i).iter() {
            if table.time(v).ticks() >= delays1[i.index()] {
                one.insert(i, v);
            }
        }
    }
    DecisionPair::new(zero, one)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn two_step_optimization_of_random_bases(
        d0 in proptest::array::uniform3(0u16..3),
        d1 in proptest::array::uniform3(0u16..3),
    ) {
        let system = crash_system();
        let mut ctor = Constructor::new(system);
        let base = delayed_crash_pair(&mut ctor, d0, d1);

        // The base really is a nontrivial agreement protocol.
        let d_base = FipDecisions::compute(system, &base, "delayed base");
        let base_report = verify_properties(system, &d_base);
        prop_assert!(base_report.is_nontrivial_agreement(), "{base_report}");

        // Theorem 5.2: two steps give an optimal protocol dominating it.
        let optimized = ctor.optimize(&base);
        let d_opt = FipDecisions::compute(system, &optimized, "F²");
        let report = verify_properties(system, &d_opt);
        prop_assert!(report.is_nontrivial_agreement(), "{report}");
        let dom = dominates(system, &d_opt, &d_base);
        prop_assert!(dom.dominates, "{dom}");
        prop_assert!(check_optimality(&mut ctor, &optimized).is_optimal());
    }
}
