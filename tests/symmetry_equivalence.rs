//! Differential oracle for the symmetry quotient (DESIGN.md §4i): the
//! engine run on the orbit-reduced system — one representative failure
//! pattern per `Sym(n)` orbit, knowledge twisted through orbit-canonical
//! view classes — must agree **bit-identically** with the unreduced
//! engine on every observable: protocol decisions (transported along the
//! witnessing relabeling), Theorem 5.3 optimality verdicts, greatest-
//! fixed-point iteration counts, and point-level satisfaction of every
//! processor-symmetric formula. Covered across all three failure modes,
//! under chaos injection, on budget-partial prefixes (against the orbit
//! closure of the kept prefix), and across incremental `extend_to`.

use eba::prelude::*;
use eba::sim::chaos::{ChaosPlan, FaultInjector, FaultKind, FaultSite};
use eba_kripke::fixpoint;
use eba_kripke::parse::parse_formula;
use eba_model::symmetry::canonicalize;
use eba_model::{enumerate, ScenarioSpace};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Processor-symmetric formulas exercising every knowledge-kernel shape
/// the quotient twists: `K`-free atoms, `E`/`SK`/`D`/`C`/`CC`, and
/// temporal wrappers (the compiled-plan and gfp paths).
const SYMMETRIC_FORMULAS: &[&str] = &[
    "E0",
    "C(E0)",
    "CC(E0)",
    "E(E0)",
    "SK(E1)",
    "D(E0)",
    "G(E(E0))",
    "F(C(E0))",
    "C(E0) -> CC(E0)",
];

fn build_pair(scenario: &Scenario) -> (GeneratedSystem, GeneratedSystem) {
    let reduced = SystemBuilder::new(scenario).symmetry(true).build().unwrap();
    let full = SystemBuilder::new(scenario).build().unwrap();
    (reduced, full)
}

/// `(run, time) -> point index`, oracle-side address book for
/// transporting full-system points onto their representatives.
fn point_index(system: &GeneratedSystem) -> HashMap<(RunId, Time), usize> {
    let eval = Evaluator::new(system);
    (0..system.num_points())
        .map(|idx| (eval.point_of(idx), idx))
        .collect()
}

/// Every observable of the quotiented engine equals the unreduced
/// oracle's, with full-system runs resolved onto representatives by
/// [`GeneratedSystem::resolve_run`]'s witnessing permutation.
fn assert_quotient_equivalent(reduced: &GeneratedSystem, full: &GeneratedSystem) {
    let n = full.n();
    let info = reduced
        .symmetry()
        .expect("quotient build carries accounting");
    let space = ScenarioSpace::new(*full.scenario());

    // Orbit accounting: orbit count × multiplicities = raw pattern
    // count. On budget-partial prefixes `covered < total`; the oracle
    // system is then the closure of exactly the covered patterns.
    let covered: u128 = info.orbit_sizes().iter().map(|&s| u128::from(s)).sum();
    assert_eq!(covered, info.raw_patterns_covered());
    assert!(info.raw_patterns_covered() <= info.raw_pattern_total());
    assert_eq!(full.num_runs() as u128, covered * space.num_configs());
    assert_eq!(
        reduced.num_runs() as u128,
        info.num_orbits() as u128 * space.num_configs()
    );

    // Point-level satisfaction of symmetric formulas, both evaluator
    // paths: a full-system point (r, t) must agree with its
    // representative point (resolve(r), t).
    let reduced_points = point_index(reduced);
    let transported: Vec<(usize, usize)> = {
        let full_eval = Evaluator::new(full);
        (0..full.num_points())
            .map(|idx| {
                let (r, t) = full_eval.point_of(idx);
                let record = full.run(r);
                let (rep, _w) = reduced
                    .resolve_run(&record.config, &record.pattern)
                    .expect("every raw run resolves through the quotient");
                (idx, reduced_points[&(rep, t)])
            })
            .collect()
    };
    for plan_mode in [true, false] {
        let mut full_eval = Evaluator::new(full);
        let mut reduced_eval = Evaluator::new(reduced);
        full_eval.set_plan_mode(plan_mode);
        reduced_eval.set_plan_mode(plan_mode);
        for text in SYMMETRIC_FORMULAS {
            let f = parse_formula(text).unwrap();
            let full_sat = full_eval.eval(&f).clone();
            let reduced_sat = reduced_eval.eval(&f).clone();
            for &(full_idx, reduced_idx) in &transported {
                assert_eq!(
                    full_sat.get(full_idx),
                    reduced_sat.get(reduced_idx),
                    "`{text}` diverges at full point {full_idx} (plan={plan_mode})"
                );
            }
        }
    }

    // Greatest-fixed-point iteration counts: the gfp iterates are
    // symmetric sets, so the quotient must converge in exactly as many
    // rounds as the oracle.
    for text in ["E0", "E(E0)", "E0 | E1"] {
        let phi = parse_formula(text).unwrap();
        let mut full_eval = Evaluator::new(full);
        let mut reduced_eval = Evaluator::new(reduced);
        let (_, full_iters) = fixpoint::common_by_gfp(&mut full_eval, NonRigidSet::Nonfaulty, &phi);
        let (_, reduced_iters) =
            fixpoint::common_by_gfp(&mut reduced_eval, NonRigidSet::Nonfaulty, &phi);
        assert_eq!(
            full_iters, reduced_iters,
            "gfp iteration count diverges for `{text}`"
        );
    }

    // Protocol decisions: decision((c, q), p) in the full system equals
    // decision((σc, σq), σ(p)) at the representative, σ the witness.
    let mut full_ctor = Constructor::new(full);
    let full_fip = full_ctor.optimize(&DecisionPair::empty(n));
    let mut reduced_ctor = Constructor::new(reduced);
    let reduced_fip = reduced_ctor.optimize(&DecisionPair::empty(n));
    let full_dec = FipDecisions::compute(full, &full_fip, "full");
    let reduced_dec = FipDecisions::compute(reduced, &reduced_fip, "reduced");
    for r in full.run_ids() {
        let record = full.run(r);
        let (rep, witness) = reduced
            .resolve_run(&record.config, &record.pattern)
            .expect("every raw run resolves");
        for p in ProcessorId::all(n) {
            assert_eq!(
                full_dec.decision(r, p),
                reduced_dec.decision(rep, witness.apply(p)),
                "decision diverges at run {r:?}, {p}"
            );
        }
    }

    // Theorem 5.3 optimality: same verdict, condition by condition.
    let full_report = check_optimality(&mut full_ctor, &full_fip);
    let reduced_report = check_optimality(&mut reduced_ctor, &reduced_fip);
    assert_eq!(full_report.is_optimal(), reduced_report.is_optimal());
    assert_eq!(full_report.checks.len(), reduced_report.checks.len());
    for (fc, rc) in full_report.checks.iter().zip(&reduced_report.checks) {
        assert_eq!((fc.proc, fc.value), (rc.proc, rc.value));
        assert_eq!(
            fc.holds, rc.holds,
            "optimality condition for {} deciding {:?} diverges",
            fc.proc, fc.value
        );
    }
}

#[test]
fn crash_quotient_matches_the_unreduced_oracle() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    let (reduced, full) = build_pair(&scenario);
    assert!(reduced.num_runs() < full.num_runs());
    let info = reduced.symmetry().unwrap();
    assert_eq!(
        info.raw_patterns_covered(),
        info.raw_pattern_total(),
        "a complete quotient build covers the whole pattern space"
    );
    assert_quotient_equivalent(&reduced, &full);
}

#[test]
fn sending_omission_quotient_matches_the_unreduced_oracle() {
    let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
    let (reduced, full) = build_pair(&scenario);
    assert_quotient_equivalent(&reduced, &full);
}

#[test]
fn general_omission_quotient_matches_the_unreduced_oracle() {
    let scenario = Scenario::new(3, 1, FailureMode::GeneralOmission, 2).unwrap();
    let (reduced, full) = build_pair(&scenario);
    assert_quotient_equivalent(&reduced, &full);
}

#[test]
fn two_fault_quotient_matches_the_unreduced_oracle() {
    // t = 2 exercises orbits with non-trivial stabilizers (two faulty
    // processors with equal behaviors).
    let scenario = Scenario::new(3, 2, FailureMode::Crash, 2).unwrap();
    let (reduced, full) = build_pair(&scenario);
    assert_quotient_equivalent(&reduced, &full);
}

#[test]
fn chaos_disturbed_quotient_build_is_identical_to_a_clean_one() {
    // A shard panic during the quotiented build is absorbed by
    // supervision and must leave no trace: same runs, same decisions.
    let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
    let plan = Arc::new(ChaosPlan::new().with_fault(FaultSite::BuilderShard, 1, FaultKind::Panic));
    let outcome = SystemBuilder::new(&scenario)
        .threads(4)
        .shards(4)
        .symmetry(true)
        .chaos(plan as Arc<dyn FaultInjector>)
        .build_governed()
        .unwrap();
    assert!(outcome.is_complete());
    let disturbed = outcome.into_system();
    let clean = SystemBuilder::new(&scenario)
        .symmetry(true)
        .build()
        .unwrap();
    assert_eq!(disturbed.num_runs(), clean.num_runs());
    for r in clean.run_ids() {
        assert_eq!(disturbed.run(r).config, clean.run(r).config);
        assert_eq!(disturbed.run(r).pattern, clean.run(r).pattern);
    }
    assert_eq!(
        disturbed.symmetry().unwrap().orbit_sizes(),
        clean.symmetry().unwrap().orbit_sizes()
    );
    // And the disturbed quotient still matches the unreduced oracle.
    let full = SystemBuilder::new(&scenario).build().unwrap();
    assert_quotient_equivalent(&disturbed, &full);
}

#[test]
fn budget_partial_quotient_prefix_matches_its_orbit_closure() {
    // A run budget cuts the quotiented build to a prefix of shards. The
    // oracle for that prefix is the *orbit closure* of the kept
    // representative patterns — every raw pattern whose canonical form
    // was kept, crossed with every config — built unreduced.
    let scenario = Scenario::new(3, 2, FailureMode::Crash, 2).unwrap();
    let space = ScenarioSpace::new(scenario);
    // Run budgets are planned against raw (pre-skip) per-shard pattern
    // counts, so size the budget to admit exactly two of four shards.
    let shards = space.shards(4);
    let two_shards = (shards[0].len() + shards[1].len()) * space.num_configs();
    let reduced_total = SystemBuilder::new(&scenario)
        .symmetry(true)
        .build()
        .unwrap()
        .num_runs();
    let outcome = SystemBuilder::new(&scenario)
        .threads(1)
        .shards(4)
        .symmetry(true)
        .budget(RunBudget::unlimited().with_max_runs(two_shards as u64))
        .build_governed()
        .unwrap();
    let BuildOutcome::Partial {
        system: reduced,
        budget_hit,
        ..
    } = outcome
    else {
        panic!("the budget must bind");
    };
    assert!(
        reduced.num_runs() > 0,
        "prefix must be non-empty: {budget_hit}"
    );
    assert!(reduced.num_runs() < reduced_total);

    let kept: HashSet<FailurePattern> = reduced
        .run_ids()
        .map(|r| reduced.run(r).pattern.clone())
        .collect();
    let closure_specs: Vec<(InitialConfig, FailurePattern)> = enumerate::patterns(&scenario)
        .filter(|q| kept.contains(&canonicalize(q).canonical))
        .flat_map(|q| {
            space
                .configs()
                .map(move |c| (c, q.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    let full = GeneratedSystem::from_runs(&scenario, closure_specs);
    assert!(full.num_runs() > reduced.num_runs());
    assert_quotient_equivalent(&reduced, &full);
}

#[test]
fn incremental_extension_preserves_the_quotient() {
    // Growing a quotiented session append-only must equal a cold
    // quotiented build at the target horizon — and keep matching the
    // unreduced oracle there.
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
    let base = SystemBuilder::new(&scenario)
        .symmetry(true)
        .build()
        .unwrap();
    let mut session = EngineSession::from_system(base, SessionScope::FullSpace);
    for h in [3u16, 4] {
        session.extend_to(h).unwrap();
        let target = scenario.with_horizon(h).unwrap();
        let cold = SystemBuilder::new(&target).symmetry(true).build().unwrap();
        let warm = session.system();
        assert_eq!(warm.num_runs(), cold.num_runs());
        for r in cold.run_ids() {
            assert_eq!(warm.run(r).config, cold.run(r).config);
            assert_eq!(warm.run(r).pattern, cold.run(r).pattern);
        }
        assert_eq!(
            warm.symmetry().unwrap().orbit_sizes(),
            cold.symmetry().unwrap().orbit_sizes()
        );
    }
    let full = SystemBuilder::new(&scenario.with_horizon(4).unwrap())
        .build()
        .unwrap();
    assert_quotient_equivalent(session.system(), &full);

    // The session's epoch-fenced cache kept serving the quotient: a
    // symmetric formula evaluated through the warm cache matches a cold
    // quotient evaluator.
    let phi = parse_formula("CC(E0)").unwrap();
    let warm_sat = session.evaluator().eval(&phi).clone();
    let cold_reduced = SystemBuilder::new(&scenario.with_horizon(4).unwrap())
        .symmetry(true)
        .build()
        .unwrap();
    let cold_sat = Evaluator::new(&cold_reduced).eval(&phi).clone();
    assert_eq!(warm_sat, cold_sat);
}

#[test]
fn four_processor_quotient_matches_on_formulas() {
    // A larger fan-out (n = 4): formula-level differential only, to keep
    // the suite fast; decisions/optimality are covered at n = 3.
    let scenario = Scenario::new(4, 1, FailureMode::Crash, 3).unwrap();
    let (reduced, full) = build_pair(&scenario);
    let info = reduced.symmetry().unwrap();
    assert!(info.reduction_ratio() > 3.0, "n=4 must reduce at least 3x");
    let reduced_points = point_index(&reduced);
    let mut full_eval = Evaluator::new(&full);
    let mut reduced_eval = Evaluator::new(&reduced);
    for text in ["C(E0)", "CC(E0)", "D(E1)"] {
        let f = parse_formula(text).unwrap();
        let full_sat = full_eval.eval(&f).clone();
        let reduced_sat = reduced_eval.eval(&f).clone();
        for idx in 0..full.num_points() {
            let (r, t) = full_eval.point_of(idx);
            let record = full.run(r);
            let (rep, _w) = reduced
                .resolve_run(&record.config, &record.pattern)
                .unwrap();
            assert_eq!(
                full_sat.get(idx),
                reduced_sat.get(reduced_points[&(rep, t)]),
                "`{text}` diverges at point {idx}"
            );
        }
    }
}
