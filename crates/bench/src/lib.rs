//! Experiment harness and benchmarks for the EBA reproduction.
//!
//! Every table or figure-equivalent claim of the paper has an experiment
//! here (see DESIGN.md §5 for the index):
//!
//! | binary | claim |
//! |---|---|
//! | `exp1` | Prop 2.1 — no optimum EBA protocol |
//! | `exp2` | §2.2 — `P0opt` strictly dominates `P0` |
//! | `exp3` | Thm 6.1/6.2 — `F^{Λ,2} = FIP(Z^cr,O^cr) ≅ P0opt` |
//! | `exp4` | Prop 6.3 — omission-mode non-decision |
//! | `exp5` | Prop 6.4 — 0-chain protocol decides by `f + 1` |
//! | `exp6` | Prop 5.1 / Thm 5.2 / Prop 6.6 — two-step optimization |
//! | `exp7` | \[DRS90\] motivation — EBA vs SBA decision times |
//! | `exp8` | Prop 3.1 / Lemma 3.4 — operator axioms |
//! | `exp9` | message-level protocol scaling |
//! | `exp10` | engine cost + horizon ablation |
//! | `exp11` | general-omission extension (beyond the paper) |
//! | `exp12` | multi-valued extension (Section 2.1 note) |
//! | `all_experiments` | everything above in sequence |
//!
//! Run with `cargo run --release -p eba-bench --bin expN`; set
//! `EBA_EXP_FULL=1` for the heavyweight variants. Criterion benches live
//! in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod experiments;
pub mod table;

pub use table::Table;
