//! Error types.

use std::error::Error;
use std::fmt;

/// An error produced while constructing or validating model objects.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// A scenario's parameters are inconsistent (e.g. `t ≥ n`).
    InvalidScenario {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A failure pattern violates its scenario's constraints.
    InvalidPattern {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A generated artifact outgrew a fixed-width id space (e.g. more
    /// distinct views than a `u32` view id can index).
    CapacityExceeded {
        /// The id space or table that overflowed.
        what: &'static str,
        /// The largest count the representation supports.
        limit: u128,
    },
}

impl ModelError {
    pub(crate) fn invalid_scenario(reason: impl Into<String>) -> Self {
        ModelError::InvalidScenario {
            reason: reason.into(),
        }
    }

    pub(crate) fn invalid_pattern(reason: impl Into<String>) -> Self {
        ModelError::InvalidPattern {
            reason: reason.into(),
        }
    }

    /// An error reporting that `what` cannot hold more than `limit` items.
    ///
    /// Public because downstream crates (the simulator's system builder)
    /// surface their own id-space overflows through this type.
    #[must_use]
    pub fn capacity_exceeded(what: &'static str, limit: u128) -> Self {
        ModelError::CapacityExceeded { what, limit }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidScenario { reason } => {
                write!(f, "invalid scenario: {reason}")
            }
            ModelError::InvalidPattern { reason } => {
                write!(f, "invalid failure pattern: {reason}")
            }
            ModelError::CapacityExceeded { what, limit } => {
                write!(f, "capacity exceeded: {what} holds at most {limit} items")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_reason() {
        let e = ModelError::invalid_scenario("t must be smaller than n");
        assert!(e.to_string().contains("t must be smaller than n"));
        let e = ModelError::invalid_pattern("too many failures");
        assert!(e.to_string().contains("too many failures"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ModelError>();
    }
}
