//! Batched reachability: one sweep over the point store feeding every
//! pending nonrigid set.
//!
//! The per-set path ([`Evaluator::reachability`]) walks the CSR bucket
//! partitions of the [`eba_sim::PointStore`] once *per set*: an optimize
//! sweep that touches `C□_{N∧A}` for a dozen candidate families `A` pays
//! for a dozen full traversals, and PR 3's bench record singles this out
//! as the dominant residual cost. [`BatchBuilder`] collects all the sets
//! a compiled plan (or an optimize step) is about to need and resolves
//! them together:
//!
//! 1. **Staged resolution** first drains the evaluator's local memos and
//!    the shared [`crate::KnowledgeCache`] (under content keys hashed
//!    once per set), so only genuinely unknown sets reach the sweep.
//! 2. **One membership pass** over the points computes `S(r, k)` for
//!    every pending set at once — the per-run nonfaulty set is fetched
//!    once per run, and `N ∧ A` membership tests are table lookups per
//!    interned view rather than hash probes per point.
//! 3. **Components.** One CSR traversal per processor collects union
//!    edges for every pending set simultaneously — fanned out across the
//!    supervised worker pool of [`eba_sim::chaos`] above the same
//!    threshold as the per-set path, sequential below it. Within a
//!    bucket each set chains its `S`-containing points to the first one
//!    and the chain over a bucket's nonfaulty points is shared between
//!    sets, so the per-(set, processor) edge lists — and therefore the
//!    union-find components — are **bit-identical** to the per-set
//!    path's.
//! 4. Per set, the resulting `Reachability` is published to the
//!    evaluator's memo and the shared cache; scope columns fall out of
//!    the membership vectors for free and are interned by content.
//!
//! The batch path is set-representation agnostic: it keys and publishes
//! through [`Evaluator::hashed_key`]-style content keys and the cache's
//! scope-column API, so under the shared backend ([`crate::setrepr`])
//! its keys carry node-table roots and its scope columns land in the
//! hash-consed table without any change here.
//!
//! The per-set path remains intact as the differential-test oracle
//! ([`Evaluator::set_batch_mode`] switches plan execution between the
//! two); `tests/plan_equivalence.rs` checks components, run projections,
//! and scope columns agree bit-for-bit on random set families.

use crate::bitset::Bitset;
use crate::cache::HashedReachKey;
use crate::eval::{Evaluator, Reachability, PARALLEL_POINTS_THRESHOLD};
use crate::nonrigid::NonRigidSet;
use crate::uf::UnionFind;
use eba_model::{ProcSet, ProcessorId};
use eba_sim::chaos::{supervised_indexed, FaultSite};
use eba_sim::PointStore;
use std::sync::Arc;

/// A batch of nonrigid-set requests resolved in one sweep; see the module
/// docs.
///
/// # Example
///
/// ```
/// use eba_kripke::{reach::BatchBuilder, Evaluator, NonRigidSet};
/// use eba_model::{FailureMode, Scenario};
/// use eba_sim::GeneratedSystem;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
/// let system = GeneratedSystem::exhaustive(&scenario);
/// let mut eval = Evaluator::new(&system);
/// let mut batch = BatchBuilder::new();
/// batch.request_reachability(NonRigidSet::Nonfaulty);
/// batch.request_reachability(NonRigidSet::Everyone);
/// batch.request_scopes(NonRigidSet::Nonfaulty);
/// batch.run(&mut eval); // one traversal serves all three requests
/// assert_eq!(eval.knowledge_cache().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct BatchBuilder {
    sets: Vec<NonRigidSet>,
    want_reach: Vec<bool>,
    want_scopes: Vec<bool>,
}

/// One processor's union-edge lists, indexed by edge slot (see
/// [`collect_batch_edges`]).
type SlotEdges = Vec<Vec<(u32, u32)>>;

/// A set that survived staged resolution and must be built by the sweep.
struct PendingSet {
    set: NonRigidSet,
    key: Arc<HashedReachKey>,
    need_reach: bool,
    need_scopes: bool,
    /// Index into the edge-collection slots, for `need_reach` sets.
    edge_slot: usize,
}

impl BatchBuilder {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        BatchBuilder::default()
    }

    fn slot(&mut self, s: NonRigidSet) -> usize {
        if let Some(i) = self.sets.iter().position(|&x| x == s) {
            return i;
        }
        self.sets.push(s);
        self.want_reach.push(false);
        self.want_scopes.push(false);
        self.sets.len() - 1
    }

    /// Requests the [`Reachability`] structure of `s` (idempotent).
    pub fn request_reachability(&mut self, s: NonRigidSet) {
        let i = self.slot(s);
        self.want_reach[i] = true;
    }

    /// Requests the per-processor scope columns of `s` (idempotent).
    pub fn request_scopes(&mut self, s: NonRigidSet) {
        let i = self.slot(s);
        self.want_scopes[i] = true;
    }

    /// Number of distinct sets requested.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether nothing has been requested.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Resolves every request into `eval`'s memos (and the shared
    /// [`crate::KnowledgeCache`]): cached structures are reused, and all
    /// remaining sets are built by one membership pass plus one CSR
    /// traversal per processor. Subsequent [`Evaluator::reachability`] /
    /// scope lookups for the requested sets are memo hits.
    pub fn run(&self, eval: &mut Evaluator<'_>) {
        // Stage 1: drain the local memos and the shared cache.
        let mut pending: Vec<PendingSet> = Vec::new();
        let mut edge_slots = 0;
        for (i, &s) in self.sets.iter().enumerate() {
            let mut need_reach = false;
            let mut need_scopes = false;
            if self.want_reach[i] {
                if eval.reach_cache.contains_key(&s) {
                    eval.shared.note_local_hit(false);
                } else {
                    let key = eval.hashed_key(s);
                    match eval.shared.get(&key) {
                        Some(found) => {
                            debug_assert_eq!(
                                found.num_points(),
                                eval.num_points(),
                                "knowledge cache shared across different systems"
                            );
                            eval.reach_cache.insert(s, found);
                        }
                        None => need_reach = true,
                    }
                }
            }
            if self.want_scopes[i] {
                if eval.scope_cache.contains_key(&s) {
                    eval.shared.note_local_hit(true);
                } else {
                    let key = eval.hashed_key(s);
                    match eval.shared.get_scopes(&key) {
                        Some(found) => {
                            eval.scope_cache.insert(s, found);
                        }
                        None => need_scopes = true,
                    }
                }
            }
            if need_reach || need_scopes {
                let edge_slot = if need_reach {
                    edge_slots += 1;
                    edge_slots - 1
                } else {
                    usize::MAX
                };
                pending.push(PendingSet {
                    set: s,
                    key: eval.hashed_key(s),
                    need_reach,
                    need_scopes,
                    edge_slot,
                });
            }
        }
        if pending.is_empty() {
            return;
        }

        // Stage 2: membership vectors for every pending set. The rigid
        // kinds are run-sliced fills, the `N ∧ A` kinds one
        // processor-major pass each steered by their hoisted view tables.
        let pending_sets: Vec<NonRigidSet> = pending.iter().map(|p| p.set).collect();
        let in_view = build_in_view_tables(eval, &pending_sets);
        let mut members = fill_rigid_members(eval, &pending_sets);
        fill_nonfaulty_and_members(eval, &pending_sets, &in_view, &mut members);

        // Stage 3: the traversal. Each processor's CSR sweep hands back
        // per-(processor, set) union-edge lists, replayed into a shared
        // union-find in stage 4; above the parallel threshold the sweeps
        // fan out over the supervised workers.
        let system = eval.system();
        let store = system.points();
        let workers = eval.threads.min(store.n());
        let parallel = workers > 1 && eval.num_points() >= PARALLEL_POINTS_THRESHOLD;
        let specs: Vec<EdgeSpec<'_>> = pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.need_reach)
            .map(|(k, p)| spec_kind(p.set, &in_view[k]))
            .collect();
        let mut replay: Option<Vec<SlotEdges>> = None;
        let mut seq_ufs: Vec<UnionFind> = Vec::new();
        if let Some(classes) = eval.classes() {
            // Quotient sweep: per pending set, class-root unions over the
            // membership vectors (see
            // `Evaluator::union_quotient_reach_edges`) — one pass over
            // (point, member) pairs, small enough to always run
            // sequentially. Identical partitions to the per-set quotient
            // path by construction.
            seq_ufs = (0..edge_slots)
                .map(|_| UnionFind::new(eval.num_points()))
                .collect();
            for (entry, mems) in pending.iter().zip(&members) {
                if entry.need_reach {
                    eval.union_quotient_reach_edges(mems, classes, &mut seq_ufs[entry.edge_slot]);
                }
            }
        } else if !specs.is_empty() {
            if parallel {
                replay = Some(collect_edges_parallel(eval, workers, &specs));
            } else {
                // Sequentially the unions are applied in place during the
                // sweep — no edge lists exist at all. The union *set* per
                // slot is exactly the parallel path's edge list, applied
                // in the same processor-major bucket order.
                seq_ufs = specs
                    .iter()
                    .map(|_| UnionFind::new(eval.num_points()))
                    .collect();
                let nf_points = nonfaulty_points_by_proc(system);
                for i in ProcessorId::all(store.n()) {
                    union_batch_edges(store, i, &nf_points[i.index()], &specs, &mut seq_ufs);
                }
            }
        }

        // Stage 4: per set, build the Reachability and publish it. The
        // replayed edge lists are applied in processor order — the same
        // sequence the per-set path uses — but any order would do:
        // `finish_reachability` reads only the partition, and compact
        // numbering is assigned in first-seen point order.
        let n = store.n();
        let mut replay_uf = replay.as_ref().map(|_| UnionFind::new(eval.num_points()));
        for (entry, mems) in pending.iter().zip(members) {
            if entry.need_scopes {
                let cols = columns_from_members(&mems, n);
                let interned = eval.shared.insert_scopes(&entry.key, Arc::new(cols));
                eval.scope_cache.insert(entry.set, interned);
            }
            if entry.need_reach {
                let reach = if let Some(per_proc_edges) = replay.as_ref() {
                    let uf = replay_uf.as_mut().expect("allocated alongside replay");
                    uf.reset();
                    // Edges arrive in bucket-chain runs sharing their
                    // first endpoint; `union_root` carries the merged
                    // root across a run, skipping one `find` per edge.
                    let mut last_a = u32::MAX;
                    let mut root = 0;
                    for proc_edges in per_proc_edges.iter() {
                        for &(a, b) in &proc_edges[entry.edge_slot] {
                            if a != last_a {
                                last_a = a;
                                root = uf.find(a as usize);
                            }
                            root = uf.union_root(root, b as usize);
                        }
                        last_a = u32::MAX;
                    }
                    eval.finish_reachability(mems, uf)
                } else {
                    eval.finish_reachability(mems, &mut seq_ufs[entry.edge_slot])
                };
                let reach = Arc::new(reach);
                eval.shared.insert(&entry.key, Arc::clone(&reach));
                eval.reach_cache.insert(entry.set, reach);
            }
        }
    }
}

impl<'a> Evaluator<'a> {
    /// Resolves the reachability structures of several sets through one
    /// [`BatchBuilder`] sweep, returning them in request order. Cached
    /// sets are served from the memos; the rest share a single traversal.
    pub fn reachability_batch(&mut self, sets: &[NonRigidSet]) -> Vec<Arc<Reachability>> {
        let mut batch = BatchBuilder::new();
        for &s in sets {
            batch.request_reachability(s);
        }
        batch.run(self);
        sets.iter().map(|&s| self.reachability(s)).collect()
    }
}

/// Per pending set, the flat `n × table_len` view-membership table of its
/// `N ∧ A` family (`None` for the rigid kinds). Populated from the
/// family's own view sets (direct writes) rather than probing every
/// interned view — `n × table_len` probes would dwarf the point loop.
fn build_in_view_tables(eval: &Evaluator<'_>, sets: &[NonRigidSet]) -> Vec<Option<Vec<bool>>> {
    let n = eval.system().n();
    let table_len = eval.system().table().len();
    sets.iter()
        .map(|&s| match s {
            NonRigidSet::NonfaultyAnd(id) => {
                let family = eval.state_sets(id);
                let mut table = vec![false; n * table_len];
                for p in ProcessorId::all(n) {
                    for v in family.of(p).iter() {
                        table[p.index() * table_len + v.index()] = true;
                    }
                }
                Some(table)
            }
            _ => None,
        })
        .collect()
}

/// Allocates the membership vectors of every set and fills the rigid
/// kinds (`Everyone`, `N`) with run-sliced writes; `N ∧ A` vectors are
/// left empty for [`fill_nonfaulty_and_members`] to fill.
fn fill_rigid_members(eval: &Evaluator<'_>, sets: &[NonRigidSet]) -> Vec<Vec<ProcSet>> {
    let system = eval.system();
    let store = system.points();
    let num_points = eval.num_points();
    let full = ProcSet::full(store.n());
    let times = store.times();
    sets.iter()
        .map(|&s| match s {
            NonRigidSet::Everyone => vec![full; num_points],
            NonRigidSet::Nonfaulty => {
                let mut m = Vec::with_capacity(num_points);
                for run in system.run_ids() {
                    let nf = system.nonfaulty(run);
                    m.resize(m.len() + times, nf);
                }
                m
            }
            NonRigidSet::NonfaultyAnd(_) => vec![ProcSet::empty(); num_points],
        })
        .collect()
}

/// Fills the `N ∧ A` membership vectors in one processor-major pass over
/// the points. Value-identical to the per-set
/// `Evaluator::collect_s_members`: membership is a per-(processor,
/// interned view) table lookup instead of a hash probe, and whole runs
/// where the processor is faulty are skipped.
fn fill_nonfaulty_and_members(
    eval: &Evaluator<'_>,
    sets: &[NonRigidSet],
    in_view: &[Option<Vec<bool>>],
    members: &mut [Vec<ProcSet>],
) {
    let system = eval.system();
    let store = system.points();
    let n = store.n();
    let table_len = system.table().len();
    let columns: Vec<&[eba_sim::ViewId]> = ProcessorId::all(n).map(|p| store.column(p)).collect();
    let times = store.times();
    for (k, &s) in sets.iter().enumerate() {
        if !matches!(s, NonRigidSet::NonfaultyAnd(_)) {
            continue;
        }
        let table = in_view[k].as_ref().expect("table built above");
        let member_vec = &mut members[k];
        for p in ProcessorId::all(n) {
            let row = &table[p.index() * table_len..(p.index() + 1) * table_len];
            let col = columns[p.index()];
            for run in system.run_ids() {
                if !system.nonfaulty(run).contains(p) {
                    continue;
                }
                // Zip the run's column and membership slices so the
                // sweep streams both without per-point bounds checks —
                // the shape LLVM unrolls into word blocks.
                let base = run.index() * times;
                let col_run = &col[base..base + times];
                let mem_run = &mut member_vec[base..base + times];
                for (m, v) in mem_run.iter_mut().zip(col_run) {
                    if row[v.index()] {
                        m.insert(p);
                    }
                }
            }
        }
    }
}

/// The [`EdgeSpec`] of a pending set.
fn spec_kind<'m>(s: NonRigidSet, in_view: &'m Option<Vec<bool>>) -> EdgeSpec<'m> {
    match s {
        NonRigidSet::Everyone => EdgeSpec::Everyone,
        NonRigidSet::Nonfaulty => EdgeSpec::Nonfaulty,
        NonRigidSet::NonfaultyAnd(_) => {
            EdgeSpec::NonfaultyAnd(in_view.as_deref().expect("table built above"))
        }
    }
}

/// Per processor, its nonfaulty flag at every *point* (run-sliced fills
/// of the run-level flag) — the single membership bit every
/// non-`Everyone` spec tests (see [`EdgeSpec`]), indexed directly by the
/// point ids the buckets store.
fn nonfaulty_points_by_proc(system: &eba_sim::GeneratedSystem) -> Vec<Vec<bool>> {
    let store = system.points();
    let times = store.times();
    ProcessorId::all(system.n())
        .map(|p| {
            let mut flags = vec![false; system.num_points()];
            for r in system.run_ids() {
                if system.nonfaulty(r).contains(p) {
                    let base = r.index() * times;
                    flags[base..base + times].fill(true);
                }
            }
            flags
        })
        .collect()
}

/// One pending set's inputs to the shared CSR traversal.
enum EdgeSpec<'m> {
    /// `Everyone` contains every point: chain the whole bucket, no test.
    Everyone,
    /// `N`: membership at a point depends only on the run's nonfaulty
    /// set, so the shared per-bucket nonfaulty chain applies verbatim.
    Nonfaulty,
    /// `N ∧ A`, carrying the flat `n × table_len` view-membership table
    /// of `A`. Buckets are per-view, so the `A_i` half of the membership
    /// test is constant across a bucket: a failing view skips the whole
    /// bucket, and a passing view reduces membership to run-nonfaulty —
    /// i.e. exactly the shared chain again.
    NonfaultyAnd(&'m [bool]),
}

/// One CSR bucket traversal for processor `i`, collecting the union edges
/// of *every* set at once: per bucket, each set chains its `S`-containing
/// points to the first one (buckets are in increasing point order), so
/// slot `k`'s edge *set* — and hence the union-find partition — equals
/// the per-set path's. Compact component numbering depends only on the
/// partition (it is assigned in first-seen point order), so the bucket
/// skips and chain sharing below cannot perturb it.
///
/// Every non-`Everyone` membership test reduces to "is `i` nonfaulty in
/// this point's run" (see [`EdgeSpec`]), so the chain over a bucket's
/// nonfaulty points is computed once and memcpy'd into each qualifying
/// set's edge list.
fn collect_batch_edges(
    store: &PointStore,
    i: ProcessorId,
    nonfaulty_at: &[bool],
    specs: &[EdgeSpec<'_>],
) -> SlotEdges {
    let (offsets, items) = store.buckets(i);
    let table_len = offsets.len() - 1;
    let mut edges: SlotEdges = specs
        .iter()
        .map(|_| Vec::with_capacity(items.len() / 2))
        .collect();
    let mut shared: Vec<(u32, u32)> = Vec::new();
    for (v, b) in offsets.windows(2).enumerate() {
        let bucket = &items[b[0] as usize..b[1] as usize];
        // A bucket with fewer than two points cannot contribute an edge.
        if bucket.len() < 2 {
            continue;
        }
        let mut shared_built = false;
        for (spec, edges_k) in specs.iter().zip(edges.iter_mut()) {
            match spec {
                EdgeSpec::Everyone => {
                    let root = bucket[0];
                    for &idx in &bucket[1..] {
                        edges_k.push((root, idx));
                    }
                    continue;
                }
                EdgeSpec::NonfaultyAnd(table) => {
                    if !table[i.index() * table_len + v] {
                        continue;
                    }
                }
                EdgeSpec::Nonfaulty => {}
            }
            if !shared_built {
                shared_built = true;
                shared.clear();
                let mut root = u32::MAX;
                for &idx in bucket {
                    if !nonfaulty_at[idx as usize] {
                        continue;
                    }
                    if root == u32::MAX {
                        root = idx;
                    } else {
                        shared.push((root, idx));
                    }
                }
            }
            edges_k.extend_from_slice(&shared);
        }
    }
    edges
}

/// The sequential counterpart of [`collect_batch_edges`]: the same
/// bucket sweep, but unions are applied in place to each slot's
/// union-find instead of materializing edge lists — the memcpy of the
/// shared chain into per-set vectors (and its replay) disappears. The
/// union *set* per slot is identical to the edge list the parallel path
/// would have produced, so the resulting partitions — and the compact
/// numbering `finish_reachability` derives from them — are bit-identical.
fn union_batch_edges(
    store: &PointStore,
    i: ProcessorId,
    nonfaulty_at: &[bool],
    specs: &[EdgeSpec<'_>],
    ufs: &mut [UnionFind],
) {
    let (offsets, items) = store.buckets(i);
    let table_len = offsets.len() - 1;
    let mut chain: Vec<u32> = Vec::new();
    for (v, b) in offsets.windows(2).enumerate() {
        let bucket = &items[b[0] as usize..b[1] as usize];
        if bucket.len() < 2 {
            continue;
        }
        let mut chain_built = false;
        for (k, spec) in specs.iter().enumerate() {
            match spec {
                EdgeSpec::Everyone => {
                    // `union_root` carries the merged root across the
                    // bucket, skipping one `find` per union.
                    let uf = &mut ufs[k];
                    let mut root = uf.find(bucket[0] as usize);
                    for &idx in &bucket[1..] {
                        root = uf.union_root(root, idx as usize);
                    }
                    continue;
                }
                EdgeSpec::NonfaultyAnd(table) => {
                    if !table[i.index() * table_len + v] {
                        continue;
                    }
                }
                EdgeSpec::Nonfaulty => {}
            }
            if !chain_built {
                chain_built = true;
                chain.clear();
                chain.extend(
                    bucket
                        .iter()
                        .copied()
                        .filter(|&idx| nonfaulty_at[idx as usize]),
                );
            }
            if let Some((&first, rest)) = chain.split_first() {
                let uf = &mut ufs[k];
                let mut root = uf.find(first as usize);
                for &idx in rest {
                    root = uf.union_root(root, idx as usize);
                }
            }
        }
    }
}

/// Parallel edge collection — fanned out over the supervised worker pool
/// above the same threshold as the per-set path, with the same
/// chaos-injection site. Panicking on the attempt, the retry, and the
/// sequential fallback is a deterministic bug, so a surviving fault is
/// surfaced as a panic.
fn collect_edges_parallel(
    eval: &Evaluator<'_>,
    workers: usize,
    specs: &[EdgeSpec<'_>],
) -> Vec<SlotEdges> {
    let system = eval.system();
    let store = system.points();
    let n = store.n();
    let nf_by_proc = nonfaulty_points_by_proc(system);
    let chaos = &*eval.chaos;
    let nf = &nf_by_proc;
    let supervised = supervised_indexed(n, workers, FaultSite::ReachabilityWorker, |i| {
        if let Err(e) = chaos.inject(FaultSite::ReachabilityWorker, i) {
            // Edge collection is infallible, so an injected capacity
            // fault degrades to a supervised panic here.
            panic!("{e}");
        }
        collect_batch_edges(store, ProcessorId::new(i), &nf[i], specs)
    });
    match supervised {
        Ok((edges, _faults)) => edges,
        Err(fault) => panic!("{fault}"),
    }
}

/// Scope columns from a membership vector: column `p` holds the points
/// where `p ∈ S(r, k)`. Bit-identical to the per-set
/// `build_scope_columns` extraction, assembled a word at a time.
fn columns_from_members(members: &[ProcSet], n: usize) -> Vec<Bitset> {
    ProcessorId::all(n)
        .map(|p| {
            let mut col = Bitset::new_false(members.len());
            for (word, chunk) in col.words_mut().iter_mut().zip(members.chunks(64)) {
                let mut w = 0u64;
                for (bit, m) in chunk.iter().enumerate() {
                    w |= u64::from(m.contains(p)) << bit;
                }
                *word = w;
            }
            col
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonrigid::StateSets;
    use eba_model::{FailureMode, Scenario, Value};
    use eba_sim::GeneratedSystem;

    fn system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    #[test]
    fn batch_matches_per_set_path() {
        let system = system();
        let mut per_set = Evaluator::new(&system);
        let mut batched = Evaluator::new(&system);
        let sets_a = StateSets::with_value_seen(system.table(), 3, Value::Zero);
        let id_a = per_set.register_state_sets(sets_a.clone());
        let id_b = batched.register_state_sets(sets_a);
        assert_eq!(id_a, id_b);
        let family = [
            NonRigidSet::Everyone,
            NonRigidSet::Nonfaulty,
            NonRigidSet::NonfaultyAnd(id_a),
        ];
        let via_batch = batched.reachability_batch(&family);
        for (&s, got) in family.iter().zip(via_batch) {
            let want = per_set.reachability(s);
            assert_eq!(want.num_point_components(), got.num_point_components());
            for idx in 0..system.num_points() {
                assert_eq!(
                    want.point_component(idx),
                    got.point_component(idx),
                    "component of point {idx} under {s:?}"
                );
                assert_eq!(want.members(idx), got.members(idx));
            }
            for run in system.run_ids() {
                assert_eq!(want.run_component(run), got.run_component(run));
                assert_eq!(want.run_has_s_points(run), got.run_has_s_points(run));
            }
        }
    }

    #[test]
    fn batch_serves_repeat_requests_from_the_memo() {
        let system = system();
        let mut eval = Evaluator::new(&system);
        let first = eval.reachability_batch(&[NonRigidSet::Nonfaulty]);
        let stats_before = eval.knowledge_cache().stats();
        let second = eval.reachability_batch(&[NonRigidSet::Nonfaulty]);
        assert!(Arc::ptr_eq(&first[0], &second[0]));
        let stats_after = eval.knowledge_cache().stats();
        assert_eq!(stats_after.reach_misses, stats_before.reach_misses);
        assert!(stats_after.reach_hits > stats_before.reach_hits);
    }

    #[test]
    fn batch_scopes_match_per_set_columns() {
        let system = system();
        let mut per_set = Evaluator::new(&system);
        let mut batched = Evaluator::new(&system);
        let family = StateSets::with_value_seen(system.table(), 3, Value::One);
        let id_a = per_set.register_state_sets(family.clone());
        let id_b = batched.register_state_sets(family);
        for s in [
            NonRigidSet::Everyone,
            NonRigidSet::Nonfaulty,
            NonRigidSet::NonfaultyAnd(id_b),
        ] {
            let mut batch = BatchBuilder::new();
            batch.request_scopes(s);
            batch.run(&mut batched);
        }
        for (a, b) in [
            (NonRigidSet::Everyone, NonRigidSet::Everyone),
            (NonRigidSet::Nonfaulty, NonRigidSet::Nonfaulty),
            (
                NonRigidSet::NonfaultyAnd(id_a),
                NonRigidSet::NonfaultyAnd(id_b),
            ),
        ] {
            let want = per_set.scope_columns(a);
            let got = batched.scope_columns(b);
            assert_eq!(*want, *got, "scope columns diverge under {a:?}");
        }
    }
}
