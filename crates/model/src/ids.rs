//! Processor identities.

use std::fmt;

/// The identity of a processor in the system.
///
/// Processors are numbered `0..n`. The paper numbers them `1..=n`; we use
/// zero-based indices throughout the code and render them one-based in
/// human-readable output via [`fmt::Display`] to stay close to the paper's
/// notation.
///
/// # Example
///
/// ```
/// use eba_model::ProcessorId;
///
/// let p = ProcessorId::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(p.to_string(), "p1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessorId(u8);

impl ProcessorId {
    /// The largest number of processors supported by [`crate::ProcSet`].
    pub const MAX_PROCESSORS: usize = 128;

    /// Creates a processor id from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ProcessorId::MAX_PROCESSORS`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index < Self::MAX_PROCESSORS,
            "processor index {index} exceeds the supported maximum of {}",
            Self::MAX_PROCESSORS
        );
        ProcessorId(index as u8)
    }

    /// Returns the zero-based index of this processor.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all processor ids in a system of `n` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n > ProcessorId::MAX_PROCESSORS`.
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = ProcessorId> + Clone {
        assert!(n <= Self::MAX_PROCESSORS);
        (0..n).map(|i| ProcessorId(i as u8))
    }
}

impl From<ProcessorId> for usize {
    fn from(id: ProcessorId) -> usize {
        id.index()
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 as usize + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0usize, 1, 7, 127] {
            assert_eq!(ProcessorId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn new_rejects_out_of_range() {
        let _ = ProcessorId::new(128);
    }

    #[test]
    fn all_yields_n_distinct_ids() {
        let ids: Vec<_> = ProcessorId::all(5).collect();
        assert_eq!(ids.len(), 5);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(ProcessorId::new(0).to_string(), "p1");
        assert_eq!(ProcessorId::new(3).to_string(), "p4");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessorId::new(1) < ProcessorId::new(2));
    }
}
