//! Word-block `u64` kernels for the dense set types.
//!
//! [`Bitset`](crate::Bitset) and the `ViewSet`s behind
//! [`StateSets`](crate::StateSets) spend their hot loops streaming over
//! `u64` word vectors. Two loop shapes coexist here, each used where it
//! measurably wins (`cargo bench -p eba-bench --bench parallel_scaling`,
//! `word_kernels` group):
//!
//! * **Plain zip loops** for the pure boolean maps (`or`/`and`/`andnot`/
//!   implication/conjunction). LLVM already auto-vectorizes a
//!   side-effect-free slice zip to full-width SIMD; a hand-unrolled
//!   4-lane body pins the loop to the written shape and benches ~1.7×
//!   *slower* than the straight loop, so the maps stay simple.
//! * **4-wide unrolled blocks with a scalar tail** for the reductions and
//!   early-exit predicates (`count_ones`, `is_subset`, `any`), which a
//!   per-word `all`/`any` chain compiles to branch-per-word code. One
//!   combined test per block (and four independent popcount accumulators)
//!   is worth ~1.6× on `is_subset` over megabit sets.
//!
//! Every kernel is a pure word-lane operation — bit semantics (including
//! the callers' canonical-tail invariants) are entirely the callers'
//! concern, so these are `pub(crate)` plumbing, not API.
//!
//! These kernels are the *dense* backend of the set-representation
//! layer: the shared node-table backend ([`crate::setrepr`]) stores and
//! combines interned sets, but every sweep, closure, and fixpoint is
//! computed through these word loops in both modes.

/// Words per unrolled block (reductions and early-exit predicates).
const LANES: usize = 4;

/// Applies `f` lane-wise: `dst[i] = f(dst[i], src[i])`.
///
/// Callers guarantee `dst.len() == src.len()`. Kept as a plain zip loop
/// on purpose — see the module docs.
#[inline(always)]
fn zip_map_into<F: Fn(u64, u64) -> u64>(dst: &mut [u64], src: &[u64], f: F) {
    debug_assert_eq!(dst.len(), src.len());
    for (dw, &sw) in dst.iter_mut().zip(src) {
        *dw = f(*dw, sw);
    }
}

/// Applies `f` lane-wise over three streams: `dst[i] = f(dst[i], a[i], b[i])`.
///
/// Callers guarantee equal lengths. Plain zip loop on purpose — see the
/// module docs.
#[inline(always)]
fn zip3_map_into<F: Fn(u64, u64, u64) -> u64>(dst: &mut [u64], a: &[u64], b: &[u64], f: F) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    for ((dw, &aw), &bw) in dst.iter_mut().zip(a).zip(b) {
        *dw = f(*dw, aw, bw);
    }
}

/// `dst[i] |= src[i]`.
#[inline]
pub(crate) fn or_assign(dst: &mut [u64], src: &[u64]) {
    zip_map_into(dst, src, |d, s| d | s);
}

/// `dst[i] &= src[i]`.
#[inline]
pub(crate) fn and_assign(dst: &mut [u64], src: &[u64]) {
    zip_map_into(dst, src, |d, s| d & s);
}

/// `dst[i] &= !src[i]`.
#[inline]
pub(crate) fn andnot_assign(dst: &mut [u64], src: &[u64]) {
    zip_map_into(dst, src, |d, s| d & !s);
}

/// `dst[i] &= !a[i] | c[i]` — intersect with the pointwise implication.
#[inline]
pub(crate) fn and_implication(dst: &mut [u64], a: &[u64], c: &[u64]) {
    zip3_map_into(dst, a, c, |d, aw, cw| d & (!aw | cw));
}

/// `dst[i] |= a[i] & b[i]` — union in the pointwise conjunction.
#[inline]
pub(crate) fn or_conjunction(dst: &mut [u64], a: &[u64], b: &[u64]) {
    zip3_map_into(dst, a, b, |d, aw, bw| d | (aw & bw));
}

/// `dst[i] = !dst[i]`.
#[inline]
pub(crate) fn not_assign(dst: &mut [u64]) {
    for dw in dst {
        *dw = !*dw;
    }
}

/// Total popcount of `words`, accumulated in four independent lanes so
/// the adds pipeline.
#[inline]
pub(crate) fn count_ones(words: &[u64]) -> usize {
    let mut chunks = words.chunks_exact(LANES);
    let mut acc = [0usize; LANES];
    for c in &mut chunks {
        acc[0] += c[0].count_ones() as usize;
        acc[1] += c[1].count_ones() as usize;
        acc[2] += c[2].count_ones() as usize;
        acc[3] += c[3].count_ones() as usize;
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    for &w in chunks.remainder() {
        total += w.count_ones() as usize;
    }
    total
}

/// Whether `a[i] & !b[i] == 0` for every lane (`a ⊆ b` word-wise), with
/// one early-exit test per unrolled block.
///
/// Callers guarantee `a.len() == b.len()`.
#[inline]
pub(crate) fn is_subset(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (av, bv) in (&mut ac).zip(&mut bc) {
        let stray = (av[0] & !bv[0]) | (av[1] & !bv[1]) | (av[2] & !bv[2]) | (av[3] & !bv[3]);
        if stray != 0 {
            return false;
        }
    }
    ac.remainder()
        .iter()
        .zip(bc.remainder())
        .all(|(&aw, &bw)| aw & !bw == 0)
}

/// Whether any word is non-zero, one early-exit test per unrolled block.
#[inline]
pub(crate) fn any(words: &[u64]) -> bool {
    let mut chunks = words.chunks_exact(LANES);
    for c in &mut chunks {
        if c[0] | c[1] | c[2] | c[3] != 0 {
            return true;
        }
    }
    chunks.remainder().iter().any(|&w| w != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word soup long enough to exercise blocks and tails.
    fn soup(seed: u64, len: usize) -> Vec<u64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                state
            })
            .collect()
    }

    /// Every kernel agrees with its one-word-at-a-time definition across
    /// lengths that cover empty, sub-block, exact-block, and tailed runs.
    #[test]
    fn kernels_match_scalar_reference() {
        for len in [0, 1, 3, 4, 5, 8, 17, 64] {
            let a = soup(0xA5A5, len);
            let b = soup(0x5A5A, len);
            let c = soup(0x1234, len);

            let mut out = a.clone();
            or_assign(&mut out, &b);
            assert!(out.iter().zip(&a).zip(&b).all(|((&o, &x), &y)| o == x | y));

            let mut out = a.clone();
            and_assign(&mut out, &b);
            assert!(out.iter().zip(&a).zip(&b).all(|((&o, &x), &y)| o == x & y));

            let mut out = a.clone();
            andnot_assign(&mut out, &b);
            assert!(out.iter().zip(&a).zip(&b).all(|((&o, &x), &y)| o == x & !y));

            let mut out = a.clone();
            and_implication(&mut out, &b, &c);
            assert!(out
                .iter()
                .zip(&a)
                .zip(&b)
                .zip(&c)
                .all(|(((&o, &x), &y), &z)| o == x & (!y | z)));

            let mut out = a.clone();
            or_conjunction(&mut out, &b, &c);
            assert!(out
                .iter()
                .zip(&a)
                .zip(&b)
                .zip(&c)
                .all(|(((&o, &x), &y), &z)| o == x | (y & z)));

            let mut out = a.clone();
            not_assign(&mut out);
            assert!(out.iter().zip(&a).all(|(&o, &x)| o == !x));

            let scalar: usize = a.iter().map(|w| w.count_ones() as usize).sum();
            assert_eq!(count_ones(&a), scalar);

            assert_eq!(any(&a), a.iter().any(|&w| w != 0));
            assert!(any(&a) || len == 0);

            let mut sub = a.clone();
            and_assign(&mut sub, &b);
            assert!(is_subset(&sub, &a));
            assert!(is_subset(&sub, &b));
            assert_eq!(
                is_subset(&a, &b),
                a.iter().zip(&b).all(|(&x, &y)| x & !y == 0)
            );
        }
        assert!(!any(&[0, 0, 0, 0, 0]));
        assert!(is_subset(&[], &[]));
    }
}
