//! Experiment EXP1; see `eba_bench::experiments::exp1`.
fn main() {
    for table in eba_bench::experiments::exp1() {
        table.print();
    }
}
