//! Epistemic model checking over generated systems: knowledge, common
//! knowledge, and **continual common knowledge** (Halpern–Moses–Waarts,
//! Section 3).
//!
//! The crate provides:
//!
//! * [`Formula`] — the epistemic-temporal language: `K_i`, `B^S_i`, `E_S`,
//!   `S_S` (someone), `D_S` (distributed), `C_S`, `C□_S`, `□`, `◇`, `□̄`;
//! * [`Evaluator`] — a memoizing model checker mapping each formula to the
//!   exact set of points of a [`eba_sim::GeneratedSystem`] satisfying it;
//! * [`FormulaPlan`] ([`plan`]) — formulas compiled to a deduplicated DAG
//!   of dense-bitset kernels over the columnar [`eba_sim::PointStore`];
//!   the evaluator's default engine, with the recursive walk kept as a
//!   reference oracle ([`Evaluator::set_plan_mode`]);
//! * [`StateSets`] / [`NonRigidSet`] — decision-set families and the
//!   nonrigid sets `N`, `N ∧ A` they induce;
//! * [`axioms`] — checkers for the S5 properties of `K_i`
//!   (Proposition 3.1) and the K45/fixed-point/induction properties of
//!   `C□_S` (Lemma 3.4);
//! * [`Bitset`] and [`UnionFind`] — the underlying dense set and
//!   reachability machinery (Proposition 3.2 / Corollary 3.3).
//!
//! # Example
//!
//! Continual common knowledge is strictly stronger than common knowledge
//! (Section 3.3); both directions checked mechanically:
//!
//! ```
//! use eba_kripke::{Evaluator, Formula, NonRigidSet};
//! use eba_model::{FailureMode, Scenario, Value};
//! use eba_sim::GeneratedSystem;
//!
//! # fn main() -> Result<(), eba_model::ModelError> {
//! let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
//! let system = GeneratedSystem::exhaustive(&scenario);
//! let mut eval = Evaluator::new(&system);
//!
//! let phi = Formula::exists(Value::Zero);
//! let stronger = phi.clone().continual_common(NonRigidSet::Nonfaulty);
//! let weaker = phi.common(NonRigidSet::Nonfaulty);
//! assert!(eval.valid(&stronger.clone().implies(weaker.clone())));
//! assert!(!eval.valid(&weaker.implies(stronger))); // strictly stronger
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod cache;
mod eval;
mod formula;
mod kernels;
mod nonrigid;
mod uf;

pub mod axioms;
pub mod explain;
pub mod fixpoint;
pub mod parse;
pub mod plan;
pub mod reach;
pub mod setrepr;

pub use bitset::Bitset;
pub use cache::{CacheStats, KnowledgeCache, ScopeColumns};
pub use setrepr::{SetReprKind, SetReprStats};
pub use eval::{Evaluator, Reachability};
pub use formula::Formula;
pub use nonrigid::{NonRigidSet, PointPredId, RunPredId, StateSets, StateSetsId, ViewSet};
pub use plan::{FormulaPlan, Kernel, KnowKind, TemporalOp};
pub use reach::BatchBuilder;
pub use uf::UnionFind;
