//! Processor-permutation symmetry: relabelings under `Sym(n)`, canonical
//! forms of failure patterns, and the orbit accounting behind the
//! symmetry-quotiented engine (DESIGN.md §4i).
//!
//! The model is symmetric in the processor set: relabeling every
//! processor of a run by a permutation `π` yields another legal run, and
//! every symmetric formula holds at the relabeled point iff it held at
//! the original. The quotiented engine therefore builds one
//! *representative* run per orbit of `Sym(n)` acting on `(config,
//! pattern)` pairs — concretely, one per **pattern** orbit crossed with
//! every initial configuration, since configurations are cheap and keying
//! the quotient on patterns alone keeps the run layout regular.
//!
//! The canonical representative of a pattern orbit is the
//! lexicographically minimal relabeling under the derived ordering of
//! `Vec<Option<FaultyBehavior>>`. Because `None < Some(_)`, the minimum
//! always carries its faulty processors in the top index block, so the
//! search enumerates only the `k!·(n−k)!` permutations mapping the
//! faulty set onto the top block instead of all `n!` (the stabilizer-aware
//! search of the issue); the number of candidates attaining the minimum
//! is exactly the stabilizer order, giving the orbit size as
//! `n!/|Stab|` without a second pass.

use crate::config::InitialConfig;
use crate::failure::{FailurePattern, FaultyBehavior};
use crate::ids::ProcessorId;
use crate::procset::ProcSet;

/// Largest `n` the symmetry machinery enumerates permutations for; the
/// quotient targets small exhaustive spaces, and `8! = 40320` keeps every
/// search instant while `ProcSet`'s `u128` width is never approached.
pub const MAX_SYMMETRY_N: usize = 8;

/// A permutation of the `n` processor labels; `map[i]` is `π(i)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Perm {
    map: Vec<u8>,
}

impl Perm {
    /// The identity permutation on `n` labels.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        assert!(
            n <= MAX_SYMMETRY_N,
            "symmetry supports n ≤ {MAX_SYMMETRY_N}"
        );
        Perm {
            map: (0..n as u8).collect(),
        }
    }

    /// Builds a permutation from its image vector (`map[i] = π(i)`).
    ///
    /// # Panics
    ///
    /// Panics if `map` is not a permutation of `0..map.len()`.
    #[must_use]
    pub fn from_map(map: Vec<u8>) -> Self {
        let n = map.len();
        assert!(
            n <= MAX_SYMMETRY_N,
            "symmetry supports n ≤ {MAX_SYMMETRY_N}"
        );
        let mut seen = vec![false; n];
        for &i in &map {
            assert!((i as usize) < n && !seen[i as usize], "not a permutation");
            seen[i as usize] = true;
        }
        Perm { map }
    }

    /// Number of labels.
    #[must_use]
    pub fn n(&self) -> usize {
        self.map.len()
    }

    /// `π(p)`.
    #[must_use]
    pub fn apply(&self, p: ProcessorId) -> ProcessorId {
        ProcessorId::new(self.map[p.index()] as usize)
    }

    /// The inverse permutation.
    #[must_use]
    pub fn inverse(&self) -> Perm {
        let mut inv = vec![0u8; self.map.len()];
        for (i, &j) in self.map.iter().enumerate() {
            inv[j as usize] = i as u8;
        }
        Perm { map: inv }
    }

    /// The elementwise image `π(S)` of a processor set.
    #[must_use]
    pub fn apply_set(&self, s: ProcSet) -> ProcSet {
        s.iter().map(|p| self.apply(p)).collect()
    }

    /// The relabeled configuration: processor `π(i)` starts with `i`'s
    /// value.
    #[must_use]
    pub fn apply_config(&self, config: &InitialConfig) -> InitialConfig {
        let n = self.n();
        assert_eq!(config.n(), n, "configuration has the wrong width");
        let mut values = vec![crate::value::Value::Zero; n];
        for i in 0..n {
            values[self.map[i] as usize] = config.value(ProcessorId::new(i));
        }
        InitialConfig::new(values)
    }

    /// The relabeled behavior: every processor set mentioned inside the
    /// behavior is mapped through `π` (the behavior itself moves to the
    /// relabeled owner separately, in [`Perm::apply_pattern`]).
    #[must_use]
    pub fn apply_behavior(&self, b: &FaultyBehavior) -> FaultyBehavior {
        match b {
            FaultyBehavior::Clean => FaultyBehavior::Clean,
            FaultyBehavior::Crash { round, receivers } => FaultyBehavior::Crash {
                round: *round,
                receivers: self.apply_set(*receivers),
            },
            FaultyBehavior::Omission { omissions } => FaultyBehavior::Omission {
                omissions: omissions.iter().map(|o| self.apply_set(*o)).collect(),
            },
            FaultyBehavior::GeneralOmission { send, receive } => FaultyBehavior::GeneralOmission {
                send: send.iter().map(|o| self.apply_set(*o)).collect(),
                receive: receive.iter().map(|o| self.apply_set(*o)).collect(),
            },
        }
    }

    /// The relabeled pattern `π·q`: processor `π(i)` exhibits `i`'s
    /// behavior with every mentioned processor set mapped through `π`.
    #[must_use]
    pub fn apply_pattern(&self, q: &FailurePattern) -> FailurePattern {
        let n = self.n();
        assert_eq!(q.n(), n, "pattern has the wrong width");
        let mut out = FailurePattern::failure_free(n);
        for i in 0..n {
            let p = ProcessorId::new(i);
            if let Some(b) = q.behavior(p) {
                out.set_behavior(self.apply(p), self.apply_behavior(b));
            }
        }
        out
    }

    /// All `n!` permutations, in lexicographic order of their image
    /// vectors (deterministic across platforms).
    #[must_use]
    pub fn all(n: usize) -> Vec<Perm> {
        assert!(
            n <= MAX_SYMMETRY_N,
            "symmetry supports n ≤ {MAX_SYMMETRY_N}"
        );
        let mut out = Vec::with_capacity(factorial(n) as usize);
        let mut prefix = Vec::with_capacity(n);
        let mut used = vec![false; n];
        fill_perms(n, &mut prefix, &mut used, &mut out);
        out
    }
}

fn fill_perms(n: usize, prefix: &mut Vec<u8>, used: &mut [bool], out: &mut Vec<Perm>) {
    if prefix.len() == n {
        out.push(Perm {
            map: prefix.clone(),
        });
        return;
    }
    for i in 0..n {
        if !used[i] {
            used[i] = true;
            prefix.push(i as u8);
            fill_perms(n, prefix, used, out);
            prefix.pop();
            used[i] = false;
        }
    }
}

/// `n!` as a `u64` (exact for the supported `n ≤ 8`).
#[must_use]
pub fn factorial(n: usize) -> u64 {
    (1..=n as u64).product()
}

/// The canonical form of a failure-pattern orbit: the representative, a
/// witnessing permutation carrying the input onto it, and the orbit size.
#[derive(Clone, Debug)]
pub struct CanonicalPattern {
    /// The lexicographically minimal relabeling of the input pattern.
    pub canonical: FailurePattern,
    /// A permutation `σ` with `σ·input = canonical` (the *recorded
    /// witness* the quotiented run store relabels queries through).
    pub witness: Perm,
    /// `|orbit| = n!/|Stab|` — how many raw patterns the representative
    /// stands for.
    pub orbit_size: u64,
}

/// Enumerates the permutations mapping `faulty` onto the top `|faulty|`
/// index block — the only candidates that can produce the lexicographic
/// minimum (every other permutation leaves a `Some` below a `None`).
fn candidate_perms(n: usize, faulty: ProcSet) -> Vec<Perm> {
    let faulty_list: Vec<u8> = faulty.iter().map(|p| p.index() as u8).collect();
    let nonfaulty_list: Vec<u8> = (0..n as u8)
        .filter(|&i| !faulty.contains(ProcessorId::new(i as usize)))
        .collect();
    let k = faulty_list.len();
    let faulty_targets: Vec<u8> = ((n - k) as u8..n as u8).collect();
    let nonfaulty_targets: Vec<u8> = (0..(n - k) as u8).collect();
    let mut out = Vec::with_capacity((factorial(k) * factorial(n - k)) as usize);
    for f_assign in assignments(&faulty_targets) {
        for nf_assign in assignments(&nonfaulty_targets) {
            let mut map = vec![0u8; n];
            for (src, dst) in faulty_list.iter().zip(&f_assign) {
                map[*src as usize] = *dst;
            }
            for (src, dst) in nonfaulty_list.iter().zip(&nf_assign) {
                map[*src as usize] = *dst;
            }
            out.push(Perm { map });
        }
    }
    out
}

/// All orderings of `items`, lexicographic by position choices.
fn assignments(items: &[u8]) -> Vec<Vec<u8>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest: Vec<u8> = items.to_vec();
        rest.remove(i);
        for mut tail in assignments(&rest) {
            tail.insert(0, x);
            out.push(tail);
        }
    }
    out
}

/// Canonicalizes a failure pattern under `Sym(n)`: the lexicographically
/// minimal relabeling, a witness permutation reaching it, and the orbit
/// size — in one stabilizer-aware pass over the `k!·(n−k)!` candidate
/// permutations (see the module docs).
///
/// # Panics
///
/// Panics when `n > MAX_SYMMETRY_N`.
#[must_use]
pub fn canonicalize(pattern: &FailurePattern) -> CanonicalPattern {
    let n = pattern.n();
    assert!(
        n <= MAX_SYMMETRY_N,
        "symmetry supports n ≤ {MAX_SYMMETRY_N}"
    );
    let faulty = pattern.faulty_set();
    let mut best: Option<(FailurePattern, Perm)> = None;
    let mut min_count: u64 = 0;
    for perm in candidate_perms(n, faulty) {
        let relabeled = perm.apply_pattern(pattern);
        match &best {
            None => {
                best = Some((relabeled, perm));
                min_count = 1;
            }
            Some((cur, _)) => {
                if relabeled < *cur {
                    best = Some((relabeled, perm));
                    min_count = 1;
                } else if relabeled == *cur {
                    min_count += 1;
                }
            }
        }
    }
    let (canonical, witness) = best.expect("candidate set is never empty");
    // #{π : π·q = canonical} = |Stab(canonical)|, so the orbit size is
    // n!/min_count by orbit–stabilizer.
    let orbit_size = factorial(n) / min_count;
    CanonicalPattern {
        canonical,
        witness,
        orbit_size,
    }
}

/// Whether a pattern is its own orbit representative (the builder's
/// skip test: non-representatives are never simulated).
#[must_use]
pub fn is_canonical(pattern: &FailurePattern) -> bool {
    canonicalize(pattern).canonical == *pattern
}

/// The distinct members of a pattern's orbit, sorted (deterministic);
/// the unfolding oracle of the differential suite rebuilds the raw space
/// from these.
#[must_use]
pub fn orbit_members(pattern: &FailurePattern) -> Vec<FailurePattern> {
    let mut out: Vec<FailurePattern> = Perm::all(pattern.n())
        .iter()
        .map(|perm| perm.apply_pattern(pattern))
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::{enumerate, FailureMode, Round, Value};

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn identity_and_inverse_round_trip() {
        let id = Perm::identity(4);
        for i in 0..4 {
            assert_eq!(id.apply(p(i)), p(i));
        }
        for perm in Perm::all(4) {
            let inv = perm.inverse();
            for i in 0..4 {
                assert_eq!(inv.apply(perm.apply(p(i))), p(i));
            }
        }
    }

    #[test]
    fn all_perms_are_distinct_and_complete() {
        let perms = Perm::all(4);
        assert_eq!(perms.len(), 24);
        let mut maps: Vec<_> = perms.iter().map(|q| q.map.clone()).collect();
        maps.sort();
        maps.dedup();
        assert_eq!(maps.len(), 24);
    }

    #[test]
    fn relabeled_patterns_validate_in_their_scenario() {
        for mode in [
            FailureMode::Crash,
            FailureMode::Omission,
            FailureMode::GeneralOmission,
        ] {
            let scenario = Scenario::new(3, 1, mode, 2).unwrap();
            for pattern in enumerate::patterns(&scenario) {
                for perm in Perm::all(3) {
                    let relabeled = perm.apply_pattern(&pattern);
                    assert!(
                        scenario.validate_pattern(&relabeled).is_ok(),
                        "relabeling broke validity: {pattern} under {:?}",
                        perm
                    );
                }
            }
        }
    }

    #[test]
    fn canonical_form_is_orbit_invariant_and_minimal() {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        for pattern in enumerate::patterns(&scenario) {
            let canon = canonicalize(&pattern);
            // The witness actually maps the input onto the canonical form.
            assert_eq!(canon.witness.apply_pattern(&pattern), canon.canonical);
            // Every orbit member canonicalizes to the same representative,
            // which is the orbit's minimum.
            let members = orbit_members(&pattern);
            assert_eq!(canon.canonical, members[0]);
            assert_eq!(members.len() as u64, canon.orbit_size);
            for m in &members {
                assert_eq!(canonicalize(m).canonical, canon.canonical);
            }
        }
    }

    #[test]
    fn orbit_sizes_sum_to_the_raw_pattern_count() {
        for mode in [
            FailureMode::Crash,
            FailureMode::Omission,
            FailureMode::GeneralOmission,
        ] {
            let scenario = Scenario::new(3, 1, mode, 2).unwrap();
            let mut raw = 0u64;
            let mut covered = 0u64;
            for pattern in enumerate::patterns(&scenario) {
                raw += 1;
                if is_canonical(&pattern) {
                    covered += canonicalize(&pattern).orbit_size;
                }
            }
            assert_eq!(covered, raw, "orbit accounting is off in {mode:?}");
        }
    }

    #[test]
    fn canonical_faulty_set_is_the_top_block() {
        let scenario = Scenario::new(4, 2, FailureMode::Crash, 2).unwrap();
        for pattern in enumerate::patterns(&scenario) {
            let canon = canonicalize(&pattern).canonical;
            let k = canon.faulty_set().len();
            let top: ProcSet = (4 - k..4).map(p).collect();
            assert_eq!(canon.faulty_set(), top);
        }
    }

    #[test]
    fn config_relabeling_moves_values_with_labels() {
        let config = InitialConfig::new(vec![Value::One, Value::Zero, Value::Zero]);
        for perm in Perm::all(3) {
            let relabeled = perm.apply_config(&config);
            for i in 0..3 {
                assert_eq!(relabeled.value(perm.apply(p(i))), config.value(p(i)));
            }
        }
    }

    #[test]
    fn crash_receivers_are_relabeled() {
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::singleton(p(1)),
            },
        );
        let perm = Perm::from_map(vec![2, 0, 1]);
        let relabeled = perm.apply_pattern(&pattern);
        match relabeled.behavior(p(2)) {
            Some(FaultyBehavior::Crash { receivers, .. }) => {
                assert_eq!(*receivers, ProcSet::singleton(p(0)));
            }
            other => panic!("expected a crash at the relabeled owner, got {other:?}"),
        }
    }
}
