//! `SbaWaste`: early-stopping *simultaneous* agreement for crash
//! failures, in the style of Dwork–Moses \[DM90\].
//!
//! \[DM90\] prove that in the crash mode common knowledge of the initial
//! configuration's relevant facts arises at time `t + 1 − W`, where the
//! *waste* `W` measures how wastefully the adversary spent its failures:
//! if many crashes reveal themselves early, common knowledge (and hence
//! simultaneous decision) arrives early. This protocol implements the
//! matching decision rule with linear-size messages:
//!
//! * every processor gossips its knowledge of initial values plus, for
//!   every processor `q`, the best known bound "`q` crashed in round
//!   `≤ j`" (a missing round-`j` message from `q` proves `q` crashed in
//!   round `≤ j`; bounds are merged by minimum);
//! * at time `m` let `D_j` = number of processors known to have crashed
//!   in rounds `≤ j`, and `W(m) = max_{1 ≤ j ≤ m} max(0, D_j − j)`;
//! * decide at the first time `m ≥ min(t + 1, n − 1) − W(m)`: 0 if a 0
//!   is known, else 1. (The `n − 1` cap is the degenerate `t ≥ n − 1`
//!   corner: a hidden-information chain needs `t + 1` *distinct*
//!   processors, so with fewer processors common knowledge arrives at
//!   `n − 1` already — found by differential testing against the exact
//!   rule, the same corner that bounds Theorem 6.2.)
//!
//! The reproduction *verifies* (rather than assumes) that this rule
//! matches the exact common-knowledge SBA rule — decisions at identical
//! times with identical values — exhaustively over small systems; see
//! `tests/sba_optimum.rs`.

use eba_model::{ProcessorId, Round, Value};
use eba_sim::Protocol;

/// The waste-based simultaneous-agreement protocol; see the module docs.
#[derive(Clone, Copy, Debug)]
pub struct SbaWaste {
    t: u16,
    n: u16,
}

impl SbaWaste {
    /// Creates the protocol for `n` processors tolerating `t` crash
    /// failures.
    #[must_use]
    pub fn new(n: usize, t: usize) -> Self {
        SbaWaste {
            t: t as u16,
            n: n as u16,
        }
    }

    /// The base decision horizon `min(t + 1, n − 1)`.
    #[must_use]
    pub fn horizon_cap(&self) -> u16 {
        (self.t + 1).min(self.n - 1)
    }
}

/// An [`SbaWaste`] message: value knowledge plus crash bounds.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SbaWasteMessage {
    /// Known initial values (`values[q] = Some(v)` if the sender knows
    /// `q` started with `v`).
    pub values: Vec<Option<Value>>,
    /// `crashed_by[q] = Some(j)`: the sender knows `q` crashed in round
    /// `≤ j`.
    pub crashed_by: Vec<Option<u16>>,
}

/// The local state of [`SbaWaste`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SbaWasteState {
    known: Vec<Option<Value>>,
    crashed_by: Vec<Option<u16>>,
    now: u16,
    decided: Option<Value>,
}

impl SbaWasteState {
    /// The current waste estimate `max_j max(0, D_j − j)`.
    #[must_use]
    pub fn waste(&self) -> u16 {
        let mut best = 0u16;
        for j in 1..=self.now {
            let d_j = self
                .crashed_by
                .iter()
                .filter(|b| b.is_some_and(|bound| bound <= j))
                .count() as u16;
            best = best.max(d_j.saturating_sub(j));
        }
        best
    }

    /// Whether a 0 is known.
    #[must_use]
    pub fn knows_zero(&self) -> bool {
        self.known.contains(&Some(Value::Zero))
    }
}

impl Protocol for SbaWaste {
    type State = SbaWasteState;
    type Message = SbaWasteMessage;

    fn name(&self) -> &str {
        "SbaWaste"
    }

    fn initial_state(&self, p: ProcessorId, n: usize, value: Value) -> SbaWasteState {
        assert_eq!(
            n, self.n as usize,
            "protocol instantiated for a different n"
        );
        let mut known = vec![None; n];
        known[p.index()] = Some(value);
        SbaWasteState {
            known,
            crashed_by: vec![None; n],
            now: 0,
            decided: None,
        }
    }

    fn message(
        &self,
        state: &SbaWasteState,
        _from: ProcessorId,
        _to: ProcessorId,
        _round: Round,
    ) -> Option<SbaWasteMessage> {
        Some(SbaWasteMessage {
            values: state.known.clone(),
            crashed_by: state.crashed_by.clone(),
        })
    }

    fn transition(
        &self,
        state: &SbaWasteState,
        p: ProcessorId,
        round: Round,
        received: &[Option<SbaWasteMessage>],
    ) -> SbaWasteState {
        let mut next = state.clone();
        next.now += 1;
        for (q, msg) in received.iter().enumerate() {
            match msg {
                Some(msg) => {
                    for (k, v) in msg.values.iter().enumerate() {
                        if let Some(v) = v {
                            next.known[k] = Some(*v);
                        }
                    }
                    for (k, bound) in msg.crashed_by.iter().enumerate() {
                        if let Some(bound) = bound {
                            next.crashed_by[k] = Some(match next.crashed_by[k] {
                                Some(prev) => prev.min(*bound),
                                None => *bound,
                            });
                        }
                    }
                }
                None if q != p.index() => {
                    // A missing message proves its sender crashed in this
                    // round or earlier.
                    let bound = round.number();
                    next.crashed_by[q] = Some(match next.crashed_by[q] {
                        Some(prev) => prev.min(bound),
                        None => bound,
                    });
                }
                None => {}
            }
        }

        if next.decided.is_none() && next.now >= self.horizon_cap().saturating_sub(next.waste()) {
            next.decided = Some(if next.knows_zero() {
                Value::Zero
            } else {
                Value::One
            });
        }
        next
    }

    fn output(&self, state: &SbaWasteState, _p: ProcessorId) -> Option<Value> {
        state.decided
    }

    fn message_units(&self, message: &SbaWasteMessage) -> u64 {
        (message.values.len() + message.crashed_by.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{
        enumerate, FailureMode, FailurePattern, FaultyBehavior, InitialConfig, ProcSet, Scenario,
        Time,
    };
    use eba_sim::execute_unchecked as execute;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn failure_free_decides_at_t_plus_one() {
        let protocol = SbaWaste::new(4, 2);
        let trace = execute(
            &protocol,
            &InitialConfig::uniform(4, Value::One),
            &FailurePattern::failure_free(4),
            Time::new(4),
        );
        for i in 0..4 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::new(3)));
            assert_eq!(trace.decided_value(p(i)), Some(Value::One));
        }
        assert!(trace.satisfies_simultaneity());
    }

    #[test]
    fn visible_double_crash_saves_a_round() {
        // Both failures burn in round 1, visibly: waste 1, decide at
        // t+1−1 = 2.
        let protocol = SbaWaste::new(4, 2);
        let pattern = FailurePattern::failure_free(4)
            .with_behavior(
                p(0),
                FaultyBehavior::Crash {
                    round: Round::new(1),
                    receivers: ProcSet::empty(),
                },
            )
            .with_behavior(
                p(1),
                FaultyBehavior::Crash {
                    round: Round::new(1),
                    receivers: ProcSet::empty(),
                },
            );
        let trace = execute(
            &protocol,
            &InitialConfig::uniform(4, Value::One),
            &pattern,
            Time::new(5),
        );
        for i in 2..4 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::new(2)));
        }
        assert!(trace.satisfies_simultaneity());
    }

    #[test]
    fn exhaustive_sba_properties_small() {
        for (n, t, hz) in [(3usize, 1usize, 3u16), (4, 2, 5)] {
            let scenario = Scenario::new(n, t, FailureMode::Crash, hz).unwrap();
            let protocol = SbaWaste::new(n, t);
            for pattern in enumerate::patterns(&scenario) {
                for config in InitialConfig::enumerate_all(n) {
                    let trace = execute(&protocol, &config, &pattern, scenario.horizon());
                    assert!(trace.satisfies_decision(), "{config} {pattern}");
                    assert!(trace.satisfies_weak_agreement(), "{config} {pattern}");
                    assert!(trace.satisfies_weak_validity(), "{config} {pattern}");
                    assert!(trace.satisfies_simultaneity(), "{config} {pattern}");
                }
            }
        }
    }
}
