//! Multi-valued agreement (the Section 2.1 extension note: "Extending
//! our methods to the general case is straightforward").
//!
//! The paper works with `V = {0, 1}` for simplicity; these protocols work
//! over an arbitrary finite domain `V = {0, …, k − 1}` in the crash mode:
//!
//! * [`MultiFloodMin`] — flood the minimum seen for `t + 1` rounds and
//!   decide it (simultaneous);
//! * [`MultiEarlyStop`] — the clean-round early-stopping variant (the
//!   multi-valued generalization of [`crate::EarlyStoppingCrash`]);
//! * [`MultiRelay`] — the multi-valued generalization of `P0`: a priority
//!   list of values; the top value is decided the instant it is learned,
//!   and the `t + 1` fallback decides the highest-priority member of the
//!   flooded seen-set (consistent by the FloodSet theorem). As in
//!   Proposition 2.1, the `k!` priority orders give protocols none of
//!   which dominates another — the no-optimum argument generalizes
//!   (tested).
//!
//! Values are `u8`s below the protocol's domain size; decisions are
//! reported through a per-processor decision log rather than the binary
//! [`eba_sim::Protocol`] output (whose output type is the paper's binary
//! `V`), so these protocols implement [`MultiProtocol`] and run under
//! [`execute_multi`].

use eba_model::{FailurePattern, InitialConfig, ProcSet, ProcessorId, Round, Time, Value};
use std::fmt::Debug;

/// A multi-valued initial configuration: one value in `0..domain` per
/// processor.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MultiConfig {
    domain: u8,
    values: Vec<u8>,
}

impl MultiConfig {
    /// Creates a configuration; every value must be below `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty, or any value is `≥ domain`.
    #[must_use]
    pub fn new(domain: u8, values: Vec<u8>) -> Self {
        assert!(!values.is_empty());
        assert!(values.iter().all(|&v| v < domain), "value out of domain");
        MultiConfig { domain, values }
    }

    /// Embeds a binary [`InitialConfig`].
    #[must_use]
    pub fn from_binary(config: &InitialConfig) -> Self {
        MultiConfig {
            domain: 2,
            values: config.values().iter().map(|v| v.as_u8()).collect(),
        }
    }

    /// The domain size `k`.
    #[must_use]
    pub fn domain(&self) -> u8 {
        self.domain
    }

    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// The value of processor `p`.
    #[must_use]
    pub fn value(&self, p: ProcessorId) -> u8 {
        self.values[p.index()]
    }

    /// Whether all processors hold the same value.
    #[must_use]
    pub fn all_same(&self) -> bool {
        self.values.iter().all(|&v| v == self.values[0])
    }

    /// Enumerates all `k^n` configurations (for exhaustive tests).
    pub fn enumerate_all(domain: u8, n: usize) -> impl Iterator<Item = MultiConfig> {
        let total = (u64::from(domain)).pow(n as u32);
        (0..total).map(move |mut code| {
            let values = (0..n)
                .map(|_| {
                    let v = (code % u64::from(domain)) as u8;
                    code /= u64::from(domain);
                    v
                })
                .collect();
            MultiConfig { domain, values }
        })
    }
}

/// A deterministic synchronous protocol over a multi-valued domain.
pub trait MultiProtocol {
    /// The local-state set.
    type State: Clone + Debug;
    /// The message alphabet.
    type Message: Clone + Debug;

    /// A short name for reports.
    fn name(&self) -> &str;
    /// The initial state of `p` given its initial value.
    fn initial_state(&self, p: ProcessorId, n: usize, value: u8) -> Self::State;
    /// The message from `from` to `to` in `round`, if any.
    fn message(
        &self,
        state: &Self::State,
        from: ProcessorId,
        to: ProcessorId,
        round: Round,
    ) -> Option<Self::Message>;
    /// The state transition at the end of `round`.
    fn transition(
        &self,
        state: &Self::State,
        p: ProcessorId,
        round: Round,
        received: &[Option<Self::Message>],
    ) -> Self::State;
    /// The decided value, once decided.
    fn output(&self, state: &Self::State, p: ProcessorId) -> Option<u8>;
}

/// The outcome of one multi-valued run.
#[derive(Clone, Debug)]
pub struct MultiTrace {
    nonfaulty: ProcSet,
    config: MultiConfig,
    decisions: Vec<Option<(u8, Time)>>,
}

impl MultiTrace {
    /// The decision of `p`, if any.
    #[must_use]
    pub fn decision(&self, p: ProcessorId) -> Option<(u8, Time)> {
        self.decisions[p.index()]
    }

    /// The nonfaulty processors.
    #[must_use]
    pub fn nonfaulty(&self) -> ProcSet {
        self.nonfaulty
    }

    /// Weak agreement over nonfaulty processors.
    #[must_use]
    pub fn satisfies_weak_agreement(&self) -> bool {
        let mut values = self
            .nonfaulty
            .iter()
            .filter_map(|p| self.decision(p))
            .map(|(v, _)| v);
        match values.next() {
            None => true,
            Some(first) => values.all(|v| v == first),
        }
    }

    /// Weak validity: identical inputs force that output.
    #[must_use]
    pub fn satisfies_weak_validity(&self) -> bool {
        if !self.config.all_same() {
            return true;
        }
        let v = self.config.value(ProcessorId::new(0));
        self.nonfaulty
            .iter()
            .filter_map(|p| self.decision(p))
            .all(|(d, _)| d == v)
    }

    /// *Strong* validity: the decided value is some processor's initial
    /// value (meaningful for multi-valued domains; trivial for binary).
    #[must_use]
    pub fn satisfies_strong_validity(&self) -> bool {
        self.nonfaulty
            .iter()
            .filter_map(|p| self.decision(p))
            .all(|(d, _)| (0..self.config.n()).any(|q| self.config.value(ProcessorId::new(q)) == d))
    }

    /// Every nonfaulty processor decided.
    #[must_use]
    pub fn satisfies_decision(&self) -> bool {
        self.nonfaulty.iter().all(|p| self.decision(p).is_some())
    }
}

/// Executes a multi-valued protocol, mirroring [`eba_sim::execute`]'s
/// semantics (crash-dead processors freeze, the pattern governs
/// delivery).
///
/// # Panics
///
/// Panics if the configuration and pattern disagree on `n`.
pub fn execute_multi<P: MultiProtocol>(
    protocol: &P,
    config: &MultiConfig,
    pattern: &FailurePattern,
    horizon: Time,
) -> MultiTrace {
    let n = config.n();
    assert_eq!(n, pattern.n());
    let mut states: Vec<P::State> = ProcessorId::all(n)
        .map(|p| protocol.initial_state(p, n, config.value(p)))
        .collect();
    let mut decisions: Vec<Option<(u8, Time)>> = vec![None; n];
    let record = |states: &[P::State], time: Time, decisions: &mut Vec<Option<(u8, Time)>>| {
        for (idx, state) in states.iter().enumerate() {
            if decisions[idx].is_none() {
                if let Some(v) = protocol.output(state, ProcessorId::new(idx)) {
                    decisions[idx] = Some((v, time));
                }
            }
        }
    };
    record(&states, Time::ZERO, &mut decisions);
    for round in Round::upto(horizon) {
        let prev = states.clone();
        for receiver in ProcessorId::all(n) {
            if pattern.crashed_by(receiver, round.end()) {
                continue; // frozen
            }
            let received: Vec<Option<P::Message>> = ProcessorId::all(n)
                .map(|sender| {
                    pattern
                        .delivers(sender, receiver, round)
                        .then(|| protocol.message(&prev[sender.index()], sender, receiver, round))
                        .flatten()
                })
                .collect();
            states[receiver.index()] =
                protocol.transition(&prev[receiver.index()], receiver, round, &received);
        }
        record(&states, round.end(), &mut decisions);
    }
    MultiTrace {
        nonfaulty: pattern.nonfaulty_set(),
        config: config.clone(),
        decisions,
    }
}

/// Multi-valued `FloodMin`: flood the minimum for `t + 1` rounds, decide
/// it simultaneously (crash mode).
#[derive(Clone, Copy, Debug)]
pub struct MultiFloodMin {
    t: u16,
}

impl MultiFloodMin {
    /// Creates the protocol for `t` tolerated crash failures.
    #[must_use]
    pub fn new(t: usize) -> Self {
        MultiFloodMin { t: t as u16 }
    }
}

impl MultiProtocol for MultiFloodMin {
    type State = (u8, u16, Option<u8>);
    type Message = u8;

    fn name(&self) -> &str {
        "MultiFloodMin"
    }

    fn initial_state(&self, _p: ProcessorId, _n: usize, value: u8) -> Self::State {
        (value, 0, None)
    }

    fn message(
        &self,
        state: &Self::State,
        _f: ProcessorId,
        _t: ProcessorId,
        _r: Round,
    ) -> Option<u8> {
        Some(state.0)
    }

    fn transition(
        &self,
        state: &Self::State,
        _p: ProcessorId,
        _round: Round,
        received: &[Option<u8>],
    ) -> Self::State {
        let min = received
            .iter()
            .flatten()
            .fold(state.0, |acc, &v| acc.min(v));
        let now = state.1 + 1;
        let decided = state.2.or((now > self.t).then_some(min));
        (min, now, decided)
    }

    fn output(&self, state: &Self::State, _p: ProcessorId) -> Option<u8> {
        state.2
    }
}

/// Multi-valued clean-round early stopping (crash mode): decide the
/// current minimum at the first round whose heard-from set matches the
/// previous round's, with a `t + 1` fallback.
#[derive(Clone, Copy, Debug)]
pub struct MultiEarlyStop {
    t: u16,
}

impl MultiEarlyStop {
    /// Creates the protocol for `t` tolerated crash failures.
    #[must_use]
    pub fn new(t: usize) -> Self {
        MultiEarlyStop { t: t as u16 }
    }
}

/// State of [`MultiEarlyStop`].
#[derive(Clone, Debug)]
pub struct MultiEarlyStopState {
    min: u8,
    heard_prev: Option<ProcSet>,
    now: u16,
    decided: Option<u8>,
}

impl MultiProtocol for MultiEarlyStop {
    type State = MultiEarlyStopState;
    type Message = u8;

    fn name(&self) -> &str {
        "MultiEarlyStop"
    }

    fn initial_state(&self, _p: ProcessorId, _n: usize, value: u8) -> Self::State {
        MultiEarlyStopState {
            min: value,
            heard_prev: None,
            now: 0,
            decided: None,
        }
    }

    fn message(
        &self,
        state: &Self::State,
        _f: ProcessorId,
        _t: ProcessorId,
        _r: Round,
    ) -> Option<u8> {
        Some(state.min)
    }

    fn transition(
        &self,
        state: &Self::State,
        _p: ProcessorId,
        _round: Round,
        received: &[Option<u8>],
    ) -> Self::State {
        let mut heard = ProcSet::empty();
        let mut min = state.min;
        for (j, msg) in received.iter().enumerate() {
            if let Some(v) = msg {
                heard.insert(ProcessorId::new(j));
                min = min.min(*v);
            }
        }
        let now = state.now + 1;
        let decided = state.decided.or({
            if state.heard_prev == Some(heard) || now > self.t {
                Some(min)
            } else {
                None
            }
        });
        MultiEarlyStopState {
            min,
            heard_prev: Some(heard),
            now,
            decided,
        }
    }

    fn output(&self, state: &Self::State, _p: ProcessorId) -> Option<u8> {
        state.decided
    }
}

/// The multi-valued generalization of `P0`/`P1` (Proposition 2.1): a
/// priority order over the domain. The *top*-priority value is decided
/// the instant it is learned (its holders decide at time 0 — exactly
/// `P0`'s rule for 0); all values seen are flooded as a set, and a
/// processor that has not learned the top value by time `t + 1` decides
/// the highest-priority value in its seen-set. The FloodSet theorem
/// (crash mode: after `t + 1` rounds of set flooding all nonfaulty
/// processors hold the same set) makes the fallback consistent, and
/// consistency with the eager deciders follows as for `P0`: a top value
/// known to any nonfaulty processor by `t + 1` is known to all.
///
/// `MultiRelay::new(t, vec![0, 1])` makes the same decisions as `P0`
/// except that the fallback can fire early when 1's presence is already
/// universal — so, exactly as in the paper, no protocol can dominate two
/// `MultiRelay`s with different top priorities (the holders of each top
/// value decide at time 0).
#[derive(Clone, Debug)]
pub struct MultiRelay {
    t: u16,
    /// `priority[0]` is decided most eagerly.
    priority: Vec<u8>,
}

impl MultiRelay {
    /// Creates the protocol; `priority` must be a permutation of
    /// `0..domain` (domain ≤ 8).
    ///
    /// # Panics
    ///
    /// Panics if `priority` is not a permutation of `0..priority.len()`
    /// or the domain exceeds 8 values.
    #[must_use]
    pub fn new(t: usize, priority: Vec<u8>) -> Self {
        assert!(priority.len() <= 8, "seen-sets are 8-bit masks");
        let mut sorted = priority.clone();
        sorted.sort_unstable();
        assert!(
            sorted.iter().enumerate().all(|(i, &v)| v as usize == i),
            "priority must be a permutation of the domain"
        );
        MultiRelay {
            t: t as u16,
            priority,
        }
    }

    fn top(&self) -> u8 {
        self.priority[0]
    }
}

/// State of [`MultiRelay`].
#[derive(Clone, Copy, Debug)]
pub struct MultiRelayState {
    /// Bitmask of values seen.
    seen: u8,
    now: u16,
    decided: Option<u8>,
}

impl MultiProtocol for MultiRelay {
    type State = MultiRelayState;
    /// Messages carry the sender's seen-set mask.
    type Message = u8;

    fn name(&self) -> &str {
        "MultiRelay"
    }

    fn initial_state(&self, _p: ProcessorId, _n: usize, value: u8) -> Self::State {
        let seen = 1u8 << value;
        // Top-priority holders decide immediately (P0's rule for 0).
        let decided = (value == self.top()).then_some(value);
        MultiRelayState {
            seen,
            now: 0,
            decided,
        }
    }

    fn message(
        &self,
        state: &Self::State,
        _f: ProcessorId,
        _t: ProcessorId,
        round: Round,
    ) -> Option<u8> {
        (round.number() <= self.t + 1).then_some(state.seen)
    }

    fn transition(
        &self,
        state: &Self::State,
        _p: ProcessorId,
        _round: Round,
        received: &[Option<u8>],
    ) -> Self::State {
        let mut next = *state;
        next.now += 1;
        for mask in received.iter().flatten() {
            next.seen |= mask;
        }
        if next.decided.is_none() {
            if next.seen & (1 << self.top()) != 0 {
                next.decided = Some(self.top());
            } else if next.now > self.t {
                // FloodSet: all nonfaulty share `seen` now; pick the
                // highest-priority member.
                next.decided = self
                    .priority
                    .iter()
                    .copied()
                    .find(|&v| next.seen & (1 << v) != 0);
            }
        }
        next
    }

    fn output(&self, state: &Self::State, _p: ProcessorId) -> Option<u8> {
        state.decided
    }
}

/// Re-export of binary values for embedding tests.
#[must_use]
pub fn binary_as_multi(v: Value) -> u8 {
    v.as_u8()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{enumerate, FailureMode, Scenario};

    fn exhaustive_check<P: MultiProtocol>(
        protocol: &P,
        domain: u8,
        n: usize,
        t: usize,
        horizon: u16,
        require_simultaneous: bool,
    ) {
        let scenario = Scenario::new(n, t, FailureMode::Crash, horizon).unwrap();
        for pattern in enumerate::patterns(&scenario) {
            for config in MultiConfig::enumerate_all(domain, n) {
                let trace = execute_multi(protocol, &config, &pattern, scenario.horizon());
                assert!(trace.satisfies_decision(), "{pattern}");
                assert!(trace.satisfies_weak_agreement(), "{pattern}");
                assert!(trace.satisfies_weak_validity(), "{pattern}");
                assert!(trace.satisfies_strong_validity(), "{pattern}");
                if require_simultaneous {
                    let mut times = trace
                        .nonfaulty()
                        .iter()
                        .map(|p| trace.decision(p).unwrap().1);
                    let first = times.next().unwrap();
                    assert!(times.all(|x| x == first), "{pattern}");
                }
            }
        }
    }

    #[test]
    fn multi_floodmin_is_simultaneous_agreement_domain3() {
        exhaustive_check(&MultiFloodMin::new(1), 3, 3, 1, 3, true);
    }

    #[test]
    fn multi_early_stop_is_agreement_domain3() {
        exhaustive_check(&MultiEarlyStop::new(1), 3, 3, 1, 3, false);
    }

    #[test]
    fn multi_relay_is_agreement_domain3() {
        for priority in [vec![0u8, 1, 2], vec![2, 0, 1], vec![1, 2, 0]] {
            exhaustive_check(&MultiRelay::new(1, priority), 3, 3, 1, 3, false);
        }
    }

    #[test]
    fn multi_relay_with_binary_domain_decides_zero_like_p0() {
        // MultiRelay(t, [0,1]) decides 0 at exactly P0's times (the
        // decide-0 rule is identical); its decide-1 fallback is never
        // later than P0's t+1 timeout.
        use crate::Relay;
        use eba_sim::execute_unchecked as execute;
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        let relay = Relay::p0(1);
        let multi = MultiRelay::new(1, vec![0, 1]);
        for pattern in enumerate::patterns(&scenario) {
            for config in InitialConfig::enumerate_all(3) {
                let binary = execute(&relay, &config, &pattern, scenario.horizon());
                let mc = MultiConfig::from_binary(&config);
                let m = execute_multi(&multi, &mc, &pattern, scenario.horizon());
                for p in pattern.nonfaulty_set() {
                    let b = binary.decision(p).map(|d| (d.value.as_u8(), d.time));
                    let (mv, mt) = m.decision(p).unwrap();
                    let (bv, bt) = b.unwrap();
                    assert_eq!(mv, bv, "{config} {pattern} {p}");
                    if mv == 0 {
                        assert_eq!(mt, bt, "{config} {pattern} {p}");
                    } else {
                        assert!(mt <= bt, "{config} {pattern} {p}");
                    }
                }
            }
        }
    }

    #[test]
    fn no_optimum_generalizes_to_three_values() {
        // Proposition 2.1, multi-valued: holders of the top-priority
        // value decide at time 0, so protocols with different top values
        // are mutually undominated.
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        let a = MultiRelay::new(1, vec![0, 1, 2]);
        let b = MultiRelay::new(1, vec![2, 0, 1]);
        let mut a_beats = false;
        let mut b_beats = false;
        for pattern in enumerate::patterns(&scenario) {
            for config in MultiConfig::enumerate_all(3, 3) {
                let ta = execute_multi(&a, &config, &pattern, scenario.horizon());
                let tb = execute_multi(&b, &config, &pattern, scenario.horizon());
                for p in pattern.nonfaulty_set() {
                    let (_, time_a) = ta.decision(p).unwrap();
                    let (_, time_b) = tb.decision(p).unwrap();
                    a_beats |= time_a < time_b;
                    b_beats |= time_b < time_a;
                }
            }
        }
        assert!(a_beats && b_beats, "neither may dominate the other");
    }

    #[test]
    fn enumerate_all_counts() {
        assert_eq!(MultiConfig::enumerate_all(3, 3).count(), 27);
        assert_eq!(MultiConfig::enumerate_all(2, 4).count(), 16);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_priority_rejected() {
        let _ = MultiRelay::new(1, vec![0, 0, 1]);
    }
}
