//! Offline deterministic stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This shim implements the subset of the API the
//! workspace uses: the [`proptest!`] macro, the [`Strategy`] trait with
//! `prop_map`/`prop_recursive`/`boxed`, [`prop_oneof!`], ranges and
//! tuples as strategies, `bool::ANY`, `num::*::ANY`, `array::uniform3`,
//! [`prop_assert!`]/[`prop_assert_eq!`], `ProptestConfig`, and
//! `TestCaseError`.
//!
//! Differences from upstream: no shrinking (failing inputs are reported
//! as-is), and case generation is seeded deterministically from the test
//! name, so runs are reproducible without a persistence file.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `true` or `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Numeric strategies, one submodule per primitive type.
pub mod num {
    macro_rules! int_any_mod {
        ($($mod_name:ident => $t:ty),* $(,)?) => {$(
            /// Strategies for this integer type.
            pub mod $mod_name {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Generates any value of the type, uniformly.
                #[derive(Clone, Copy, Debug)]
                pub struct Any;

                /// The canonical full-range strategy.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                        wide as $t
                    }
                }
            }
        )*};
    }

    int_any_mod! {
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
        i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize,
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `[S::Value; 3]` from three independent draws.
    #[derive(Clone, Debug)]
    pub struct Uniform3<S>(S);

    /// Generates `[T; 3]` arrays by sampling `strategy` three times.
    pub fn uniform3<S: Strategy>(strategy: S) -> Uniform3<S> {
        Uniform3(strategy)
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property-based tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    u64::from(case),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = result {
                    panic!(
                        "proptest `{}` failed at case {} of {}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        err,
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    (($config:expr);) => {};
}

/// Picks one of the listed strategies uniformly per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($item)),+
        ])
    };
}

/// Fails the enclosing property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_owned(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {left:?}\n right: {right:?}",
                    stringify!($left),
                    stringify!($right),
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}
