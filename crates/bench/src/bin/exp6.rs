//! Experiment EXP6; see `eba_bench::experiments::exp6`.
fn main() {
    for table in eba_bench::experiments::exp6() {
        table.print();
    }
    eba_bench::experiments::exp6b_f_star_gain().print();
    eba_bench::experiments::exp6c_two_optima().print();
}
