//! Failure modes, faulty behaviors, and failure patterns (Section 2.1).

use crate::{ModelError, ProcSet, ProcessorId, Round, Time};
use std::fmt;

/// The failure mode of a system: which deviations faulty processors may
/// exhibit.
///
/// The paper studies *crash* failures and *(sending-)omission* failures
/// (Section 2.1). *General omission* failures (\[PT86\]), where a faulty
/// processor may also fail to receive, are explicitly out of the paper's
/// scope; the reproduction implements them as an extension to test which
/// results carry over (experiment EXP11). Byzantine failures remain out
/// of scope.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FailureMode {
    /// A faulty processor obeys its protocol until some round `k`, sends an
    /// arbitrary subset of its round-`k` messages, and sends nothing
    /// afterwards.
    Crash,
    /// A faulty processor obeys its protocol except that it may omit to
    /// send an arbitrary set of messages in each round (*sending omission*
    /// failures of \[MT88\]).
    Omission,
    /// A faulty processor may omit to send **and to receive** arbitrary
    /// sets of messages in each round (*general omission* failures of
    /// \[PT86\]) — the reproduction's extension mode.
    GeneralOmission,
}

impl FailureMode {
    /// The paper's two failure modes.
    pub const ALL: [FailureMode; 2] = [FailureMode::Crash, FailureMode::Omission];

    /// The paper's modes plus the general-omission extension.
    pub const ALL_EXTENDED: [FailureMode; 3] = [
        FailureMode::Crash,
        FailureMode::Omission,
        FailureMode::GeneralOmission,
    ];
}

impl fmt::Display for FailureMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureMode::Crash => write!(f, "crash"),
            FailureMode::Omission => write!(f, "omission"),
            FailureMode::GeneralOmission => write!(f, "general-omission"),
        }
    }
}

/// The faulty behavior of a single faulty processor within the finite
/// horizon.
///
/// A *clean* behavior ([`FaultyBehavior::Clean`]) deviates nowhere inside
/// the horizon: it models a processor that fails only after the horizon.
/// Including it in the pattern space is what keeps knowledge honest — a
/// processor that observes only correct behavior from `j` can still not
/// rule out that `j` is faulty.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FaultyBehavior {
    /// Faulty, but exhibits no deviation within the horizon.
    Clean,
    /// Crashes in `round`: delivers its round-`round` message only to
    /// `receivers` and is silent (and dead) in later rounds.
    Crash {
        /// The round in which the crash occurs.
        round: Round,
        /// The processors that still receive the crash-round message.
        receivers: ProcSet,
    },
    /// Omits messages per round: `omissions[k-1]` is the set of processors
    /// that do **not** receive this processor's round-`k` message.
    Omission {
        /// Omission sets, indexed by round number − 1; length equals the
        /// horizon.
        omissions: Vec<ProcSet>,
    },
    /// General omission (\[PT86\], extension): per round, messages omitted
    /// on the sending side and on the receiving side.
    GeneralOmission {
        /// `send[k-1]` = processors not receiving this processor's
        /// round-`k` message.
        send: Vec<ProcSet>,
        /// `receive[k-1]` = processors whose round-`k` message this
        /// processor fails to receive.
        receive: Vec<ProcSet>,
    },
}

impl FaultyBehavior {
    /// Whether this behavior is permitted under `mode`.
    ///
    /// `Clean` is permitted in both modes (it is also expressible as an
    /// all-empty `Omission`, but enumerators use the canonical encoding:
    /// `Clean` in crash mode, the empty omission vector in omission mode).
    #[must_use]
    pub fn allowed_in(&self, mode: FailureMode) -> bool {
        match (self, mode) {
            (FaultyBehavior::Clean, _) => true,
            (FaultyBehavior::Crash { .. }, FailureMode::Crash) => true,
            (FaultyBehavior::Omission { .. }, FailureMode::Omission) => true,
            // General omission subsumes sending omission.
            (FaultyBehavior::Omission { .. }, FailureMode::GeneralOmission) => true,
            (FaultyBehavior::GeneralOmission { .. }, FailureMode::GeneralOmission) => true,
            _ => false,
        }
    }

    /// Whether a message sent in `round` by a processor with this behavior
    /// reaches `receiver`.
    #[must_use]
    pub fn delivers(&self, round: Round, receiver: ProcessorId) -> bool {
        match self {
            FaultyBehavior::Clean => true,
            FaultyBehavior::Crash {
                round: crash_round,
                receivers,
            } => {
                if round < *crash_round {
                    true
                } else if round == *crash_round {
                    receivers.contains(receiver)
                } else {
                    false
                }
            }
            FaultyBehavior::Omission { omissions } => omissions
                .get(round.number() as usize - 1)
                .is_none_or(|omitted| !omitted.contains(receiver)),
            FaultyBehavior::GeneralOmission { send, .. } => send
                .get(round.number() as usize - 1)
                .is_none_or(|omitted| !omitted.contains(receiver)),
        }
    }

    /// Whether a processor with this behavior *receives* the round-`round`
    /// message from `sender` (assuming it was sent) — `false` only for a
    /// general-omission receive failure.
    #[must_use]
    pub fn receives(&self, round: Round, sender: ProcessorId) -> bool {
        match self {
            FaultyBehavior::GeneralOmission { receive, .. } => receive
                .get(round.number() as usize - 1)
                .is_none_or(|omitted| !omitted.contains(sender)),
            _ => true,
        }
    }

    /// Whether the processor is dead (has crashed) *before* the given round
    /// begins, and therefore no longer receives messages.
    ///
    /// Only crash behaviors ever report `true`: an omission-faulty
    /// processor keeps receiving normally.
    #[must_use]
    pub fn is_dead_in(&self, round: Round) -> bool {
        match self {
            FaultyBehavior::Crash {
                round: crash_round, ..
            } => round > *crash_round,
            _ => false,
        }
    }

    /// The first round in which this behavior deviates from the protocol
    /// within horizon `horizon` (omits at least one message it should have
    /// sent to one of the `n` processors other than itself), if any.
    #[must_use]
    pub fn first_deviation(&self, me: ProcessorId, n: usize, horizon: Time) -> Option<Round> {
        let others = ProcSet::full(n) - ProcSet::singleton(me);
        Round::upto(horizon).find(|&r| others.iter().any(|q| !self.delivers(r, q)))
    }

    /// Restricts this behavior (of processor `me` in a system of `n`) to a
    /// smaller `horizon`, returning the **canonical** base-horizon behavior
    /// that produces identical deliveries, receptions, and crash freezes in
    /// every round up to `horizon` — or `None` when no canonical behavior
    /// does.
    ///
    /// The `None` case is a crash in round `horizon` that delivers to every
    /// other processor: within `horizon` it deviates nowhere *visible to
    /// others*, so the canonical enumeration of the base horizon skips it,
    /// yet it is not equivalent to `Clean` either — the crashed processor's
    /// own view freezes at `horizon` where a clean processor's keeps
    /// growing. This is the inverse of horizon extension: a run whose
    /// behavior truncates to `Some(b)` has, up to `horizon`, exactly the
    /// views of the base run with behavior `b` (see
    /// [`crate::Scenario::extend_horizon`]).
    #[must_use]
    pub fn truncated_to(&self, me: ProcessorId, n: usize, horizon: Time) -> Option<FaultyBehavior> {
        match self {
            FaultyBehavior::Clean => Some(FaultyBehavior::Clean),
            FaultyBehavior::Crash { round, receivers } => {
                if round.end() > horizon {
                    // The crash happens after the base horizon: inside it
                    // the processor delivers, receives, and extends its
                    // view exactly like a clean one.
                    Some(FaultyBehavior::Clean)
                } else if round.end() == horizon
                    && *receivers == ProcSet::full(n) - ProcSet::singleton(me)
                {
                    None
                } else {
                    Some(self.clone())
                }
            }
            FaultyBehavior::Omission { omissions } => Some(FaultyBehavior::Omission {
                omissions: omissions[..horizon.index().min(omissions.len())].to_vec(),
            }),
            FaultyBehavior::GeneralOmission { send, receive } => {
                Some(FaultyBehavior::GeneralOmission {
                    send: send[..horizon.index().min(send.len())].to_vec(),
                    receive: receive[..horizon.index().min(receive.len())].to_vec(),
                })
            }
        }
    }

    /// Re-encodes this behavior for a larger `horizon` without changing
    /// any delivery inside the original one: crash rounds are preserved
    /// and omission vectors are padded with empty rounds (the processor
    /// deviates nowhere in the added rounds). The inverse direction of
    /// [`FaultyBehavior::truncated_to`].
    #[must_use]
    pub fn padded_to(&self, horizon: Time) -> FaultyBehavior {
        let pad = |v: &[ProcSet]| {
            let mut v = v.to_vec();
            v.resize(horizon.index(), ProcSet::empty());
            v
        };
        match self {
            FaultyBehavior::Clean | FaultyBehavior::Crash { .. } => self.clone(),
            FaultyBehavior::Omission { omissions } => FaultyBehavior::Omission {
                omissions: pad(omissions),
            },
            FaultyBehavior::GeneralOmission { send, receive } => FaultyBehavior::GeneralOmission {
                send: pad(send),
                receive: pad(receive),
            },
        }
    }
}

impl fmt::Display for FaultyBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultyBehavior::Clean => write!(f, "clean"),
            FaultyBehavior::Crash { round, receivers } => {
                write!(f, "crash@{round}→{receivers}")
            }
            FaultyBehavior::Omission { omissions } => {
                write!(f, "omit[")?;
                for (i, o) in omissions.iter().enumerate() {
                    if i > 0 {
                        write!(f, ";")?;
                    }
                    write!(f, "{o}")?;
                }
                write!(f, "]")
            }
            FaultyBehavior::GeneralOmission { send, receive } => {
                write!(f, "gomit[send:")?;
                for (i, o) in send.iter().enumerate() {
                    if i > 0 {
                        write!(f, ";")?;
                    }
                    write!(f, "{o}")?;
                }
                write!(f, " recv:")?;
                for (i, o) in receive.iter().enumerate() {
                    if i > 0 {
                        write!(f, ";")?;
                    }
                    write!(f, "{o}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A failure pattern: the faulty behavior of every processor that fails in
/// the run (Section 2.3).
///
/// A protocol, an initial configuration, and a failure pattern uniquely
/// determine a run.
///
/// # Example
///
/// ```
/// use eba_model::{FailurePattern, FaultyBehavior, ProcSet, ProcessorId, Round};
///
/// let p0 = ProcessorId::new(0);
/// let pattern = FailurePattern::failure_free(3)
///     .with_behavior(p0, FaultyBehavior::Crash {
///         round: Round::new(1),
///         receivers: ProcSet::empty(),
///     });
/// assert_eq!(pattern.faulty_set().len(), 1);
/// assert!(!pattern.delivers(p0, ProcessorId::new(1), Round::new(1)));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FailurePattern {
    behaviors: Vec<Option<FaultyBehavior>>,
}

impl FailurePattern {
    /// The failure-free pattern for `n` processors.
    #[must_use]
    pub fn failure_free(n: usize) -> Self {
        assert!((1..=ProcessorId::MAX_PROCESSORS).contains(&n));
        FailurePattern {
            behaviors: vec![None; n],
        }
    }

    /// Returns a copy of this pattern in which `p` is faulty with the
    /// given behavior.
    #[must_use]
    pub fn with_behavior(mut self, p: ProcessorId, behavior: FaultyBehavior) -> Self {
        self.set_behavior(p, behavior);
        self
    }

    /// Marks `p` faulty with the given behavior.
    pub fn set_behavior(&mut self, p: ProcessorId, behavior: FaultyBehavior) {
        self.behaviors[p.index()] = Some(behavior);
    }

    /// Number of processors in the system.
    #[must_use]
    pub fn n(&self) -> usize {
        self.behaviors.len()
    }

    /// The faulty behavior of `p`, or `None` if `p` is nonfaulty.
    #[must_use]
    pub fn behavior(&self, p: ProcessorId) -> Option<&FaultyBehavior> {
        self.behaviors[p.index()].as_ref()
    }

    /// Whether `p` is faulty in this run.
    #[must_use]
    pub fn is_faulty(&self, p: ProcessorId) -> bool {
        self.behaviors[p.index()].is_some()
    }

    /// The set of faulty processors.
    #[must_use]
    pub fn faulty_set(&self) -> ProcSet {
        ProcessorId::all(self.n())
            .filter(|&p| self.is_faulty(p))
            .collect()
    }

    /// The set of nonfaulty processors (the paper's nonrigid set `N`,
    /// which is constant along a run under the convention of Section 2.1).
    #[must_use]
    pub fn nonfaulty_set(&self) -> ProcSet {
        self.faulty_set().complement(self.n())
    }

    /// Number of faulty processors.
    #[must_use]
    pub fn num_faulty(&self) -> usize {
        self.behaviors.iter().filter(|b| b.is_some()).count()
    }

    /// Whether a message from `sender` to `receiver` in `round` is
    /// delivered.
    ///
    /// This accounts for both ends: the sender's behavior may drop the
    /// message, and a receiver that has already crashed receives nothing.
    /// Self-messages are never modeled (a processor always remembers its
    /// own state); this method returns `false` for `sender == receiver`.
    #[must_use]
    pub fn delivers(&self, sender: ProcessorId, receiver: ProcessorId, round: Round) -> bool {
        if sender == receiver {
            return false;
        }
        let sent = self.behaviors[sender.index()]
            .as_ref()
            .is_none_or(|b| b.delivers(round, receiver));
        // A processor that crashes in round `cr` is gone before the receive
        // phase of that round: it receives messages only in rounds `< cr`.
        let received = match &self.behaviors[receiver.index()] {
            Some(FaultyBehavior::Crash { round: cr, .. }) => round < *cr,
            Some(behavior) => behavior.receives(round, sender),
            None => true,
        };
        sent && received
    }

    /// Whether `p` has crashed at or before `time` (and its state is
    /// frozen). Only meaningful in crash mode.
    #[must_use]
    pub fn crashed_by(&self, p: ProcessorId, time: Time) -> bool {
        match self.behaviors[p.index()] {
            Some(FaultyBehavior::Crash { round, .. }) => round.end() <= time,
            _ => false,
        }
    }

    /// Restricts the pattern to a smaller `horizon`, keeping the faulty
    /// set intact: every behavior is truncated by
    /// [`FaultyBehavior::truncated_to`]. Returns `None` when any behavior
    /// has no canonical base-horizon counterpart (a crash in round
    /// `horizon` delivering to all others) — such a run's view prefix
    /// cannot be looked up in a base-horizon system and must be computed
    /// from scratch by the horizon-extension path.
    #[must_use]
    pub fn truncated_to(&self, horizon: Time) -> Option<FailurePattern> {
        let n = self.n();
        let mut out = FailurePattern::failure_free(n);
        for p in ProcessorId::all(n) {
            if let Some(behavior) = self.behavior(p) {
                out.set_behavior(p, behavior.truncated_to(p, n, horizon)?);
            }
        }
        Some(out)
    }

    /// Re-encodes the pattern for a larger `horizon` without changing any
    /// delivery inside the original one; see [`FaultyBehavior::padded_to`].
    /// Padding is injective on valid patterns, so distinct base runs stay
    /// distinct after extension.
    #[must_use]
    pub fn padded_to(&self, horizon: Time) -> FailurePattern {
        let n = self.n();
        let mut out = FailurePattern::failure_free(n);
        for p in ProcessorId::all(n) {
            if let Some(behavior) = self.behavior(p) {
                out.set_behavior(p, behavior.padded_to(horizon));
            }
        }
        out
    }

    /// Validates the pattern against a failure mode, bound `t`, and
    /// horizon.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPattern`] if more than `t` processors
    /// are faulty, a behavior is not allowed under `mode`, a crash round or
    /// omission vector exceeds the horizon, or a behavior addresses the
    /// faulty processor itself.
    pub fn validate(&self, mode: FailureMode, t: usize, horizon: Time) -> Result<(), ModelError> {
        if self.num_faulty() > t {
            return Err(ModelError::invalid_pattern(format!(
                "{} faulty processors exceeds the bound t = {t}",
                self.num_faulty()
            )));
        }
        for p in ProcessorId::all(self.n()) {
            let Some(behavior) = self.behavior(p) else {
                continue;
            };
            if !behavior.allowed_in(mode) {
                return Err(ModelError::invalid_pattern(format!(
                    "behavior {behavior} of {p} is not allowed in {mode} mode"
                )));
            }
            match behavior {
                FaultyBehavior::Clean => {}
                FaultyBehavior::Crash { round, receivers } => {
                    if round.end() > horizon {
                        return Err(ModelError::invalid_pattern(format!(
                            "crash round {round} of {p} exceeds horizon {horizon}"
                        )));
                    }
                    if receivers.contains(p) {
                        return Err(ModelError::invalid_pattern(format!(
                            "crash receivers of {p} include itself"
                        )));
                    }
                }
                FaultyBehavior::Omission { omissions } => {
                    if omissions.len() != horizon.index() {
                        return Err(ModelError::invalid_pattern(format!(
                            "omission vector of {p} has length {}, expected horizon {}",
                            omissions.len(),
                            horizon.index()
                        )));
                    }
                    if omissions.iter().any(|o| o.contains(p)) {
                        return Err(ModelError::invalid_pattern(format!(
                            "omission sets of {p} include itself"
                        )));
                    }
                }
                FaultyBehavior::GeneralOmission { send, receive } => {
                    if send.len() != horizon.index() || receive.len() != horizon.index() {
                        return Err(ModelError::invalid_pattern(format!(
                            "general-omission vectors of {p} have lengths {}/{}, \
                             expected horizon {}",
                            send.len(),
                            receive.len(),
                            horizon.index()
                        )));
                    }
                    if send.iter().chain(receive).any(|o| o.contains(p)) {
                        return Err(ModelError::invalid_pattern(format!(
                            "general-omission sets of {p} include itself"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for FailurePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.num_faulty() == 0 {
            return write!(f, "failure-free");
        }
        let mut first = true;
        for p in ProcessorId::all(self.n()) {
            if let Some(b) = self.behavior(p) {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{p}:{b}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn failure_free_delivers_everything() {
        let pat = FailurePattern::failure_free(3);
        for r in 1..=4u16 {
            for s in 0..3 {
                for d in 0..3 {
                    assert_eq!(pat.delivers(p(s), p(d), Round::new(r)), s != d);
                }
            }
        }
        assert_eq!(pat.nonfaulty_set(), ProcSet::full(3));
    }

    #[test]
    fn crash_behavior_delivery() {
        let b = FaultyBehavior::Crash {
            round: Round::new(2),
            receivers: ProcSet::singleton(p(1)),
        };
        assert!(b.delivers(Round::new(1), p(2)));
        assert!(b.delivers(Round::new(2), p(1)));
        assert!(!b.delivers(Round::new(2), p(2)));
        assert!(!b.delivers(Round::new(3), p(1)));
        assert!(!b.is_dead_in(Round::new(2)));
        assert!(b.is_dead_in(Round::new(3)));
    }

    #[test]
    fn omission_behavior_delivery() {
        let b = FaultyBehavior::Omission {
            omissions: vec![ProcSet::singleton(p(2)), ProcSet::empty()],
        };
        assert!(!b.delivers(Round::new(1), p(2)));
        assert!(b.delivers(Round::new(1), p(1)));
        assert!(b.delivers(Round::new(2), p(2)));
        // Beyond the recorded vector the processor behaves correctly.
        assert!(b.delivers(Round::new(3), p(2)));
        assert!(!b.is_dead_in(Round::new(3)));
    }

    #[test]
    fn clean_behavior_never_deviates() {
        let b = FaultyBehavior::Clean;
        assert!(b.delivers(Round::new(1), p(1)));
        assert_eq!(b.first_deviation(p(0), 4, Time::new(5)), None);
    }

    #[test]
    fn first_deviation_finds_crash() {
        let b = FaultyBehavior::Crash {
            round: Round::new(2),
            receivers: ProcSet::empty(),
        };
        assert_eq!(
            b.first_deviation(p(0), 3, Time::new(4)),
            Some(Round::new(2))
        );
        // Crash in the last round delivering to everyone: no deviation inside
        // the horizon.
        let b = FaultyBehavior::Crash {
            round: Round::new(4),
            receivers: ProcSet::full(3) - ProcSet::singleton(p(0)),
        };
        assert_eq!(b.first_deviation(p(0), 3, Time::new(4)), None);
    }

    #[test]
    fn crashed_receiver_gets_nothing() {
        let pat = FailurePattern::failure_free(3).with_behavior(
            p(1),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
        // In its crash round and after, the crashed processor receives
        // nothing.
        assert!(!pat.delivers(p(0), p(1), Round::new(1)));
        assert!(!pat.delivers(p(0), p(1), Round::new(2)));
        assert!(pat.delivers(p(0), p(2), Round::new(1)));
        assert!(pat.crashed_by(p(1), Time::new(1)));
        assert!(!pat.crashed_by(p(1), Time::new(0)));
    }

    #[test]
    fn validate_rejects_too_many_faulty() {
        let pat = FailurePattern::failure_free(3)
            .with_behavior(p(0), FaultyBehavior::Clean)
            .with_behavior(p(1), FaultyBehavior::Clean);
        assert!(pat.validate(FailureMode::Crash, 1, Time::new(2)).is_err());
        assert!(pat.validate(FailureMode::Crash, 2, Time::new(2)).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_mode() {
        let pat = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
        assert!(pat
            .validate(FailureMode::Omission, 1, Time::new(2))
            .is_err());
        assert!(pat.validate(FailureMode::Crash, 1, Time::new(2)).is_ok());
    }

    #[test]
    fn validate_rejects_horizon_overflow() {
        let pat = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(4),
                receivers: ProcSet::empty(),
            },
        );
        assert!(pat.validate(FailureMode::Crash, 1, Time::new(3)).is_err());
        let pat = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Omission {
                omissions: vec![ProcSet::empty(); 2],
            },
        );
        assert!(pat
            .validate(FailureMode::Omission, 1, Time::new(3))
            .is_err());
        assert!(pat.validate(FailureMode::Omission, 1, Time::new(2)).is_ok());
    }

    #[test]
    fn validate_rejects_self_addressing() {
        let pat = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Omission {
                omissions: vec![ProcSet::singleton(p(0))],
            },
        );
        assert!(pat
            .validate(FailureMode::Omission, 1, Time::new(1))
            .is_err());
    }

    #[test]
    fn truncation_follows_the_canonical_rules() {
        let h = Time::new(2);
        let others = ProcSet::full(3) - ProcSet::singleton(p(0));
        // Clean stays clean.
        assert_eq!(
            FaultyBehavior::Clean.truncated_to(p(0), 3, h),
            Some(FaultyBehavior::Clean)
        );
        // A crash inside the base horizon is kept verbatim.
        let early = FaultyBehavior::Crash {
            round: Round::new(1),
            receivers: ProcSet::empty(),
        };
        assert_eq!(early.truncated_to(p(0), 3, h), Some(early.clone()));
        // A crash after the base horizon is invisible inside it.
        let late = FaultyBehavior::Crash {
            round: Round::new(3),
            receivers: ProcSet::empty(),
        };
        assert_eq!(late.truncated_to(p(0), 3, h), Some(FaultyBehavior::Clean));
        // A crash at the base horizon delivering to all others has no
        // canonical counterpart (the crashed view freezes, Clean's grows).
        let boundary = FaultyBehavior::Crash {
            round: Round::new(2),
            receivers: others,
        };
        assert_eq!(boundary.truncated_to(p(0), 3, h), None);
        // …but delivering to a strict subset keeps the crash.
        let partial = FaultyBehavior::Crash {
            round: Round::new(2),
            receivers: ProcSet::singleton(p(1)),
        };
        assert_eq!(partial.truncated_to(p(0), 3, h), Some(partial.clone()));
        // Omission vectors are cut to the base horizon.
        let omit = FaultyBehavior::Omission {
            omissions: vec![
                ProcSet::singleton(p(1)),
                ProcSet::empty(),
                ProcSet::singleton(p(2)),
            ],
        };
        assert_eq!(
            omit.truncated_to(p(0), 3, h),
            Some(FaultyBehavior::Omission {
                omissions: vec![ProcSet::singleton(p(1)), ProcSet::empty()],
            })
        );
    }

    #[test]
    fn general_omission_truncation_cuts_both_axes() {
        // Truncation of a general-omission behavior cuts the send *and*
        // receive vectors independently to the base horizon — neither axis
        // leaks rounds of the other.
        let behavior = FaultyBehavior::GeneralOmission {
            send: vec![
                ProcSet::singleton(p(1)),
                ProcSet::empty(),
                ProcSet::singleton(p(2)),
            ],
            receive: vec![
                ProcSet::empty(),
                ProcSet::singleton(p(2)),
                ProcSet::singleton(p(1)),
            ],
        };
        assert_eq!(
            behavior.truncated_to(p(0), 3, Time::new(2)),
            Some(FaultyBehavior::GeneralOmission {
                send: vec![ProcSet::singleton(p(1)), ProcSet::empty()],
                receive: vec![ProcSet::empty(), ProcSet::singleton(p(2))],
            })
        );
        // Unlike a boundary crash, general omission always has a canonical
        // truncation — even when every message of the final round is lost.
        let everything_lost = FaultyBehavior::GeneralOmission {
            send: vec![
                ProcSet::empty(),
                ProcSet::full(3) - ProcSet::singleton(p(0)),
            ],
            receive: vec![
                ProcSet::empty(),
                ProcSet::full(3) - ProcSet::singleton(p(0)),
            ],
        };
        assert_eq!(
            everything_lost.truncated_to(p(0), 3, Time::new(1)),
            Some(FaultyBehavior::GeneralOmission {
                send: vec![ProcSet::empty()],
                receive: vec![ProcSet::empty()],
            })
        );
    }

    #[test]
    fn general_omission_truncate_after_pad_is_identity_on_all_patterns() {
        // `truncate ∘ pad = id` over the *entire* canonical general-omission
        // enumeration of a small scenario, and padding never disturbs
        // deliveries or receptions inside the base horizon.
        let base = Time::new(2);
        let extended = Time::new(4);
        let scenario = crate::Scenario::new(3, 1, FailureMode::GeneralOmission, 2).unwrap();
        let mut checked = 0usize;
        for pattern in crate::enumerate::patterns(&scenario) {
            let padded = pattern.padded_to(extended);
            padded
                .validate(FailureMode::GeneralOmission, 1, extended)
                .unwrap();
            for q in 0..3 {
                let Some(behavior) = pattern.behavior(p(q)) else {
                    continue;
                };
                let grown = padded.behavior(p(q)).unwrap();
                for r in 1..=2u16 {
                    for other in (0..3).filter(|&o| o != q) {
                        assert_eq!(
                            behavior.delivers(Round::new(r), p(other)),
                            grown.delivers(Round::new(r), p(other)),
                            "{pattern}: send side moved inside the base horizon"
                        );
                        assert_eq!(
                            behavior.receives(Round::new(r), p(other)),
                            grown.receives(Round::new(r), p(other)),
                            "{pattern}: receive side moved inside the base horizon"
                        );
                    }
                }
            }
            assert_eq!(
                padded.truncated_to(base),
                Some(pattern),
                "truncation failed to undo padding"
            );
            checked += 1;
        }
        // The sweep really covered the general-omission space (1 failure-free
        // pattern plus 3 · 4^2 · 4^2 single-faulty behaviors).
        assert_eq!(checked, 769);
    }

    #[test]
    fn padding_round_trips_through_truncation() {
        let base = Time::new(2);
        let extended = Time::new(4);
        let behaviors = [
            FaultyBehavior::Clean,
            FaultyBehavior::Crash {
                round: Round::new(2),
                receivers: ProcSet::singleton(p(1)),
            },
            FaultyBehavior::Omission {
                omissions: vec![ProcSet::singleton(p(2)), ProcSet::empty()],
            },
            FaultyBehavior::GeneralOmission {
                send: vec![ProcSet::singleton(p(1)), ProcSet::empty()],
                receive: vec![ProcSet::empty(), ProcSet::singleton(p(2))],
            },
        ];
        for behavior in behaviors {
            let padded = behavior.padded_to(extended);
            // Padding never changes deliveries inside the base horizon …
            for r in 1..=2u16 {
                for q in 0..3 {
                    assert_eq!(
                        behavior.delivers(Round::new(r), p(q)),
                        padded.delivers(Round::new(r), p(q))
                    );
                }
            }
            // … and truncation undoes it exactly.
            assert_eq!(padded.truncated_to(p(0), 3, base), Some(behavior));
        }
    }

    #[test]
    fn pattern_truncation_preserves_the_faulty_set() {
        let pattern = FailurePattern::failure_free(3)
            .with_behavior(
                p(0),
                FaultyBehavior::Crash {
                    round: Round::new(3),
                    receivers: ProcSet::empty(),
                },
            )
            .with_behavior(p(2), FaultyBehavior::Clean);
        let truncated = pattern.truncated_to(Time::new(2)).unwrap();
        assert_eq!(truncated.faulty_set(), pattern.faulty_set());
        assert_eq!(truncated.behavior(p(0)), Some(&FaultyBehavior::Clean));
        // A single non-truncatable behavior poisons the whole pattern.
        let poisoned = pattern.with_behavior(
            p(1),
            FaultyBehavior::Crash {
                round: Round::new(2),
                receivers: ProcSet::full(3) - ProcSet::singleton(p(1)),
            },
        );
        assert_eq!(poisoned.truncated_to(Time::new(2)), None);
    }

    #[test]
    fn pattern_padding_is_valid_at_the_larger_horizon() {
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(1),
            FaultyBehavior::Omission {
                omissions: vec![ProcSet::singleton(p(0))],
            },
        );
        let padded = pattern.padded_to(Time::new(3));
        padded
            .validate(FailureMode::Omission, 1, Time::new(3))
            .unwrap();
        assert_eq!(padded.truncated_to(Time::new(1)), Some(pattern));
    }

    #[test]
    fn display_is_informative() {
        let pat = FailurePattern::failure_free(2);
        assert_eq!(pat.to_string(), "failure-free");
        let pat = pat.with_behavior(p(0), FaultyBehavior::Clean);
        assert!(pat.to_string().contains("p1:clean"));
    }
}
