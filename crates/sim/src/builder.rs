//! Staged, shardable construction of generated systems.
//!
//! [`SystemBuilder`] replaces the monolithic exhaustive generation loop
//! with a three-stage pipeline:
//!
//! 1. **shard** — the scenario's pattern axis is split into deterministic
//!    contiguous chunks by [`ScenarioSpace::shards`];
//! 2. **build** — each shard enumerates its `(pattern, config)` block and
//!    interns full-information views into a *shard-local* [`ViewTable`],
//!    with no shared state, so shards run on independent threads;
//! 3. **merge** — shard tables are absorbed into one canonical table *in
//!    shard order* ([`ViewTable::absorb`]), and shard run lists are
//!    concatenated.
//!
//! Because shards cover contiguous slices of the sequential enumeration
//! order and `absorb` re-interns each shard's views in first-encounter
//! order, the merged system is **bit-identical** to a sequential build:
//! the same `ViewId` and `RunId` assignment for every worker/shard count.
//! Downstream artifacts (decision tables, optimality verdicts, printed
//! ids) therefore never depend on the machine's parallelism.
//!
//! Id-space overflows surface as [`ModelError::CapacityExceeded`] from
//! [`SystemBuilder::build`] instead of panicking mid-generation.

use crate::system::{GeneratedSystem, RunId, RunRecord};
use crate::view::{try_fip_views, ViewId, ViewTable};
use eba_model::{InitialConfig, ModelError, Scenario, ScenarioSpace, Shard};
use std::collections::HashMap;
use std::thread;

/// The number of runs a [`GeneratedSystem`] can hold (`RunId` is a `u32`).
pub const RUN_CAPACITY: u128 = 1 << 32;

/// How many shards each worker thread gets by default; more shards than
/// threads lets fast shards backfill while slow ones finish.
const SHARDS_PER_THREAD: usize = 4;

/// Configurable, parallel builder for exhaustive [`GeneratedSystem`]s; see
/// the module docs for the staging and the determinism guarantee.
///
/// # Example
///
/// ```
/// use eba_model::{FailureMode, Scenario};
/// use eba_sim::SystemBuilder;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
/// let system = SystemBuilder::new(&scenario).threads(2).build()?;
/// assert_eq!(system.num_runs(), 200);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    scenario: Scenario,
    threads: usize,
    shards: Option<usize>,
}

impl SystemBuilder {
    /// A builder for the exhaustive system of `scenario`, defaulting to
    /// one worker per available CPU.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        let threads = thread::available_parallelism().map_or(1, |p| p.get());
        SystemBuilder {
            scenario: *scenario,
            threads,
            shards: None,
        }
    }

    /// Sets the number of worker threads (clamped to at least 1). One
    /// thread builds sequentially on the caller's thread.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the number of shards (clamped to at least 1). Defaults to
    /// four per worker thread. The result is identical for every shard
    /// count; this knob only tunes load balance against merge overhead.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Builds the exhaustive system: every initial configuration crossed
    /// with every canonical failure pattern, in enumeration order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExceeded`] when the scenario has more
    /// runs than `RunId` can index (checked up front, before any work) or
    /// more distinct views than `ViewId` can index.
    pub fn build(self) -> Result<GeneratedSystem, ModelError> {
        let space = ScenarioSpace::new(self.scenario);
        if space.total_runs() > RUN_CAPACITY {
            return Err(ModelError::capacity_exceeded("run ids", RUN_CAPACITY));
        }
        let configs: Vec<InitialConfig> = space.configs().collect();
        let shard_count = self.shards.unwrap_or_else(|| {
            if self.threads == 1 {
                1
            } else {
                self.threads * SHARDS_PER_THREAD
            }
        });
        let shards = space.shards(shard_count);

        let workers = self.threads.min(shards.len());
        let parts: Vec<Result<ShardBuild, ModelError>> = if workers <= 1 {
            shards
                .iter()
                .map(|&shard| build_shard(&space, &configs, shard))
                .collect()
        } else {
            build_shards_parallel(&space, &configs, &shards, workers)
        };

        merge(self.scenario, parts)
    }
}

/// The output of one shard: runs and views with *shard-local* view ids.
struct ShardBuild {
    table: ViewTable,
    views: Vec<ViewId>,
    runs: Vec<RunRecord>,
}

fn build_shard(
    space: &ScenarioSpace,
    configs: &[InitialConfig],
    shard: Shard,
) -> Result<ShardBuild, ModelError> {
    let scenario = space.scenario();
    let horizon = scenario.horizon();
    let mut table = ViewTable::new();
    let mut runs = Vec::new();
    let mut views = Vec::new();
    for pattern in space.shard_patterns(shard) {
        debug_assert!(scenario.validate_pattern(&pattern).is_ok());
        let nonfaulty = pattern.nonfaulty_set();
        for config in configs {
            let run_views = try_fip_views(config, &pattern, horizon, &mut table)?;
            for time_views in &run_views {
                views.extend_from_slice(time_views);
            }
            runs.push(RunRecord {
                config: config.clone(),
                pattern: pattern.clone(),
                nonfaulty,
            });
        }
    }
    Ok(ShardBuild { table, views, runs })
}

fn build_shards_parallel(
    space: &ScenarioSpace,
    configs: &[InitialConfig],
    shards: &[Shard],
    workers: usize,
) -> Vec<Result<ShardBuild, ModelError>> {
    let mut slots: Vec<Option<Result<ShardBuild, ModelError>>> = Vec::new();
    slots.resize_with(shards.len(), || None);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            handles.push(scope.spawn(move || {
                // Round-robin shard assignment; shard sizes are balanced,
                // so striding keeps workers within one shard of each
                // other.
                shards
                    .iter()
                    .enumerate()
                    .skip(worker)
                    .step_by(workers)
                    .map(|(index, &shard)| (index, build_shard(space, configs, shard)))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            for (index, part) in handle.join().expect("system builder worker panicked") {
                slots[index] = Some(part);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every shard is assigned to exactly one worker"))
        .collect()
}

fn merge(
    scenario: Scenario,
    parts: Vec<Result<ShardBuild, ModelError>>,
) -> Result<GeneratedSystem, ModelError> {
    let mut table = ViewTable::new();
    let mut views = Vec::new();
    let mut runs: Vec<RunRecord> = Vec::new();
    let mut lookup = HashMap::new();
    for part in parts {
        let part = part?;
        let remap = table.absorb(&part.table)?;
        views.extend(part.views.iter().map(|v| remap[v.index()]));
        runs.reserve(part.runs.len());
        for record in part.runs {
            let id = RunId::try_new(runs.len())?;
            let prior = lookup.insert((record.config.to_bits(), record.pattern.clone()), id);
            debug_assert!(
                prior.is_none(),
                "exhaustive enumeration yielded a duplicate run"
            );
            runs.push(record);
        }
    }
    Ok(GeneratedSystem::from_parts(
        scenario, runs, views, table, lookup,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{enumerate, FailureMode, ProcessorId, Time};

    fn scenario() -> Scenario {
        Scenario::new(3, 2, FailureMode::Crash, 2).unwrap()
    }

    fn assert_identical(a: &GeneratedSystem, b: &GeneratedSystem) {
        assert_eq!(a.num_runs(), b.num_runs());
        assert_eq!(a.table().len(), b.table().len());
        let n = a.n();
        for r in a.run_ids() {
            assert_eq!(a.run(r).config, b.run(r).config);
            assert_eq!(a.run(r).pattern, b.run(r).pattern);
            assert_eq!(a.nonfaulty(r), b.nonfaulty(r));
            for time in 0..=a.horizon().index() {
                for p in ProcessorId::all(n) {
                    assert_eq!(
                        a.view(r, p, Time::new(time as u16)),
                        b.view(r, p, Time::new(time as u16)),
                        "run {r:?}, time {time}, processor {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_builds_are_bit_identical_to_sequential() {
        let scenario = scenario();
        let sequential = SystemBuilder::new(&scenario)
            .threads(1)
            .shards(1)
            .build()
            .unwrap();
        for (threads, shards) in [(2, 2), (3, 5), (4, 16), (2, 7), (8, 3)] {
            let parallel = SystemBuilder::new(&scenario)
                .threads(threads)
                .shards(shards)
                .build()
                .unwrap();
            assert_identical(&sequential, &parallel);
        }
    }

    #[test]
    fn builder_matches_legacy_from_runs_path() {
        let scenario = scenario();
        let configs: Vec<InitialConfig> = InitialConfig::enumerate_all(scenario.n()).collect();
        let mut specs = Vec::new();
        for pattern in enumerate::patterns(&scenario) {
            for config in &configs {
                specs.push((config.clone(), pattern.clone()));
            }
        }
        let legacy = GeneratedSystem::from_runs(&scenario, specs);
        let built = SystemBuilder::new(&scenario)
            .threads(3)
            .shards(6)
            .build()
            .unwrap();
        assert_identical(&legacy, &built);
    }

    #[test]
    fn oversized_scenarios_error_before_doing_work() {
        let scenario = Scenario::new(6, 5, FailureMode::Crash, 3).unwrap();
        let space = ScenarioSpace::new(scenario);
        assert!(space.total_runs() > RUN_CAPACITY);
        let err = SystemBuilder::new(&scenario).build().unwrap_err();
        assert!(matches!(
            err,
            ModelError::CapacityExceeded {
                what: "run ids",
                ..
            }
        ));
    }

    #[test]
    fn shard_knob_never_changes_the_result() {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        let base = SystemBuilder::new(&scenario).threads(1).build().unwrap();
        for shards in [1, 2, 9, 1000] {
            let other = SystemBuilder::new(&scenario)
                .threads(2)
                .shards(shards)
                .build()
                .unwrap();
            assert_identical(&base, &other);
        }
    }

    #[test]
    fn generated_systems_cross_thread_boundaries() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<GeneratedSystem>();
        assert_send_sync::<SystemBuilder>();

        let system = SystemBuilder::new(&scenario()).threads(2).build().unwrap();
        let shared = std::sync::Arc::new(system);
        let clone = std::sync::Arc::clone(&shared);
        let runs = thread::spawn(move || clone.num_runs()).join().unwrap();
        assert_eq!(runs, shared.num_runs());
    }
}
