//! Symmetry metadata of quotiented systems: orbit accounting, run
//! resolution through witness permutations, and view orbit classes.
//!
//! A symmetry-quotiented [`GeneratedSystem`](crate::GeneratedSystem)
//! contains one run per `Sym(n)`-orbit of the pattern axis (the canonical
//! pattern, crossed with **every** initial configuration; see
//! `eba_model::symmetry`). This module holds everything the quotient
//! needs beyond the runs themselves:
//!
//! * [`SymmetryInfo`] — per-representative orbit sizes and the raw
//!   pattern counts they stand for, attached to the system by the
//!   builder;
//! * run resolution — answering a query about a *non-representative*
//!   run `(c, q)` by canonicalizing `q`, relabeling `c` through the
//!   witness permutation, and pointing at the representative run
//!   ([`crate::GeneratedSystem::resolve_run`]);
//! * [`ViewClasses`] — the partition of the interned views into
//!   relabeling orbits (`class(v) = class(w)` iff some permutation
//!   carries `v`'s content onto `w`'s), which is what lets the knowledge
//!   kernels of `eba-kripke` evaluate symmetric formulas on the reduced
//!   system exactly (DESIGN.md §4i).
//!
//! View classes are computed by hashing, for every permutation `π`, the
//! relabeled content of every view bottom-up (children have smaller ids
//! under hash-consing, so a single in-order pass per `π` suffices) and
//! taking the minimum over `π` as the orbit key. The 128-bit mixing keeps
//! accidental collisions out of reach of any feasible space; the
//! differential suite cross-checks the resulting semantics against the
//! unreduced oracle bit for bit.

use crate::view::{ViewId, ViewNode, ViewTable};
use eba_model::fasthash::FastMap;
use eba_model::symmetry::{canonicalize, Perm};
use eba_model::{FailurePattern, InitialConfig};
use std::hash::Hasher;
use std::sync::OnceLock;

/// Orbit accounting of a symmetry-quotiented system, attached by the
/// builder and surfaced through
/// [`crate::GeneratedSystem::symmetry`].
#[derive(Debug, Default)]
pub struct SymmetryInfo {
    /// `orbit_sizes[k]` is the orbit size of the `k`-th representative
    /// pattern, in enumeration order — aligned with the run layout
    /// (representative `k` owns runs `k·2^n .. (k+1)·2^n`).
    orbit_sizes: Vec<u64>,
    /// Raw patterns the representatives stand for (`Σ orbit_sizes`).
    raw_covered: u128,
    /// Raw pattern count of the full (unreduced) space; equals
    /// `raw_covered` for a complete build, larger for budget prefixes and
    /// pinned extensions.
    raw_total: u128,
    /// Lazily computed view orbit classes (first symmetric knowledge
    /// query pays for them once per system).
    classes: OnceLock<ViewClasses>,
}

impl Clone for SymmetryInfo {
    fn clone(&self) -> Self {
        SymmetryInfo {
            orbit_sizes: self.orbit_sizes.clone(),
            raw_covered: self.raw_covered,
            raw_total: self.raw_total,
            classes: OnceLock::new(),
        }
    }
}

impl SymmetryInfo {
    /// Assembles the accounting from per-representative orbit sizes and
    /// the raw pattern count of the full space.
    #[must_use]
    pub fn new(orbit_sizes: Vec<u64>, raw_total: u128) -> Self {
        let raw_covered = orbit_sizes.iter().map(|&s| u128::from(s)).sum();
        SymmetryInfo {
            orbit_sizes,
            raw_covered,
            raw_total,
            classes: OnceLock::new(),
        }
    }

    /// Number of pattern-orbit representatives the system holds.
    #[must_use]
    pub fn num_orbits(&self) -> usize {
        self.orbit_sizes.len()
    }

    /// Orbit sizes per representative, in enumeration (= run layout)
    /// order.
    #[must_use]
    pub fn orbit_sizes(&self) -> &[u64] {
        &self.orbit_sizes
    }

    /// Raw patterns the built representatives stand for.
    #[must_use]
    pub fn raw_patterns_covered(&self) -> u128 {
        self.raw_covered
    }

    /// Raw pattern count of the full unreduced space.
    #[must_use]
    pub fn raw_pattern_total(&self) -> u128 {
        self.raw_total
    }

    /// Raw patterns per built representative — the symmetry reduction
    /// factor of the pattern axis (1.0 when nothing was reduced).
    #[must_use]
    pub fn reduction_ratio(&self) -> f64 {
        if self.orbit_sizes.is_empty() {
            1.0
        } else {
            self.raw_covered as f64 / self.orbit_sizes.len() as f64
        }
    }

    /// The view orbit classes of `table`, computed on first use and
    /// cached for the system's lifetime.
    ///
    /// # Panics
    ///
    /// Panics if the table holds digest states — the builder only
    /// attaches symmetry metadata to full-information systems.
    pub fn classes(&self, table: &ViewTable, n: usize) -> &ViewClasses {
        self.classes.get_or_init(|| ViewClasses::compute(table, n))
    }
}

/// Resolves a run query through the symmetry quotient: canonicalize the
/// pattern, relabel the configuration through the witness, and look the
/// representative up in `find_run`. Returns the representative's id and
/// the witness `σ` with `σ·(config, pattern) = representative`; the
/// identity permutation when the run is present verbatim.
pub(crate) fn resolve_run(
    find_run: impl Fn(&InitialConfig, &FailurePattern) -> Option<crate::RunId>,
    n: usize,
    config: &InitialConfig,
    pattern: &FailurePattern,
) -> Option<(crate::RunId, Perm)> {
    if let Some(r) = find_run(config, pattern) {
        return Some((r, Perm::identity(n)));
    }
    let canon = canonicalize(pattern);
    let relabeled = canon.witness.apply_config(config);
    find_run(&relabeled, &canon.canonical).map(|r| (r, canon.witness))
}

/// The partition of a [`ViewTable`]'s views into relabeling orbits:
/// `class(v) = class(w)` iff some processor permutation carries `v`'s
/// full-information content onto `w`'s. Two views in the same class are
/// exactly the local states that some relabeled run maps onto each other,
/// which is the indistinguishability the quotiented knowledge kernels
/// aggregate over.
#[derive(Clone, Debug)]
pub struct ViewClasses {
    class_of: Vec<u32>,
    num_classes: u32,
    fingerprint: u64,
}

/// 128-bit multiplicative rotate-xor mix (the `fxhash` recipe widened to
/// `u128`); deterministic and dependency-free. Public so the quotiented
/// distributed-knowledge kernel of `eba-kripke` can fold the per-view
/// hashes of [`for_each_permuted_hashes`] into joint keys with the same
/// collision margin.
#[inline]
#[must_use]
pub fn mix(h: u128, word: u128) -> u128 {
    const SEED: u128 = 0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835;
    (h.rotate_left(7) ^ word).wrapping_mul(SEED)
}

/// Calls `f(π, hashes)` for every permutation `π` of `Sym(n)` with the
/// content hash of every view of `table` relabeled through `π`
/// (`hashes[v] = h(π·v)`). Two views relabel onto each other under `π`
/// exactly when their hashes match (up to the 128-bit collision margin);
/// this is the primitive behind [`ViewClasses::compute`] and the
/// canonical joint keys of quotiented distributed knowledge.
///
/// # Panics
///
/// Panics on digest states (symmetry is gated to the full-information
/// exchange) and when `n` exceeds
/// [`eba_model::symmetry::MAX_SYMMETRY_N`].
pub fn for_each_permuted_hashes(table: &ViewTable, n: usize, mut f: impl FnMut(&Perm, &[u128])) {
    let len = table.len();
    let mut cur = vec![0u128; len];
    for perm in Perm::all(n) {
        let inv = perm.inverse();
        for id in table.ids() {
            let h = match table.node(id) {
                ViewNode::Leaf { proc, value } => {
                    let h = mix(1, u128::from(perm.apply(*proc).index() as u64));
                    mix(h, u128::from(*value as u64))
                }
                ViewNode::Node { prev, received } => {
                    let mut h = mix(2, cur[prev.index()]);
                    for slot in
                        (0..n).map(|j| received[inv.apply(eba_model::ProcessorId::new(j)).index()])
                    {
                        h = match slot {
                            Some(v) => mix(h, cur[v.index()]),
                            None => mix(h, u128::MAX - 1),
                        };
                    }
                    h
                }
                ViewNode::Digest(_) => {
                    panic!("symmetry quotient requires the full-information exchange")
                }
            };
            cur[id.index()] = h;
        }
        f(&perm, &cur);
    }
}

impl ViewClasses {
    /// Computes the orbit classes of every view in `table` under
    /// `Sym(n)`: one bottom-up pass per permutation hashing the relabeled
    /// content, minimum over permutations as the orbit key, then a dense
    /// first-encounter renumbering (deterministic for a deterministic
    /// table).
    ///
    /// # Panics
    ///
    /// As [`for_each_permuted_hashes`].
    #[must_use]
    pub fn compute(table: &ViewTable, n: usize) -> ViewClasses {
        let len = table.len();
        let mut min_hash = vec![u128::MAX; len];
        for_each_permuted_hashes(table, n, |_, cur| {
            for (slot, &h) in min_hash.iter_mut().zip(cur) {
                if h < *slot {
                    *slot = h;
                }
            }
        });
        let mut renumber: FastMap<u128, u32> = FastMap::default();
        let mut class_of = Vec::with_capacity(len);
        for &key in &min_hash {
            let next = renumber.len() as u32;
            class_of.push(*renumber.entry(key).or_insert(next));
        }
        let num_classes = renumber.len() as u32;
        let mut hasher = eba_model::fasthash::FastHasher::default();
        hasher.write_usize(n);
        hasher.write_u32(num_classes);
        for &c in &class_of {
            hasher.write_u32(c);
        }
        ViewClasses {
            class_of,
            num_classes,
            fingerprint: hasher.finish() | 1,
        }
    }

    /// The orbit class of view `v`.
    #[must_use]
    pub fn class(&self, v: ViewId) -> u32 {
        self.class_of[v.index()]
    }

    /// Number of distinct classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes as usize
    }

    /// A nonzero digest of the whole partition, used to fence knowledge
    /// caches: entries computed under one partition never answer queries
    /// under another (0 is reserved for "no symmetry").
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::fip_views;
    use eba_model::symmetry::orbit_members;
    use eba_model::{enumerate, FailureMode, ProcessorId, Scenario, Value};

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    type RunRows = Vec<(InitialConfig, FailurePattern, Vec<Vec<ViewId>>)>;

    /// Builds the views of every `(config, pattern)` run of the scenario
    /// into one table, returning `(table, views[run_key] = rows)`.
    fn all_views(scenario: &Scenario) -> (ViewTable, RunRows) {
        let mut table = ViewTable::new();
        let mut rows = Vec::new();
        for pattern in enumerate::patterns(scenario) {
            for config in InitialConfig::enumerate_all(scenario.n()) {
                let views = fip_views(&config, &pattern, scenario.horizon(), &mut table);
                rows.push((config, pattern.clone(), views));
            }
        }
        (table, rows)
    }

    #[test]
    fn view_classes_identify_relabeled_views() {
        // π carries the view of q at (c, pat) onto the view of π(q) at
        // (π·c, π·pat); the class partition must identify exactly those.
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let (table, rows) = all_views(&scenario);
        let classes = ViewClasses::compute(&table, 3);
        for (config, pattern, views) in &rows {
            for perm in Perm::all(3) {
                let rc = perm.apply_config(config);
                let rp = perm.apply_pattern(pattern);
                let (_, _, relabeled) = rows
                    .iter()
                    .find(|(c, q, _)| *c == rc && *q == rp)
                    .expect("the full space is closed under relabeling");
                for time in 0..=2usize {
                    for q in 0..3 {
                        let a = views[time][q];
                        let b = relabeled[time][perm.apply(p(q)).index()];
                        assert_eq!(
                            classes.class(a),
                            classes.class(b),
                            "relabeled views must share a class"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn view_classes_do_not_merge_distinct_orbits() {
        // Within one run, views with different content classes must stay
        // apart unless a permutation really maps them: check the simplest
        // separator — class-mates always share time and own-value
        // multiset properties that are permutation-invariant.
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        let (table, _) = all_views(&scenario);
        let classes = ViewClasses::compute(&table, 3);
        for a in table.ids() {
            for b in table.ids() {
                if classes.class(a) == classes.class(b) {
                    assert_eq!(table.time(a), table.time(b));
                    assert_eq!(table.own_value(a), table.own_value(b));
                    assert_eq!(table.known_procs(a).len(), table.known_procs(b).len());
                    assert_eq!(table.exists_zero(a), table.exists_zero(b));
                    assert_eq!(table.exists_one(a), table.exists_one(b));
                }
            }
        }
    }

    #[test]
    fn leaf_classes_collapse_processor_identity_only() {
        let mut table = ViewTable::new();
        let a = table.leaf(p(0), Value::Zero);
        let b = table.leaf(p(2), Value::Zero);
        let c = table.leaf(p(1), Value::One);
        let classes = ViewClasses::compute(&table, 3);
        assert_eq!(classes.class(a), classes.class(b));
        assert_ne!(classes.class(a), classes.class(c));
        assert_eq!(classes.num_classes(), 2);
        assert_ne!(classes.fingerprint(), 0);
    }

    #[test]
    fn fingerprints_differ_across_partitions() {
        let mut small = ViewTable::new();
        small.leaf(p(0), Value::Zero);
        let mut large = ViewTable::new();
        large.leaf(p(0), Value::Zero);
        large.leaf(p(1), Value::One);
        let a = ViewClasses::compute(&small, 3);
        let b = ViewClasses::compute(&large, 3);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn symmetry_info_accounting() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let mut sizes = Vec::new();
        let mut raw = 0u128;
        for pattern in enumerate::patterns(&scenario) {
            raw += 1;
            if eba_model::symmetry::is_canonical(&pattern) {
                sizes.push(orbit_members(&pattern).len() as u64);
            }
        }
        let info = SymmetryInfo::new(sizes.clone(), raw);
        assert_eq!(info.num_orbits(), sizes.len());
        assert_eq!(info.raw_patterns_covered(), raw);
        assert_eq!(info.raw_pattern_total(), raw);
        assert!(info.reduction_ratio() > 1.0);
    }

    #[test]
    fn class_count_matches_brute_force_orbits() {
        // Brute force: group views by their orbit of rendered relabeled
        // content; the hashed partition must agree exactly.
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 1).unwrap();
        let (table, rows) = all_views(&scenario);
        let classes = ViewClasses::compute(&table, 3);
        // Render every relabeled run and map each view id to the set of
        // renders of its orbit; the minimum render is an exact orbit key.
        let mut orbit_key: Vec<Option<String>> = vec![None; table.len()];
        for (config, pattern, views) in &rows {
            for perm in Perm::all(3) {
                let rc = perm.apply_config(config);
                let rp = perm.apply_pattern(pattern);
                let (_, _, relabeled) = rows.iter().find(|(c, q, _)| *c == rc && *q == rp).unwrap();
                for time in 0..=1usize {
                    for q in 0..3 {
                        let orig = views[time][q];
                        let image = relabeled[time][perm.apply(p(q)).index()];
                        let render = table.render(image);
                        let slot = &mut orbit_key[orig.index()];
                        match slot {
                            Some(best) if *best <= render => {}
                            _ => *slot = Some(render),
                        }
                    }
                }
            }
        }
        for a in table.ids() {
            for b in table.ids() {
                assert_eq!(
                    classes.class(a) == classes.class(b),
                    orbit_key[a.index()] == orbit_key[b.index()],
                    "hashed partition disagrees with brute force on {a:?} vs {b:?}"
                );
            }
        }
    }
}
