//! The `eba-serve` wire protocol: line-delimited JSON frames.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Success frames start with `"ok":true`,
//! error frames with `"ok":false` plus a typed `"error"` kind from the
//! closed taxonomy below (see README for the full grammar):
//!
//! | kind               | meaning                                        |
//! |--------------------|------------------------------------------------|
//! | `bad-frame`        | not JSON, not an object, oversize, missing op  |
//! | `bad-request`      | unknown op, bad field, unparsable formula      |
//! | `invalid-scenario` | the scenario parameters are rejected by model  |
//! | `budget-exhausted` | budget ran out before any shard completed      |
//! | `overloaded`       | admission queue full; `retry_after_ms` hints   |
//! | `engine-fault`     | an engine fault survived the retry budget      |
//! | `shutting-down`    | the server is draining; reconnect elsewhere    |
//! | `internal-panic`   | a worker panicked; the panic was isolated      |
//!
//! Responses carry **no timing or host information**: a response is a
//! pure function of the request, which is what lets the chaos suite
//! assert byte-identity between the concurrent daemon and the
//! single-threaded oracle.

use crate::json::Json;
use eba_kripke::SetReprKind;
use eba_model::{ExchangeKind, FailureMode, Scenario};
use std::fmt;

/// Default deadline hint returned with `overloaded` frames.
pub const DEFAULT_RETRY_AFTER_MS: u64 = 100;

/// A parsed request frame.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Evaluate a formula over every point of a scenario's system.
    Check(CheckRequest),
    /// Run the Theorem 5.2 construction and the Theorem 5.3 optimality
    /// check on a scenario's exhaustive system.
    Optimize(ScenarioSpec),
    /// Check a formula at every horizon of a range out of one warm
    /// incremental session.
    Sweep(SweepRequest),
    /// Server/pool statistics.
    Stats,
    /// Evict pooled sessions: all of them, or one scenario's.
    Evict(Option<ScenarioSpec>),
}

/// The scenario selection shared by all engine-touching ops.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ScenarioSpec {
    /// Number of processors.
    pub n: usize,
    /// Failure bound.
    pub t: usize,
    /// Failure mode.
    pub mode: FailureMode,
    /// Information exchange.
    pub exchange: ExchangeKind,
    /// Horizon (rounds simulated); defaults to `t + 2`.
    pub horizon: u16,
    /// `Some((runs, seed))` for a sampled system instead of the
    /// exhaustive one.
    pub sampled: Option<(usize, u64)>,
    /// Build the symmetry-quotiented system: one representative failure
    /// pattern per `Sym(n)` orbit, with knowledge evaluated through
    /// orbit-canonical view classes. Part of the pool key, so quotiented
    /// and unreduced sessions for the same scenario never alias.
    pub symmetry: bool,
    /// Set-representation backend of the session's knowledge cache
    /// (frame field `set_repr`, `"dense"` default or `"shared"`). Part
    /// of the pool key: the backend shapes the cache's residency
    /// accounting and statistics, so dense and shared sessions for the
    /// same scenario never alias. Query results are bit-identical across
    /// backends.
    pub set_repr: SetReprKind,
}

impl ScenarioSpec {
    /// Resolves the spec into a validated [`Scenario`].
    ///
    /// # Errors
    ///
    /// Returns the model's error text when the parameters are rejected.
    pub fn scenario(&self) -> Result<Scenario, ServeError> {
        Scenario::new(self.n, self.t, self.mode, self.horizon)
            .and_then(|s| s.with_exchange(self.exchange))
            .map_err(|e| ServeError::InvalidScenario(e.to_string()))
    }
}

/// A `check` request: scenario + formula + optional budget.
#[derive(Clone, PartialEq, Debug)]
pub struct CheckRequest {
    /// The scenario to build (or fetch from the pool).
    pub spec: ScenarioSpec,
    /// Formula text, in the `eba-check` grammar.
    pub formula: String,
    /// Wall-clock budget in milliseconds; budgeted checks bypass the
    /// pool and may return a `partial` verdict.
    pub deadline_ms: Option<u64>,
    /// Run-count budget; honored at shard granularity, deterministic.
    pub max_runs: Option<u64>,
    /// Explicit shard count for exhaustive generation. The generated
    /// system is identical for any value; a budgeted query's
    /// `completed_shards`/`total_shards` figures are only deterministic
    /// (and oracle-comparable) when this is pinned.
    pub shards: Option<usize>,
    /// Also report a point where the formula holds.
    pub witness: bool,
}

/// A `sweep` request: one formula checked at every horizon `from..=to`.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepRequest {
    /// Scenario shape; `spec.horizon` is ignored (`from` is used) and
    /// `spec.sampled` must be `None` (sweeps are exhaustive-only).
    pub spec: ScenarioSpec,
    /// Formula text.
    pub formula: String,
    /// First horizon (inclusive).
    pub from: u16,
    /// Last horizon (inclusive).
    pub to: u16,
}

/// Typed failures; each maps to one error-frame kind.
#[derive(Clone, PartialEq, Debug)]
pub enum ServeError {
    /// The frame itself is unusable (not JSON / not an object / no op /
    /// oversize).
    BadFrame(String),
    /// The frame is well-formed but the request is not (unknown op, bad
    /// field type, unparsable formula, conflicting options).
    BadRequest(String),
    /// The model rejected the scenario parameters.
    InvalidScenario(String),
    /// A budget expired before any shard completed; nothing to report.
    BudgetExhausted(String),
    /// Admission control shed this query.
    Overloaded {
        /// Suggested client backoff.
        retry_after_ms: u64,
    },
    /// An [`eba_sim::chaos::EngineFault`] survived the retry budget.
    EngineFault(String),
    /// The server is draining.
    ShuttingDown,
    /// A worker panicked; the connection survived, the query did not.
    Panic(String),
}

impl ServeError {
    /// The wire kind of this error.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadFrame(_) => "bad-frame",
            ServeError::BadRequest(_) => "bad-request",
            ServeError::InvalidScenario(_) => "invalid-scenario",
            ServeError::BudgetExhausted(_) => "budget-exhausted",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::EngineFault(_) => "engine-fault",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::Panic(_) => "internal-panic",
        }
    }

    /// Renders the error frame.
    #[must_use]
    pub fn to_frame(&self) -> Json {
        let message = match self {
            ServeError::BadFrame(m)
            | ServeError::BadRequest(m)
            | ServeError::InvalidScenario(m)
            | ServeError::BudgetExhausted(m)
            | ServeError::EngineFault(m)
            | ServeError::Panic(m) => m.clone(),
            ServeError::Overloaded { .. } => "admission queue full".to_owned(),
            ServeError::ShuttingDown => "server is draining".to_owned(),
        };
        let mut fields = vec![
            ("ok", Json::Bool(false)),
            ("error", Json::Str(self.kind().to_owned())),
            ("message", Json::Str(message)),
        ];
        if let ServeError::Overloaded { retry_after_ms } = self {
            fields.push(("retry_after_ms", Json::Int(*retry_after_ms as i64)));
        }
        Json::obj(fields)
    }
}

impl fmt::Display for ServeError {
    /// The wire frame *is* the canonical textual form of a protocol
    /// error.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_frame().to_line())
    }
}

impl std::error::Error for ServeError {}

fn field_usize(frame: &Json, key: &str, default: usize) -> Result<usize, ServeError> {
    match frame.get(key) {
        None => Ok(default),
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as usize),
        Some(_) => Err(ServeError::BadRequest(format!(
            "field `{key}` must be a non-negative integer"
        ))),
    }
}

fn field_u64(frame: &Json, key: &str) -> Result<Option<u64>, ServeError> {
    match frame.get(key) {
        None => Ok(None),
        Some(Json::Int(i)) if *i > 0 => Ok(Some(*i as u64)),
        Some(_) => Err(ServeError::BadRequest(format!(
            "field `{key}` must be a positive integer"
        ))),
    }
}

fn field_bool(frame: &Json, key: &str) -> Result<bool, ServeError> {
    match frame.get(key) {
        None => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(ServeError::BadRequest(format!(
            "field `{key}` must be a boolean"
        ))),
    }
}

fn field_str<'a>(frame: &'a Json, key: &str) -> Result<Option<&'a str>, ServeError> {
    match frame.get(key) {
        None => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s)),
        Some(_) => Err(ServeError::BadRequest(format!(
            "field `{key}` must be a string"
        ))),
    }
}

fn parse_spec(frame: &Json) -> Result<ScenarioSpec, ServeError> {
    let n = field_usize(frame, "n", 3)?;
    let t = field_usize(frame, "t", 1)?;
    let mode = match field_str(frame, "mode")?.unwrap_or("crash") {
        "crash" => FailureMode::Crash,
        "omission" => FailureMode::Omission,
        "general-omission" => FailureMode::GeneralOmission,
        other => {
            return Err(ServeError::BadRequest(format!("unknown mode `{other}`")));
        }
    };
    let exchange = match field_str(frame, "exchange")? {
        None => ExchangeKind::FullInformation,
        Some(spec) => {
            ExchangeKind::parse(spec).map_err(|e| ServeError::BadRequest(e.to_string()))?
        }
    };
    let horizon = match frame.get("horizon") {
        None => u16::try_from(t + 2)
            .map_err(|_| ServeError::BadRequest("t too large for a horizon".into()))?,
        Some(Json::Int(i)) if (1..=i64::from(u16::MAX)).contains(i) => *i as u16,
        Some(_) => {
            return Err(ServeError::BadRequest(
                "field `horizon` must be a positive integer".into(),
            ));
        }
    };
    let sampled = match frame.get("sampled") {
        None => None,
        Some(Json::Arr(pair)) => match pair.as_slice() {
            [Json::Int(runs), Json::Int(seed)] if *runs > 0 && *seed >= 0 => {
                Some((*runs as usize, *seed as u64))
            }
            _ => {
                return Err(ServeError::BadRequest(
                    "field `sampled` must be [runs, seed] with runs >= 1".into(),
                ));
            }
        },
        Some(_) => {
            return Err(ServeError::BadRequest(
                "field `sampled` must be an array [runs, seed]".into(),
            ));
        }
    };
    let set_repr = match field_str(frame, "set_repr")? {
        None => SetReprKind::Dense,
        Some(spec) => SetReprKind::parse(spec).ok_or_else(|| {
            ServeError::BadRequest(format!("field `set_repr` must be dense|shared, got `{spec}`"))
        })?,
    };
    let symmetry = field_bool(frame, "symmetry")?;
    if symmetry {
        if sampled.is_some() {
            return Err(ServeError::BadRequest(
                "the symmetry quotient needs the exhaustive system; drop `sampled`".into(),
            ));
        }
        if !exchange.is_full() {
            return Err(ServeError::BadRequest(format!(
                "the symmetry quotient requires the full exchange; `{exchange}` bakes \
                 processor labels into its bounded states"
            )));
        }
    }
    Ok(ScenarioSpec {
        n,
        t,
        mode,
        exchange,
        horizon,
        sampled,
        symmetry,
        set_repr,
    })
}

impl Request {
    /// Parses one frame into a request.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadFrame`] when the frame is not an object with an
    /// `op` string, [`ServeError::BadRequest`] for everything else.
    pub fn from_frame(frame: &Json) -> Result<Request, ServeError> {
        if !matches!(frame, Json::Obj(_)) {
            return Err(ServeError::BadFrame("frame must be a JSON object".into()));
        }
        let op = frame
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::BadFrame("missing string field `op`".into()))?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "evict" => {
                if frame.get("n").is_some() {
                    Ok(Request::Evict(Some(parse_spec(frame)?)))
                } else {
                    Ok(Request::Evict(None))
                }
            }
            "check" => {
                let spec = parse_spec(frame)?;
                let formula = field_str(frame, "formula")?
                    .ok_or_else(|| ServeError::BadRequest("missing field `formula`".into()))?
                    .to_owned();
                let deadline_ms = field_u64(frame, "deadline_ms")?;
                let max_runs = field_u64(frame, "max_runs")?;
                if (deadline_ms.is_some() || max_runs.is_some()) && spec.sampled.is_some() {
                    return Err(ServeError::BadRequest(
                        "budgets govern exhaustive generation; drop `sampled`".into(),
                    ));
                }
                let shards = match field_u64(frame, "shards")? {
                    Some(s) => Some(usize::try_from(s).map_err(|_| {
                        ServeError::BadRequest("field `shards` is too large".into())
                    })?),
                    None => None,
                };
                Ok(Request::Check(CheckRequest {
                    spec,
                    formula,
                    deadline_ms,
                    max_runs,
                    shards,
                    witness: field_bool(frame, "witness")?,
                }))
            }
            "optimize" => {
                let spec = parse_spec(frame)?;
                Ok(Request::Optimize(spec))
            }
            "sweep" => {
                let spec = parse_spec(frame)?;
                if spec.sampled.is_some() {
                    return Err(ServeError::BadRequest(
                        "sweeps need the exhaustive system; drop `sampled`".into(),
                    ));
                }
                if !spec.exchange.supports_session_extension() {
                    return Err(ServeError::BadRequest(format!(
                        "sweeps need an exchange supporting session extension; `{}` is rebuild-only",
                        spec.exchange
                    )));
                }
                let formula = field_str(frame, "formula")?
                    .ok_or_else(|| ServeError::BadRequest("missing field `formula`".into()))?
                    .to_owned();
                let from = match frame.get("from").and_then(Json::as_i64) {
                    Some(i) if (1..=i64::from(u16::MAX)).contains(&i) => i as u16,
                    _ => {
                        return Err(ServeError::BadRequest(
                            "field `from` must be a positive integer".into(),
                        ));
                    }
                };
                let to = match frame.get("to").and_then(Json::as_i64) {
                    Some(i) if i >= i64::from(from) && i <= i64::from(u16::MAX) => i as u16,
                    _ => {
                        return Err(ServeError::BadRequest(
                            "field `to` must be an integer >= `from`".into(),
                        ));
                    }
                };
                Ok(Request::Sweep(SweepRequest {
                    spec,
                    formula,
                    from,
                    to,
                }))
            }
            other => Err(ServeError::BadRequest(format!("unknown op `{other}`"))),
        }
    }

    /// Parses a raw line (convenience for tests and the stdin mode).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadFrame`] on malformed JSON, else as
    /// [`Request::from_frame`].
    pub fn from_line(line: &str) -> Result<Request, ServeError> {
        let frame = crate::json::parse(line).map_err(|e| ServeError::BadFrame(e.to_string()))?;
        Request::from_frame(&frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_check_frame() {
        let req = Request::from_line(
            r#"{"op":"check","formula":"CC(E0) -> C(E0)","n":3,"t":1,"mode":"omission",
               "exchange":"digest:0","horizon":3,"max_runs":50,"witness":true}"#,
        )
        .unwrap();
        let Request::Check(check) = req else {
            panic!("wrong op");
        };
        assert_eq!(check.spec.n, 3);
        assert_eq!(check.spec.mode, FailureMode::Omission);
        assert_eq!(check.spec.horizon, 3);
        assert_eq!(check.max_runs, Some(50));
        assert!(check.witness);
        assert!(check.spec.scenario().is_ok());
    }

    #[test]
    fn defaults_match_the_cli() {
        let Request::Check(check) =
            Request::from_line(r#"{"op":"check","formula":"true"}"#).unwrap()
        else {
            panic!("wrong op");
        };
        assert_eq!((check.spec.n, check.spec.t), (3, 1));
        assert_eq!(check.spec.mode, FailureMode::Crash);
        assert_eq!(check.spec.horizon, 3, "horizon defaults to t + 2");
        assert_eq!(check.spec.exchange, ExchangeKind::FullInformation);
    }

    #[test]
    fn typed_errors_have_stable_kinds() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::BadFrame("x".into()), "bad-frame"),
            (ServeError::BadRequest("x".into()), "bad-request"),
            (ServeError::InvalidScenario("x".into()), "invalid-scenario"),
            (ServeError::BudgetExhausted("x".into()), "budget-exhausted"),
            (ServeError::Overloaded { retry_after_ms: 5 }, "overloaded"),
            (ServeError::EngineFault("x".into()), "engine-fault"),
            (ServeError::ShuttingDown, "shutting-down"),
            (ServeError::Panic("x".into()), "internal-panic"),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
            let frame = err.to_frame();
            assert_eq!(frame.get("ok"), Some(&Json::Bool(false)));
            assert_eq!(frame.get("error").and_then(Json::as_str), Some(kind));
        }
        let frame = ServeError::Overloaded { retry_after_ms: 7 }.to_frame();
        assert_eq!(frame.get("retry_after_ms").and_then(Json::as_i64), Some(7));
    }

    #[test]
    fn rejects_bad_requests_with_the_right_kind() {
        let bad_frame = Request::from_line("not json").unwrap_err();
        assert_eq!(bad_frame.kind(), "bad-frame");
        let no_op = Request::from_line(r#"{"x":1}"#).unwrap_err();
        assert_eq!(no_op.kind(), "bad-frame");
        let unknown = Request::from_line(r#"{"op":"fry"}"#).unwrap_err();
        assert_eq!(unknown.kind(), "bad-request");
        let bad_field =
            Request::from_line(r#"{"op":"check","formula":"true","n":"three"}"#).unwrap_err();
        assert_eq!(bad_field.kind(), "bad-request");
        let sampled_sweep = Request::from_line(
            r#"{"op":"sweep","formula":"true","from":2,"to":3,"sampled":[5,1]}"#,
        )
        .unwrap_err();
        assert_eq!(sampled_sweep.kind(), "bad-request");
        let rebuild_only = Request::from_line(
            r#"{"op":"sweep","formula":"true","from":2,"to":3,"exchange":"digest:32"}"#,
        )
        .unwrap_err();
        assert_eq!(rebuild_only.kind(), "bad-request");
        let sampled_symmetry = Request::from_line(
            r#"{"op":"check","formula":"true","symmetry":true,"sampled":[5,1]}"#,
        )
        .unwrap_err();
        assert_eq!(sampled_symmetry.kind(), "bad-request");
        let digest_symmetry = Request::from_line(
            r#"{"op":"check","formula":"true","symmetry":true,"exchange":"digest:0"}"#,
        )
        .unwrap_err();
        assert_eq!(digest_symmetry.kind(), "bad-request");
    }
}
