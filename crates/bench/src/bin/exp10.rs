//! Experiment EXP10; see `eba_bench::experiments::exp10`.
fn main() {
    for table in eba_bench::experiments::exp10() {
        table.print();
    }
}
