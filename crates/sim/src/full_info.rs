//! The full-information protocol as an ordinary message-level
//! [`Protocol`], used to differentially test the executor against the
//! hash-consed [`crate::fip_views`] fast path.
//!
//! The state is a literal view tree (Section 2.4): the initial value at
//! time 0, and at time `m` the previous state plus each received state.
//! This is exponentially large — which is exactly why the production path
//! interns views into a [`crate::ViewTable`] — but perfect as an
//! executable specification: `tests` check that running this protocol
//! through [`crate::execute`] produces states structurally identical to
//! the interned views, run by run and point by point.

use crate::{Protocol, ViewId, ViewTable};
use eba_model::{ProcessorId, Round, Value};
use std::sync::Arc;

/// A literal full-information view (an executable specification of the
/// FIP local state).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum View {
    /// The time-0 state: the processor's own initial value.
    Leaf {
        /// The owner.
        proc: ProcessorId,
        /// The owner's initial value.
        value: Value,
    },
    /// The state after one more round.
    Node {
        /// The owner's previous state.
        prev: Arc<View>,
        /// Per sender, the received state (if its message was delivered).
        received: Vec<Option<Arc<View>>>,
    },
}

impl View {
    /// Structural equality against an interned view from `table`.
    #[must_use]
    pub fn matches(&self, table: &ViewTable, id: ViewId) -> bool {
        match (self, table.node(id)) {
            (
                View::Leaf { proc, value },
                crate::ViewNode::Leaf {
                    proc: tp,
                    value: tv,
                },
            ) => proc == tp && value == tv,
            (
                View::Node { prev, received },
                crate::ViewNode::Node {
                    prev: tprev,
                    received: treceived,
                },
            ) => {
                if received.len() != treceived.len() {
                    return false;
                }
                if !prev.matches(table, *tprev) {
                    return false;
                }
                received
                    .iter()
                    .zip(treceived.iter())
                    .all(|(mine, theirs)| match (mine, theirs) {
                        (None, None) => true,
                        (Some(mine), Some(theirs)) => mine.matches(table, *theirs),
                        _ => false,
                    })
            }
            _ => false,
        }
    }

    /// The depth of the view (its time).
    #[must_use]
    pub fn time(&self) -> u16 {
        match self {
            View::Leaf { .. } => 0,
            View::Node { prev, .. } => 1 + prev.time(),
        }
    }

    /// The number of nodes in the view tree — the size of the
    /// full-information message, which grows exponentially with time
    /// (the cost the paper's `P0opt` avoids).
    #[must_use]
    pub fn size(&self) -> u64 {
        match self {
            View::Leaf { .. } => 1,
            View::Node { prev, received } => {
                1 + prev.size() + received.iter().flatten().map(|v| v.size()).sum::<u64>()
            }
        }
    }
}

/// The full-information protocol: every processor sends its entire state
/// to everyone in every round and never decides (decision functions are
/// layered on top at the knowledge level).
#[derive(Clone, Copy, Debug, Default)]
pub struct FullInformation;

impl Protocol for FullInformation {
    type State = Arc<View>;
    type Message = Arc<View>;

    fn name(&self) -> &str {
        "full-information"
    }

    fn initial_state(&self, p: ProcessorId, _n: usize, value: Value) -> Arc<View> {
        Arc::new(View::Leaf { proc: p, value })
    }

    fn message(
        &self,
        state: &Arc<View>,
        _from: ProcessorId,
        _to: ProcessorId,
        _round: Round,
    ) -> Option<Arc<View>> {
        Some(Arc::clone(state))
    }

    fn transition(
        &self,
        state: &Arc<View>,
        _p: ProcessorId,
        _round: Round,
        received: &[Option<Arc<View>>],
    ) -> Arc<View> {
        Arc::new(View::Node {
            prev: Arc::clone(state),
            received: received
                .iter()
                .map(|m| m.as_ref().map(Arc::clone))
                .collect(),
        })
    }

    fn output(&self, _state: &Arc<View>, _p: ProcessorId) -> Option<Value> {
        None
    }

    fn message_units(&self, message: &Arc<View>) -> u64 {
        message.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, GeneratedSystem};
    use eba_model::{FailureMode, Scenario, Time};

    /// The executable specification agrees with the interned fast path on
    /// every processor, time, and run of exhaustive systems in all three
    /// failure modes.
    #[test]
    fn executor_views_match_interned_views() {
        for (mode, horizon) in [
            (FailureMode::Crash, 3),
            (FailureMode::Omission, 2),
            (FailureMode::GeneralOmission, 2),
        ] {
            let scenario = Scenario::new(3, 1, mode, horizon).unwrap();
            let system = GeneratedSystem::exhaustive(&scenario);
            for run in system.run_ids() {
                let record = system.run(run);
                let trace = execute(
                    &FullInformation,
                    &record.config,
                    &record.pattern,
                    scenario.horizon(),
                )
                .unwrap();
                for time in Time::upto(scenario.horizon()) {
                    for p in ProcessorId::all(3) {
                        // The fast path freezes crashed views exactly like
                        // the executor freezes crashed states, so the
                        // comparison covers faulty processors too.
                        let spec = trace.state(p, time);
                        let interned = system.view(run, p, time);
                        assert!(
                            spec.matches(system.table(), interned),
                            "view mismatch: {mode} run {} {p} {time} ({} / [{}])",
                            run.index(),
                            record.config,
                            record.pattern,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn view_time_is_depth() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        let config = eba_model::InitialConfig::uniform(3, Value::One);
        let pattern = eba_model::FailurePattern::failure_free(3);
        let trace = execute(&FullInformation, &config, &pattern, scenario.horizon()).unwrap();
        for time in Time::upto(scenario.horizon()) {
            assert_eq!(trace.state(ProcessorId::new(0), time).time(), time.ticks());
        }
    }

    #[test]
    fn full_information_messages_grow_exponentially() {
        // The motivating cost contrast of Section 6.1: FIP messages blow
        // up; P0opt's stay linear.
        let config = eba_model::InitialConfig::uniform(4, Value::One);
        let pattern = eba_model::FailurePattern::failure_free(4);
        let short = execute(&FullInformation, &config, &pattern, Time::new(2)).unwrap();
        let long = execute(&FullInformation, &config, &pattern, Time::new(4)).unwrap();
        // Unit growth from 2 to 4 rounds far exceeds the 2× of a linear
        // protocol.
        assert!(long.message_units() > short.message_units() * 8);
    }

    #[test]
    fn full_information_never_decides() {
        let config = eba_model::InitialConfig::uniform(2, Value::Zero);
        let pattern = eba_model::FailurePattern::failure_free(2);
        let trace = execute(&FullInformation, &config, &pattern, Time::new(2)).unwrap();
        assert_eq!(trace.decision(ProcessorId::new(0)), None);
    }
}
