//! Experiment EXP8; see `eba_bench::experiments::exp8`.
fn main() {
    for table in eba_bench::experiments::exp8() {
        table.print();
    }
}
