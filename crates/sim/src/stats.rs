//! Decision-time statistics, used by the experiment harness.

use crate::{Decision, Trace};
use eba_model::{Time, Value};
use std::fmt;

/// An online accumulator of decision times.
///
/// Tracks, separately per decided value and overall: count, sum, maximum,
/// and a histogram over times, plus the number of processors that never
/// decided. Feed it [`Trace`]s or raw decisions and read off summary rows.
///
/// # Example
///
/// ```
/// use eba_model::{Time, Value};
/// use eba_sim::{stats::DecisionStats, Decision};
///
/// let mut stats = DecisionStats::new();
/// stats.record(Some(Decision { value: Value::One, time: Time::new(2) }));
/// stats.record(None);
/// assert_eq!(stats.decided(), 1);
/// assert_eq!(stats.undecided(), 1);
/// assert_eq!(stats.max_time(), Some(Time::new(2)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DecisionStats {
    histogram: Vec<u64>,
    per_value: [PerValue; 2],
    undecided: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct PerValue {
    count: u64,
    sum: u64,
    max: u16,
}

impl DecisionStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        DecisionStats::default()
    }

    /// Records one processor's decision (or lack thereof).
    pub fn record(&mut self, decision: Option<Decision>) {
        match decision {
            None => self.undecided += 1,
            Some(d) => {
                let t = d.time.ticks();
                if self.histogram.len() <= usize::from(t) {
                    self.histogram.resize(usize::from(t) + 1, 0);
                }
                self.histogram[usize::from(t)] += 1;
                let pv = &mut self.per_value[usize::from(d.value.as_u8())];
                pv.count += 1;
                pv.sum += u64::from(t);
                pv.max = pv.max.max(t);
            }
        }
    }

    /// Records the decisions of every *nonfaulty* processor of a trace.
    pub fn record_trace<S>(&mut self, trace: &Trace<S>) {
        for p in trace.nonfaulty() {
            self.record(trace.decision(p));
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &DecisionStats) {
        if self.histogram.len() < other.histogram.len() {
            self.histogram.resize(other.histogram.len(), 0);
        }
        for (i, &c) in other.histogram.iter().enumerate() {
            self.histogram[i] += c;
        }
        for v in 0..2 {
            self.per_value[v].count += other.per_value[v].count;
            self.per_value[v].sum += other.per_value[v].sum;
            self.per_value[v].max = self.per_value[v].max.max(other.per_value[v].max);
        }
        self.undecided += other.undecided;
    }

    /// Number of recorded decisions.
    #[must_use]
    pub fn decided(&self) -> u64 {
        self.per_value.iter().map(|pv| pv.count).sum()
    }

    /// Number of recorded non-decisions.
    #[must_use]
    pub fn undecided(&self) -> u64 {
        self.undecided
    }

    /// Number of decisions on `v`.
    #[must_use]
    pub fn decided_on(&self, v: Value) -> u64 {
        self.per_value[usize::from(v.as_u8())].count
    }

    /// Mean decision time over all decisions, or `None` if there were
    /// none.
    #[must_use]
    pub fn mean_time(&self) -> Option<f64> {
        let count = self.decided();
        if count == 0 {
            return None;
        }
        let sum: u64 = self.per_value.iter().map(|pv| pv.sum).sum();
        Some(sum as f64 / count as f64)
    }

    /// Mean decision time for decisions on `v`.
    #[must_use]
    pub fn mean_time_for(&self, v: Value) -> Option<f64> {
        let pv = self.per_value[usize::from(v.as_u8())];
        (pv.count > 0).then(|| pv.sum as f64 / pv.count as f64)
    }

    /// Maximum decision time, or `None` if nothing was decided.
    #[must_use]
    pub fn max_time(&self) -> Option<Time> {
        if self.decided() == 0 {
            return None;
        }
        Some(Time::new(
            self.per_value.iter().map(|pv| pv.max).max().unwrap_or(0),
        ))
    }

    /// Maximum decision time for decisions on `v`.
    #[must_use]
    pub fn max_time_for(&self, v: Value) -> Option<Time> {
        let pv = self.per_value[usize::from(v.as_u8())];
        (pv.count > 0).then(|| Time::new(pv.max))
    }

    /// The histogram of decision times: `histogram()[k]` decisions
    /// happened at time `k`.
    #[must_use]
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }
}

impl fmt::Display for DecisionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decided={} (0:{} 1:{}) undecided={} mean={} max={}",
            self.decided(),
            self.decided_on(Value::Zero),
            self.decided_on(Value::One),
            self.undecided(),
            self.mean_time()
                .map_or_else(|| "-".into(), |m| format!("{m:.2}")),
            self.max_time()
                .map_or_else(|| "-".into(), |m| m.to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(v: Value, t: u16) -> Option<Decision> {
        Some(Decision {
            value: v,
            time: Time::new(t),
        })
    }

    #[test]
    fn records_and_summarizes() {
        let mut s = DecisionStats::new();
        s.record(d(Value::Zero, 1));
        s.record(d(Value::Zero, 3));
        s.record(d(Value::One, 2));
        s.record(None);
        assert_eq!(s.decided(), 3);
        assert_eq!(s.undecided(), 1);
        assert_eq!(s.decided_on(Value::Zero), 2);
        assert_eq!(s.mean_time(), Some(2.0));
        assert_eq!(s.mean_time_for(Value::Zero), Some(2.0));
        assert_eq!(s.max_time(), Some(Time::new(3)));
        assert_eq!(s.max_time_for(Value::One), Some(Time::new(2)));
        assert_eq!(s.histogram(), &[0, 1, 1, 1]);
    }

    #[test]
    fn empty_stats() {
        let s = DecisionStats::new();
        assert_eq!(s.decided(), 0);
        assert_eq!(s.mean_time(), None);
        assert_eq!(s.max_time(), None);
        assert_eq!(s.max_time_for(Value::Zero), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = DecisionStats::new();
        a.record(d(Value::Zero, 1));
        let mut b = DecisionStats::new();
        b.record(d(Value::One, 4));
        b.record(None);
        a.merge(&b);
        assert_eq!(a.decided(), 2);
        assert_eq!(a.undecided(), 1);
        assert_eq!(a.max_time(), Some(Time::new(4)));
        assert_eq!(a.histogram(), &[0, 1, 0, 0, 1]);
    }

    #[test]
    fn display_is_informative() {
        let mut s = DecisionStats::new();
        s.record(d(Value::One, 2));
        let text = s.to_string();
        assert!(text.contains("decided=1"));
        assert!(text.contains("max=t2"));
    }
}
