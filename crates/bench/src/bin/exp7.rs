//! Experiment EXP7; see `eba_bench::experiments::exp7`.
fn main() {
    for table in eba_bench::experiments::exp7() {
        table.print();
    }
    eba_bench::experiments::exp7b().print();
}
