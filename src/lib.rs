//! Umbrella crate for the EBA reproduction; re-exports every sub-crate.
//!
//! This workspace reproduces *A Characterization of Eventual Byzantine
//! Agreement* (Halpern, Moses, Waarts — PODC 1990). See the README for the
//! full tour. The sub-crates are:
//!
//! * [`model`] — shared vocabulary (processors, values, failures, scenarios);
//! * [`sim`] — the synchronous simulator and full-information views;
//! * [`kripke`] — epistemic model checking (knowledge, common knowledge,
//!   continual common knowledge);
//! * [`core`] — the paper's contribution: decision pairs, `FIP(Z, O)`, the
//!   two-step optimization, optimality checking;
//! * [`protocols`] — message-level protocols (`P0`, `P0opt`, `FloodMin`,
//!   `EarlyStoppingCrash`, `ChainOmission`).

#![forbid(unsafe_code)]

pub use eba_core as core;
pub use eba_kripke as kripke;
pub use eba_model as model;
pub use eba_protocols as protocols;
pub use eba_sim as sim;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use eba_core::{
        check_optimality, dominates, lift_protocol, verify_properties, Constructor, DecisionPair,
        EngineSession, FipDecisions, SessionScope,
    };
    pub use eba_kripke::{
        Evaluator, Formula, KnowledgeCache, NonRigidSet, SetReprKind, StateSets,
    };
    pub use eba_model::{BudgetHit, RunBudget};
    pub use eba_model::{
        ExchangeKind, FailureMode, FailurePattern, FaultyBehavior, HorizonDelta, InitialConfig,
        ProcSet, ProcessorId, Round, Scenario, Time, Value,
    };
    pub use eba_sim::{
        execute, execute_unchecked, BuildOutcome, ExecError, ExtendReport, GeneratedSystem,
        Protocol, RunId, SystemBuilder, Trace,
    };
}
