//! End-to-end tests of the `eba-check` binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, Option<i32>) {
    let output = Command::new(env!("CARGO_BIN_EXE_eba-check"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.code(),
    )
}

#[test]
fn valid_formula_exits_zero() {
    let (stdout, _, code) = run(&["CC(E0) -> C(E0)"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("VALID"));
}

#[test]
fn invalid_formula_exits_one_with_counterexample() {
    let (stdout, _, code) = run(&["C(E0) -> CC(E0)"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("NOT VALID"));
    assert!(stdout.contains("counterexample: run"));
}

#[test]
fn witness_flag_prints_a_witness() {
    let (stdout, _, code) = run(&["--witness", "B_1(E0)"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("witness: run"));
}

#[test]
fn mode_and_size_options_are_honored() {
    let (stdout, _, code) = run(&[
        "--n",
        "4",
        "--t",
        "1",
        "--mode",
        "omission",
        "B_1(E0) -> (N(1) -> E0)",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("mode=omission"));
    assert!(stdout.contains("n=4"));
}

#[test]
fn general_omission_mode_is_available() {
    let (stdout, _, code) = run(&[
        "--mode",
        "general-omission",
        "--horizon",
        "2",
        "K_1(E0) -> E0",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
}

#[test]
fn sampled_systems_work() {
    let (stdout, _, code) = run(&[
        "--n",
        "6",
        "--t",
        "2",
        "--sampled",
        "40",
        "7",
        "K_1(E0) -> E0",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("sampled"));
}

#[test]
fn parse_errors_exit_two() {
    let (_, stderr, code) = run(&["E0 &"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("parse error"));
}

#[test]
fn usage_errors_exit_two() {
    let (_, stderr, code) = run(&["--mode", "byzantine", "E0"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown mode"));
}

#[test]
fn help_exits_zero() {
    let (stdout, _, code) = run(&["--help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("FORMULA SYNTAX"));
}

#[test]
fn quiet_suppresses_preamble() {
    let (stdout, _, code) = run(&["--quiet", "true"]);
    assert_eq!(code, Some(0));
    assert!(!stdout.contains("scenario"));
    assert!(stdout.contains("VALID"));
}

#[test]
fn timeline_mode_prints_a_grid() {
    let (stdout, _, code) = run(&[
        "--timeline",
        "--config",
        "011",
        "--pattern",
        "p1:crash@1->p2",
        "B_2(E0)",
        "C(E0)",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("run: ⟨0,1,1⟩"));
    assert!(stdout.contains("●"));
    assert!(stdout.contains("·"));
}

#[test]
fn timeline_defaults_to_failure_free_all_ones() {
    let (stdout, _, code) = run(&["--timeline", "E1"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("failure-free"));
}

#[test]
fn timeline_omission_pattern_parses() {
    let (stdout, _, code) = run(&[
        "--mode",
        "omission",
        "--timeline",
        "--config",
        "011",
        "--pattern",
        "p1:omit@1->p2,p3",
        "B_2(E0)",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("omit"));
}

#[test]
fn timeline_silent_shorthand() {
    let (stdout, _, code) = run(&[
        "--timeline",
        "--config",
        "011",
        "--pattern",
        "p1:silent",
        "C(E0)",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
}

#[test]
fn bad_pattern_specs_exit_two() {
    for spec in ["p1", "p9:clean", "p1:crash@0", "p1:warp", "p1:omit@9->p2"] {
        let (_, stderr, code) = run(&["--timeline", "--config", "011", "--pattern", spec, "E0"]);
        assert_eq!(code, Some(2), "spec `{spec}` should fail: {stderr}");
    }
}

#[test]
fn multiple_formulas_require_timeline() {
    let (_, stderr, code) = run(&["E0", "E1"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--timeline"));
}
