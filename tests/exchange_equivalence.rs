//! Differential oracle for the exchange abstraction (DESIGN.md §4g): on
//! spaces where the bounded digest exchange is **lossless** — its state
//! partition of the system's points coincides with the full-information
//! view partition — a digest-built system must be observationally
//! identical to the full-information oracle: same runs in the same order,
//! same indistinguishability structure, same decisions, same optimality
//! verdicts, same fixed-point iteration counts. Losslessness itself is
//! asserted first in every test (a bijection between the two view spaces
//! over all points), so a digest that silently coarsened the partition
//! fails loudly here rather than corrupting the downstream comparison.
//!
//! Chaos-disturbed, budget-partial, and incremental (session-extension)
//! digest builds are covered against the same oracles, mirroring the
//! incremental_equivalence suite.

use eba::model::ScenarioSpace;
use eba::prelude::*;
use eba::sim::chaos::{ChaosPlan, FaultInjector, FaultKind, FaultSite};
use eba::sim::ViewId;
use eba_core::protocols::{f_lambda_2, zero_chain_pair};
use eba_kripke::fixpoint;
use eba_kripke::parse::parse_formula;
use std::collections::HashMap;
use std::sync::Arc;

fn digest(scenario: &Scenario, bits: u8) -> Scenario {
    scenario
        .with_exchange(ExchangeKind::Digest { bits })
        .unwrap()
}

/// Asserts the digest partition of points equals the full-information
/// partition: the slot-wise correspondence `full view ↔ digest view` is a
/// bijection over every `(run, time, proc)` slot, and the decision-
/// relevant cached attributes agree on every corresponding pair. This is
/// the "lossless" premise of the equivalence; everything downstream
/// (knowledge, decisions, optimality) is a function of the partition and
/// these attributes.
fn assert_digest_lossless(full: &GeneratedSystem, digest: &GeneratedSystem) {
    assert_eq!(full.num_runs(), digest.num_runs());
    assert_eq!(full.horizon(), digest.horizon());
    let n = full.n();
    let mut fwd: HashMap<ViewId, ViewId> = HashMap::new();
    let mut bwd: HashMap<ViewId, ViewId> = HashMap::new();
    for r in full.run_ids() {
        assert_eq!(full.run(r).config, digest.run(r).config);
        assert_eq!(full.run(r).pattern, digest.run(r).pattern);
        assert_eq!(full.nonfaulty(r), digest.nonfaulty(r));
        for time in 0..=full.horizon().index() {
            for p in ProcessorId::all(n) {
                let t = Time::new(time as u16);
                let fv = full.view(r, p, t);
                let dv = digest.view(r, p, t);
                if let Some(prev) = fwd.insert(fv, dv) {
                    assert_eq!(
                        prev, dv,
                        "digest splits a full-info class at run {r:?}, {t}, {p}"
                    );
                }
                if let Some(prev) = bwd.insert(dv, fv) {
                    assert_eq!(
                        prev, fv,
                        "digest merges full-info classes at run {r:?}, {t}, {p} \
                         (the digest is lossy on this space)"
                    );
                }
                let (ft, dt) = (full.table(), digest.table());
                assert_eq!(ft.proc(fv), dt.proc(dv));
                assert_eq!(ft.time(fv), dt.time(dv));
                assert_eq!(ft.own_value(fv), dt.own_value(dv));
                assert_eq!(ft.exists_zero(fv), dt.exists_zero(dv));
                assert_eq!(ft.exists_one(fv), dt.exists_one(dv));
                assert_eq!(ft.known_procs(fv), dt.known_procs(dv));
                assert_eq!(ft.known_zeros(fv), dt.known_zeros(dv));
                assert_eq!(ft.heard_from(fv), dt.heard_from(dv));
            }
        }
    }
}

/// Computes a protocol's decisions, its optimality verdict, and the
/// `C_N(∃0)` greatest-fixed-point result over `system` — the artifacts
/// that must be bit-identical between the exchanges.
fn downstream_artifacts(
    system: &GeneratedSystem,
    build: fn(&mut Constructor<'_>) -> DecisionPair,
) -> (FipDecisions, bool, (u64, usize)) {
    let mut ctor = Constructor::new(system);
    let pair = build(&mut ctor);
    let decisions = FipDecisions::compute(system, &pair, "pair");
    let optimal = check_optimality(&mut ctor, &pair).is_optimal();
    let phi = parse_formula("E0").unwrap();
    let (sat, iterations) = fixpoint::common_by_gfp(ctor.evaluator(), NonRigidSet::Nonfaulty, &phi);
    (decisions, optimal, (sat.count_ones() as u64, iterations))
}

fn assert_artifacts_match(
    full: &GeneratedSystem,
    digest: &GeneratedSystem,
    build: fn(&mut Constructor<'_>) -> DecisionPair,
) {
    let (full_dec, full_opt, full_gfp) = downstream_artifacts(full, build);
    let (dig_dec, dig_opt, dig_gfp) = downstream_artifacts(digest, build);
    for r in full.run_ids() {
        for p in ProcessorId::all(full.n()) {
            assert_eq!(
                full_dec.decision(r, p),
                dig_dec.decision(r, p),
                "decision diverges at run {r:?}, {p}"
            );
        }
    }
    assert_eq!(full_opt, dig_opt, "optimality verdict diverges");
    assert_eq!(
        full_gfp, dig_gfp,
        "C_N(E0) gfp result or iteration count diverges"
    );
}

/// Render-based content equality between two systems of the **same**
/// exchange (e.g. warm vs cold digest builds), whose id numberings may be
/// permutations of each other.
fn assert_same_exchange_equivalent(a: &GeneratedSystem, b: &GeneratedSystem) {
    assert_eq!(a.num_runs(), b.num_runs());
    assert_eq!(a.table().len(), b.table().len());
    let n = a.n();
    for r in b.run_ids() {
        assert_eq!(a.run(r).config, b.run(r).config);
        assert_eq!(a.run(r).pattern, b.run(r).pattern);
        for time in 0..=b.horizon().index() {
            for p in ProcessorId::all(n) {
                let t = Time::new(time as u16);
                assert_eq!(
                    a.table().render(a.view(r, p, t)),
                    b.table().render(b.view(r, p, t)),
                    "view content diverges at run {r:?}, time {time}, {p}"
                );
            }
        }
    }
}

#[test]
fn crash_digest_matches_full_info_oracle() {
    let full_scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    let full = GeneratedSystem::exhaustive(&full_scenario);
    for bits in [0, 32] {
        let dig = GeneratedSystem::exhaustive(&digest(&full_scenario, bits));
        assert_digest_lossless(&full, &dig);
        assert_artifacts_match(&full, &dig, f_lambda_2);
    }
}

#[test]
fn omission_digest_matches_full_info_oracle() {
    let full_scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
    let full = GeneratedSystem::exhaustive(&full_scenario);
    for bits in [0, 32] {
        let dig = GeneratedSystem::exhaustive(&digest(&full_scenario, bits));
        assert_digest_lossless(&full, &dig);
        assert_artifacts_match(&full, &dig, zero_chain_pair);
    }
}

#[test]
fn general_omission_digest_matches_full_info_oracle() {
    let full_scenario = Scenario::new(3, 1, FailureMode::GeneralOmission, 2).unwrap();
    let full = GeneratedSystem::exhaustive(&full_scenario);
    let dig = GeneratedSystem::exhaustive(&digest(&full_scenario, 0));
    assert_digest_lossless(&full, &dig);
    assert_artifacts_match(&full, &dig, zero_chain_pair);
}

#[test]
fn chaos_disturbed_digest_build_is_undisturbed() {
    // A shard panic during digest generation is absorbed by supervision
    // and must leave no trace: the chaos build equals the plain build,
    // and both equal the full-info oracle.
    let scenario = digest(&Scenario::new(3, 2, FailureMode::Crash, 2).unwrap(), 0);
    let plan = Arc::new(ChaosPlan::new().with_fault(FaultSite::BuilderShard, 1, FaultKind::Panic));
    let outcome = SystemBuilder::new(&scenario)
        .threads(4)
        .shards(4)
        .chaos(plan as Arc<dyn FaultInjector>)
        .build_governed()
        .unwrap();
    assert!(outcome.is_complete());
    let disturbed = outcome.into_system();
    assert_same_exchange_equivalent(&disturbed, &GeneratedSystem::exhaustive(&scenario));
    let full = GeneratedSystem::exhaustive(&Scenario::new(3, 2, FailureMode::Crash, 2).unwrap());
    assert_digest_lossless(&full, &disturbed);
}

#[test]
fn budget_partial_digest_prefix_matches_full_info_prefix() {
    // The same two-of-four-shards budget applied under both exchanges
    // must keep the same deterministic run prefix, and the digest prefix
    // must be lossless against the full-info prefix.
    let full_scenario = Scenario::new(3, 2, FailureMode::Crash, 2).unwrap();
    let space = ScenarioSpace::new(full_scenario);
    let shards = space.shards(4);
    let two_shards = (shards[0].len() + shards[1].len()) * space.num_configs();
    let budgeted = |scenario: &Scenario| {
        let outcome = SystemBuilder::new(scenario)
            .threads(2)
            .shards(4)
            .budget(RunBudget::unlimited().with_max_runs(two_shards as u64))
            .build_governed()
            .unwrap();
        assert!(outcome.budget_hit().is_some(), "budget must bind");
        outcome.into_system()
    };
    let full = budgeted(&full_scenario);
    let dig = budgeted(&digest(&full_scenario, 0));
    assert!(full.num_runs() > 0);
    assert_digest_lossless(&full, &dig);
}

#[test]
fn digest_session_extension_matches_cold_digest_builds() {
    // digest:0 supports the incremental engine; every swept horizon must
    // equal a cold digest build AND stay lossless against the cold
    // full-info oracle of that horizon.
    let scenario = digest(&Scenario::new(3, 1, FailureMode::Crash, 2).unwrap(), 0);
    let mut session = EngineSession::exhaustive(&scenario).unwrap();
    for h in [3u16, 4] {
        session.extend_to(h).unwrap();
        let cold = GeneratedSystem::exhaustive(&scenario.with_horizon(h).unwrap());
        assert_same_exchange_equivalent(session.system(), &cold);
        let full =
            GeneratedSystem::exhaustive(&Scenario::new(3, 1, FailureMode::Crash, h).unwrap());
        assert_digest_lossless(&full, session.system());
    }
    assert_eq!(session.epoch(), 2);
}

#[test]
fn fingerprinted_digest_extension_fails_typed() {
    // bits > 0 digests are rebuild-only: the builder-level extension path
    // reports a typed InvalidScenario, not a panic.
    let scenario = digest(&Scenario::new(3, 1, FailureMode::Crash, 2).unwrap(), 32);
    let base = GeneratedSystem::exhaustive(&scenario);
    let target = scenario.with_horizon(3).unwrap();
    let err = SystemBuilder::new(&target).extend(&base).unwrap_err();
    assert!(err.to_string().contains("session extension"), "{err}");
}

#[test]
fn knowledge_cache_never_mixes_exchanges() {
    // A lossless digest system has exactly the full-info system's point
    // count, so sharing one cache handle across the two systems is legal
    // (the module-docs contract is "same point space") — and is exactly
    // the scenario in which exchange-blind content keys would silently
    // serve one exchange's reachability to the other. With the exchange
    // fingerprint in every key, both evaluators must miss.
    let full_scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
    let full = GeneratedSystem::exhaustive(&full_scenario);
    let dig = GeneratedSystem::exhaustive(&digest(&full_scenario, 0));
    assert_eq!(full.num_points(), dig.num_points());

    let cache = KnowledgeCache::new();
    let mut full_eval = Evaluator::with_cache(&full, cache.clone());
    full_eval.reachability(NonRigidSet::Nonfaulty);
    let mut dig_eval = Evaluator::with_cache(&dig, cache.clone());
    dig_eval.reachability(NonRigidSet::Nonfaulty);
    assert_eq!(
        cache.stats().reach_misses,
        2,
        "the digest evaluator must not be served the full-info entry"
    );
    assert_eq!(cache.len(), 2, "both entries coexist under distinct keys");

    // Same exchange still shares: a third evaluator over the digest
    // system hits.
    let mut second = Evaluator::with_cache(&dig, cache.clone());
    second.reachability(NonRigidSet::Nonfaulty);
    assert_eq!(cache.stats().reach_misses, 2);
    assert!(cache.stats().reach_hits >= 1);
}
