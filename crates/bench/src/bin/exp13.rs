//! Experiment EXP13; see `eba_bench::experiments::exp13`.
fn main() {
    for table in eba_bench::experiments::exp13() {
        table.print();
    }
}
