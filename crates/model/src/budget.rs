//! Resource governance for long-running engine work.
//!
//! The exhaustive machinery of this workspace is exponential in the
//! scenario parameters, so a run over an ambitious scenario can only fail
//! by hanging or exhausting memory unless something bounds it. A
//! [`RunBudget`] declares those bounds — a wall-clock deadline, a maximum
//! number of runs, a maximum number of interned views — and an
//! [`ArmedBudget`] (a budget plus a start instant) is checked
//! *cooperatively* at the natural loop boundaries of the engine:
//!
//! * [`Patterns`](crate::enumerate::Patterns) enumeration (per pattern);
//! * `SystemBuilder` in `eba-sim` (per shard and per pattern within a
//!   shard);
//! * greatest-fixed-point iteration in `eba-kripke` (per iteration).
//!
//! Exhaustion surfaces as a typed [`BudgetHit`], never as a panic: callers
//! receive the work completed so far (e.g. the builder's
//! `BuildOutcome::Partial`) together with the hit that stopped them.
//! Because checks are cooperative, a deadline is honored to within one
//! loop body, not exactly; the engine guarantees termination within a
//! small multiple of the deadline rather than at it.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Declarative resource bounds for one engine run. The default
/// ([`RunBudget::unlimited`]) bounds nothing and adds no overhead beyond
/// the checks themselves.
///
/// # Example
///
/// ```
/// use eba_model::RunBudget;
/// use std::time::Duration;
///
/// let budget = RunBudget::unlimited()
///     .with_deadline(Duration::from_secs(30))
///     .with_max_runs(1_000_000);
/// let armed = budget.arm();
/// assert!(armed.check_runs(999).is_ok());
/// assert!(armed.check_runs(2_000_000).is_err());
/// ```
#[derive(Clone, Copy, Default, Debug)]
pub struct RunBudget {
    deadline: Option<Duration>,
    max_runs: Option<u64>,
    max_views: Option<u64>,
    /// Cooperative cancellation flag: when set (by a signal handler, a
    /// draining server, …) every subsequent budget check reports
    /// [`BudgetHit::Interrupted`]. A `&'static` reference keeps the
    /// budget `Copy`, so it still fans out to parallel workers without
    /// synchronization; long-lived owners that need a fresh flag per
    /// instance can `Box::leak` one.
    interrupt: Option<&'static AtomicBool>,
}

impl RunBudget {
    /// A budget that bounds nothing.
    #[must_use]
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Bounds the wall-clock time of the run, measured from [`arm`].
    ///
    /// [`arm`]: RunBudget::arm
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Bounds the number of runs generated or enumerated.
    #[must_use]
    pub fn with_max_runs(mut self, max_runs: u64) -> Self {
        self.max_runs = Some(max_runs);
        self
    }

    /// Bounds the number of distinct views (interned states) generated.
    #[must_use]
    pub fn with_max_views(mut self, max_views: u64) -> Self {
        self.max_views = Some(max_views);
        self
    }

    /// Attaches a cooperative cancellation flag: once `flag` is set,
    /// every budget check fails with [`BudgetHit::Interrupted`]. This is
    /// how SIGINT handling and server drains reuse the budget machinery —
    /// the interrupted computation stops at the same cooperative
    /// checkpoints a deadline would, yielding the same deterministic
    /// partial results.
    #[must_use]
    pub fn with_interrupt(mut self, flag: &'static AtomicBool) -> Self {
        self.interrupt = Some(flag);
        self
    }

    /// The configured deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The attached cancellation flag, if any.
    #[must_use]
    pub fn interrupt(&self) -> Option<&'static AtomicBool> {
        self.interrupt
    }

    /// The configured run bound, if any.
    #[must_use]
    pub fn max_runs(&self) -> Option<u64> {
        self.max_runs
    }

    /// The configured view bound, if any.
    #[must_use]
    pub fn max_views(&self) -> Option<u64> {
        self.max_views
    }

    /// Whether this budget bounds anything at all.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_runs.is_none()
            && self.max_views.is_none()
            && self.interrupt.is_none()
    }

    /// Starts the clock: returns an [`ArmedBudget`] whose deadline counts
    /// from now. Arming an unlimited budget is free and every check on it
    /// succeeds.
    #[must_use]
    pub fn arm(&self) -> ArmedBudget {
        ArmedBudget {
            budget: *self,
            start: Instant::now(),
        }
    }
}

/// A [`RunBudget`] with a start instant; `Copy`, so it can be handed to
/// every worker of a parallel stage without synchronization.
#[derive(Clone, Copy, Debug)]
pub struct ArmedBudget {
    budget: RunBudget,
    start: Instant,
}

impl ArmedBudget {
    /// The underlying budget.
    #[must_use]
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    /// Time elapsed since the budget was armed.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Checks the cancellation flag and the wall-clock deadline.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetHit::Interrupted`] when the attached cancellation
    /// flag is set (it takes precedence: an interrupt is an explicit
    /// request), or [`BudgetHit::Deadline`] when the deadline has passed.
    pub fn check_deadline(&self) -> Result<(), BudgetHit> {
        if let Some(flag) = self.budget.interrupt {
            if flag.load(Ordering::Relaxed) {
                return Err(BudgetHit::Interrupted);
            }
        }
        match self.budget.deadline {
            Some(limit) if self.start.elapsed() >= limit => Err(BudgetHit::Deadline { limit }),
            _ => Ok(()),
        }
    }

    /// Checks the deadline and the run bound against `runs_done`.
    ///
    /// # Errors
    ///
    /// Returns the [`BudgetHit`] describing the first exceeded bound.
    pub fn check_runs(&self, runs_done: u64) -> Result<(), BudgetHit> {
        self.check_deadline()?;
        match self.budget.max_runs {
            Some(limit) if runs_done > limit => Err(BudgetHit::MaxRuns { limit }),
            _ => Ok(()),
        }
    }

    /// Checks the deadline and the view bound against `views_interned`.
    ///
    /// # Errors
    ///
    /// Returns the [`BudgetHit`] describing the first exceeded bound.
    pub fn check_views(&self, views_interned: u64) -> Result<(), BudgetHit> {
        self.check_deadline()?;
        match self.budget.max_views {
            Some(limit) if views_interned > limit => Err(BudgetHit::MaxViews { limit }),
            _ => Ok(()),
        }
    }
}

/// The typed outcome of a budget check that failed: which bound was
/// exceeded, with its configured limit. Returned alongside partial
/// results; never thrown as a panic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetHit {
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured deadline.
        limit: Duration,
    },
    /// More runs were requested than the budget allows.
    MaxRuns {
        /// The configured run bound.
        limit: u64,
    },
    /// More views were interned than the budget allows.
    MaxViews {
        /// The configured view bound.
        limit: u64,
    },
    /// The budget's cancellation flag was set (SIGINT, server drain, …).
    Interrupted,
}

impl fmt::Display for BudgetHit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetHit::Deadline { limit } => {
                write!(f, "deadline of {:.3}s exceeded", limit.as_secs_f64())
            }
            BudgetHit::MaxRuns { limit } => write!(f, "run budget of {limit} exhausted"),
            BudgetHit::MaxViews { limit } => write!(f, "view budget of {limit} exhausted"),
            BudgetHit::Interrupted => write!(f, "interrupted"),
        }
    }
}

impl std::error::Error for BudgetHit {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let armed = RunBudget::unlimited().arm();
        assert!(armed.check_deadline().is_ok());
        assert!(armed.check_runs(u64::MAX).is_ok());
        assert!(armed.check_views(u64::MAX).is_ok());
        assert!(RunBudget::unlimited().is_unlimited());
    }

    #[test]
    fn run_bound_is_inclusive() {
        let armed = RunBudget::unlimited().with_max_runs(10).arm();
        assert!(armed.check_runs(10).is_ok());
        assert_eq!(armed.check_runs(11), Err(BudgetHit::MaxRuns { limit: 10 }));
    }

    #[test]
    fn view_bound_is_inclusive() {
        let armed = RunBudget::unlimited().with_max_views(5).arm();
        assert!(armed.check_views(5).is_ok());
        assert_eq!(armed.check_views(6), Err(BudgetHit::MaxViews { limit: 5 }));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let armed = RunBudget::unlimited().with_deadline(Duration::ZERO).arm();
        assert!(matches!(
            armed.check_deadline(),
            Err(BudgetHit::Deadline { .. })
        ));
        // And the deadline hit takes precedence in combined checks.
        assert!(matches!(
            armed.check_runs(0),
            Err(BudgetHit::Deadline { .. })
        ));
    }

    #[test]
    fn generous_deadline_passes() {
        let armed = RunBudget::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .arm();
        assert!(armed.check_deadline().is_ok());
        assert!(armed.elapsed() < Duration::from_secs(3600));
    }

    #[test]
    fn interrupt_flag_trips_every_check() {
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let armed = RunBudget::unlimited().with_interrupt(flag).arm();
        assert!(armed.check_deadline().is_ok());
        assert!(armed.check_runs(u64::MAX).is_ok());
        flag.store(true, Ordering::Relaxed);
        assert_eq!(armed.check_deadline(), Err(BudgetHit::Interrupted));
        assert_eq!(armed.check_runs(0), Err(BudgetHit::Interrupted));
        assert_eq!(armed.check_views(0), Err(BudgetHit::Interrupted));
        // An interrupt budget bounds something, and the flag survives
        // round-trips through the accessor.
        assert!(!RunBudget::unlimited().with_interrupt(flag).is_unlimited());
        assert!(armed.budget().interrupt().is_some());
    }

    #[test]
    fn interrupt_takes_precedence_over_deadline() {
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(true)));
        let armed = RunBudget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_interrupt(flag)
            .arm();
        assert_eq!(armed.check_deadline(), Err(BudgetHit::Interrupted));
    }

    #[test]
    fn display_names_the_bound() {
        assert!(BudgetHit::MaxRuns { limit: 7 }.to_string().contains("7"));
        assert!(BudgetHit::MaxViews { limit: 9 }
            .to_string()
            .contains("view"));
        assert!(BudgetHit::Deadline {
            limit: Duration::from_secs(2)
        }
        .to_string()
        .contains("deadline"));
    }
}
