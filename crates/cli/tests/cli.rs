//! End-to-end tests of the `eba-check` binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, Option<i32>) {
    let output = Command::new(env!("CARGO_BIN_EXE_eba-check"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.code(),
    )
}

#[test]
fn valid_formula_exits_zero() {
    let (stdout, _, code) = run(&["CC(E0) -> C(E0)"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("VALID"));
}

#[test]
fn invalid_formula_exits_one_with_counterexample() {
    let (stdout, _, code) = run(&["C(E0) -> CC(E0)"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("NOT VALID"));
    assert!(stdout.contains("counterexample: run"));
}

#[test]
fn witness_flag_prints_a_witness() {
    let (stdout, _, code) = run(&["--witness", "B_1(E0)"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("witness: run"));
}

#[test]
fn mode_and_size_options_are_honored() {
    let (stdout, _, code) = run(&[
        "--n",
        "4",
        "--t",
        "1",
        "--mode",
        "omission",
        "B_1(E0) -> (N(1) -> E0)",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("mode=omission"));
    assert!(stdout.contains("n=4"));
}

#[test]
fn general_omission_mode_is_available() {
    let (stdout, _, code) = run(&[
        "--mode",
        "general-omission",
        "--horizon",
        "2",
        "K_1(E0) -> E0",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
}

#[test]
fn sampled_systems_work() {
    let (stdout, _, code) = run(&[
        "--n",
        "6",
        "--t",
        "2",
        "--sampled",
        "40",
        "7",
        "K_1(E0) -> E0",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("sampled"));
}

#[test]
fn cache_stats_flag_prints_counters() {
    let (stdout, _, code) = run(&["--cache-stats", "CC(E0) -> C(E0)"]);
    assert_eq!(code, Some(0), "{stdout}");
    let cache_line = stdout
        .lines()
        .find(|l| l.starts_with("cache: "))
        .unwrap_or_else(|| panic!("no cache line in {stdout}"));
    assert!(cache_line.contains("reachability"), "{cache_line}");
    assert!(cache_line.contains("scope columns"), "{cache_line}");
    // CC and C over Everyone both need reachability, so the shared cache
    // must have seen at least one reachability miss.
    assert!(
        !cache_line.contains("reachability 0 hits / 0 misses"),
        "{cache_line}"
    );
}

#[test]
fn cache_stats_off_by_default() {
    let (stdout, _, code) = run(&["CC(E0) -> C(E0)"]);
    assert_eq!(code, Some(0));
    assert!(!stdout.contains("cache:"), "{stdout}");
}

#[test]
fn parse_errors_exit_two() {
    let (_, stderr, code) = run(&["E0 &"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("parse error"));
}

#[test]
fn usage_errors_exit_two() {
    let (_, stderr, code) = run(&["--mode", "byzantine", "E0"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown mode"));
}

#[test]
fn help_exits_zero() {
    let (stdout, _, code) = run(&["--help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("FORMULA SYNTAX"));
}

#[test]
fn quiet_suppresses_preamble() {
    let (stdout, _, code) = run(&["--quiet", "true"]);
    assert_eq!(code, Some(0));
    assert!(!stdout.contains("scenario"));
    assert!(stdout.contains("VALID"));
}

#[test]
fn timeline_mode_prints_a_grid() {
    let (stdout, _, code) = run(&[
        "--timeline",
        "--config",
        "011",
        "--pattern",
        "p1:crash@1->p2",
        "B_2(E0)",
        "C(E0)",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("run: ⟨0,1,1⟩"));
    assert!(stdout.contains("●"));
    assert!(stdout.contains("·"));
}

#[test]
fn timeline_defaults_to_failure_free_all_ones() {
    let (stdout, _, code) = run(&["--timeline", "E1"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("failure-free"));
}

#[test]
fn timeline_omission_pattern_parses() {
    let (stdout, _, code) = run(&[
        "--mode",
        "omission",
        "--timeline",
        "--config",
        "011",
        "--pattern",
        "p1:omit@1->p2,p3",
        "B_2(E0)",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("omit"));
}

#[test]
fn timeline_silent_shorthand() {
    let (stdout, _, code) = run(&[
        "--timeline",
        "--config",
        "011",
        "--pattern",
        "p1:silent",
        "C(E0)",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
}

#[test]
fn bad_pattern_specs_exit_two() {
    for spec in ["p1", "p9:clean", "p1:crash@0", "p1:warp", "p1:omit@9->p2"] {
        let (_, stderr, code) = run(&["--timeline", "--config", "011", "--pattern", spec, "E0"]);
        assert_eq!(code, Some(2), "spec `{spec}` should fail: {stderr}");
    }
}

#[test]
fn multiple_formulas_require_timeline() {
    let (_, stderr, code) = run(&["E0", "E1"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--timeline"));
}

#[test]
fn zero_knobs_exit_two_with_one_line_diagnostics() {
    for args in [
        ["--threads", "0"],
        ["--shards", "0"],
        ["--max-runs", "0"],
        ["--deadline", "0"],
    ] {
        let (_, stderr, code) = run(&[args[0], args[1], "E0"]);
        assert_eq!(code, Some(2), "{args:?}: {stderr}");
        let diagnostic = stderr.lines().next().unwrap_or_default();
        assert!(
            diagnostic.starts_with("error:") && diagnostic.contains(args[0]),
            "{args:?}: {stderr}"
        );
    }
    let (_, stderr, code) = run(&["--sampled", "0", "7", "E0"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--sampled needs at least 1 run"));
}

#[test]
fn generous_budget_still_reports_complete_verdict() {
    let (stdout, _, code) = run(&[
        "--deadline",
        "120",
        "--max-runs",
        "1000000",
        "CC(E0) -> C(E0)",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("VALID"));
    assert!(!stdout.contains("PARTIAL"), "{stdout}");
}

#[test]
fn exhausted_run_budget_prints_partial_banner() {
    // 3,1,omission,2 has well over 50 runs; with 64 shards each shard is
    // small enough that a nonempty prefix fits under the cap, so the
    // verdict must carry a PARTIAL banner.
    let (stdout, _, code) = run(&[
        "--mode",
        "omission",
        "--horizon",
        "2",
        "--shards",
        "64",
        "--max-runs",
        "50",
        "--quiet",
        "true",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(
        stdout.contains("PARTIAL: run budget of 50 exhausted"),
        "{stdout}"
    );
    assert!(stdout.contains("shards ("), "{stdout}");
}

#[test]
fn budget_flags_conflict_with_sampled_and_timeline() {
    let (_, stderr, code) = run(&["--sampled", "10", "7", "--deadline", "5", "E0"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("drop --sampled"), "{stderr}");
    let (_, stderr, code) = run(&["--timeline", "--max-runs", "10", "E0"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("complete system"), "{stderr}");
}

#[test]
fn sigint_degrades_to_a_partial_prefix_verdict() {
    use std::process::Stdio;
    use std::time::{Duration, Instant};

    // A build that runs for minutes on any host, split into many small
    // shards so a prefix completes quickly and the interrupt flag is
    // polled often.
    let mut child = Command::new(env!("CARGO_BIN_EXE_eba-check"))
        .args([
            "--n",
            "5",
            "--t",
            "2",
            "--mode",
            "crash",
            "--horizon",
            "3",
            "--shards",
            "256",
            "--quiet",
            "true",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");

    std::thread::sleep(Duration::from_secs(3));
    let status = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -INT failed");

    // Cooperative shutdown: the build must stop at the next shard
    // checkpoint, not run to completion (which takes minutes) and not
    // die mid-write (which would lose the exit status).
    let deadline = Instant::now() + Duration::from_secs(60);
    let output = loop {
        match child.try_wait().expect("try_wait") {
            Some(_) => break child.wait_with_output().expect("output"),
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("SIGINT was not honored within 60s");
            }
            None => std::thread::sleep(Duration::from_millis(100)),
        }
    };
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    // Either a nonempty shard prefix completed (PARTIAL banner + prefix
    // verdict) or the signal landed before the first checkpoint (typed
    // error); both are graceful exits, never a signal death.
    assert!(
        output.status.code().is_some(),
        "process was killed by a signal instead of exiting: {stderr}"
    );
    assert!(
        stdout.contains("PARTIAL: interrupted") || stderr.contains("interrupted"),
        "no interrupt acknowledgement.\nstdout: {stdout}\nstderr: {stderr}"
    );
}
