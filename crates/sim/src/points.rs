//! The columnar point store: struct-of-arrays access to the points of a
//! generated system.
//!
//! A *point* is a (run, time) pair, numbered densely as
//! `run × (horizon + 1) + time` and addressed by [`eba_model::PointId`].
//! [`GeneratedSystem`](crate::GeneratedSystem) stores views point-major
//! (`views[point][proc]`), which is the natural layout for simulation;
//! the knowledge engine, however, scans *one processor's view across all
//! points* — knowledge of `φ` at a point depends only on that processor's
//! view there. The [`PointStore`] reorganizes the same data into the
//! layout those scans want:
//!
//! * parallel `(run, time)` columns, so `point → run` and `point → time`
//!   are array loads instead of divisions;
//! * per-processor **view columns** (`column(p)[point] = view of p at
//!   point`), the processor-major transpose of the system's view matrix;
//! * per-processor **CSR bucket partitions**: for each processor, the
//!   points grouped by its view, flattened into `offsets`/`items` arrays
//!   indexed by [`ViewId`]. Two points are indistinguishable to `p` iff
//!   they share a bucket, so every knowledge closure and every
//!   reachability union is a walk over buckets rather than a hash lookup
//!   per point.
//!
//! The store is built once at system-build time (every
//! [`GeneratedSystem`](crate::GeneratedSystem) constructor finishes by
//! calling [`PointStore::build`]) and shared behind an `Arc`, so cloning
//! a system does not duplicate it. Within a bucket, items appear in
//! increasing point order — the same first-encounter order a sequential
//! point scan would produce, which is what keeps CSR-driven union-find
//! bit-identical to the scan-based reference.

use crate::system::RunId;
use crate::view::{ViewId, ViewTable};
use eba_model::{PointId, ProcessorId, Time};

/// Struct-of-arrays view of a generated system's points; see the module
/// docs.
#[derive(Debug)]
pub struct PointStore {
    n: usize,
    times: usize,
    num_points: usize,
    /// Per point: the run it belongs to.
    run_col: Vec<u32>,
    /// Per point: the time it belongs to.
    time_col: Vec<u16>,
    /// Processor-major view columns: `view_cols[p * num_points + point]`.
    view_cols: Vec<ViewId>,
    /// Per processor: CSR offsets into `bucket_items`, indexed by view id
    /// (`len = table.len() + 1`). The bucket of view `v` for processor
    /// `p` is `bucket_items[p][offsets[v] .. offsets[v + 1]]`.
    bucket_offsets: Vec<Vec<u32>>,
    /// Per processor: point indices grouped by the processor's view,
    /// in increasing point order within each bucket.
    bucket_items: Vec<Vec<u32>>,
}

impl PointStore {
    /// Builds the store from a system's point-major view matrix
    /// (`views[point * n + p]`).
    ///
    /// # Panics
    ///
    /// Panics if `views.len()` is not `num_runs × times × n` (an internal
    /// inconsistency of the caller).
    #[must_use]
    pub fn build(
        n: usize,
        times: usize,
        num_runs: usize,
        views: &[ViewId],
        table: &ViewTable,
    ) -> Self {
        let num_points = num_runs * times;
        assert_eq!(
            views.len(),
            num_points * n,
            "view matrix does not match the scenario's dimensions"
        );

        let mut run_col = Vec::with_capacity(num_points);
        let mut time_col = Vec::with_capacity(num_points);
        for run in 0..num_runs {
            for time in 0..times {
                run_col.push(run as u32);
                time_col.push(time as u16);
            }
        }

        // Transpose the point-major matrix into processor-major columns.
        let mut view_cols = Vec::with_capacity(n * num_points);
        for p in 0..n {
            for point in 0..num_points {
                view_cols.push(views[point * n + p]);
            }
        }

        // Counting-sort each processor's points by view id: counts →
        // prefix sums → fill in point order (so buckets preserve the
        // sequential first-encounter order).
        let table_len = table.len();
        let mut bucket_offsets = Vec::with_capacity(n);
        let mut bucket_items = Vec::with_capacity(n);
        for p in 0..n {
            let column = &view_cols[p * num_points..(p + 1) * num_points];
            let mut offsets = vec![0u32; table_len + 1];
            for v in column {
                offsets[v.index() + 1] += 1;
            }
            for i in 1..offsets.len() {
                offsets[i] += offsets[i - 1];
            }
            let mut cursor = offsets.clone();
            let mut items = vec![0u32; num_points];
            for (point, v) in column.iter().enumerate() {
                let slot = cursor[v.index()];
                items[slot as usize] = point as u32;
                cursor[v.index()] += 1;
            }
            bucket_offsets.push(offsets);
            bucket_items.push(items);
        }

        PointStore {
            n,
            times,
            num_points,
            run_col,
            time_col,
            view_cols,
            bucket_offsets,
            bucket_items,
        }
    }

    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of times per run (`horizon + 1`).
    #[must_use]
    pub fn times(&self) -> usize {
        self.times
    }

    /// Number of points.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Approximate resident heap bytes of the store: the run/time
    /// columns, the processor-major view columns, and the CSR bucket
    /// partitions. Counts lengths rather than capacities (the store is
    /// built once and never grows, so the two agree up to allocator
    /// rounding); used by the serve pool's memory-budgeted eviction.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.run_col.len() * size_of::<u32>()
            + self.time_col.len() * size_of::<u16>()
            + self.view_cols.len() * size_of::<ViewId>()
            + self
                .bucket_offsets
                .iter()
                .chain(self.bucket_items.iter())
                .map(|v| v.len() * size_of::<u32>())
                .sum::<usize>()
    }

    /// The dense id of the point `(run, time)`.
    #[must_use]
    pub fn point_id(&self, run: RunId, time: Time) -> PointId {
        PointId::new(run.index() * self.times + time.index())
    }

    /// The run of a point.
    ///
    /// # Panics
    ///
    /// Panics if the point index is out of range.
    #[must_use]
    pub fn run_of(&self, point: usize) -> RunId {
        RunId::new(self.run_col[point] as usize)
    }

    /// The time of a point.
    ///
    /// # Panics
    ///
    /// Panics if the point index is out of range.
    #[must_use]
    pub fn time_of(&self, point: usize) -> Time {
        Time::new(self.time_col[point])
    }

    /// Processor `p`'s view column: entry `point` is `p`'s view at that
    /// point. This is the processor-major transpose of
    /// [`crate::GeneratedSystem::view`].
    #[must_use]
    pub fn column(&self, p: ProcessorId) -> &[ViewId] {
        &self.view_cols[p.index() * self.num_points..(p.index() + 1) * self.num_points]
    }

    /// The CSR bucket partition of processor `p`: `(offsets, items)` with
    /// `offsets` indexed by view id. The points where `p` has view `v`
    /// are `items[offsets[v.index()] .. offsets[v.index() + 1]]`, in
    /// increasing point order.
    #[must_use]
    pub fn buckets(&self, p: ProcessorId) -> (&[u32], &[u32]) {
        (
            &self.bucket_offsets[p.index()],
            &self.bucket_items[p.index()],
        )
    }

    /// The points at which processor `p` has view `v`, in increasing
    /// point order (empty when `v` never occurs for `p`).
    #[must_use]
    pub fn bucket(&self, p: ProcessorId, v: ViewId) -> &[u32] {
        let offsets = &self.bucket_offsets[p.index()];
        let items = &self.bucket_items[p.index()];
        &items[offsets[v.index()] as usize..offsets[v.index() + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneratedSystem;
    use eba_model::{FailureMode, Scenario};

    fn system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    #[test]
    fn columns_agree_with_point_major_views() {
        let system = system();
        let store = system.points();
        assert_eq!(store.num_points(), system.num_points());
        for run in system.run_ids() {
            for time in Time::upto(system.horizon()) {
                let point = store.point_id(run, time).index();
                assert_eq!(store.run_of(point), run);
                assert_eq!(store.time_of(point), time);
                for p in ProcessorId::all(3) {
                    assert_eq!(store.column(p)[point], system.view(run, p, time));
                }
            }
        }
    }

    #[test]
    fn buckets_partition_the_points_in_point_order() {
        let system = system();
        let store = system.points();
        for p in ProcessorId::all(3) {
            let (offsets, items) = store.buckets(p);
            assert_eq!(offsets.len(), system.table().len() + 1);
            assert_eq!(items.len(), store.num_points());
            // Every point appears exactly once, under its own view's
            // bucket, and buckets are internally sorted.
            let mut seen = vec![false; store.num_points()];
            for v in system.table().ids() {
                let bucket = store.bucket(p, v);
                assert!(bucket.windows(2).all(|w| w[0] < w[1]));
                for &point in bucket {
                    assert!(!seen[point as usize]);
                    seen[point as usize] = true;
                    assert_eq!(store.column(p)[point as usize], v);
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }
}
