//! Differential proof of schedule-independence for the work-stealing
//! engine (DESIGN.md §4j): every supervised stage must produce output
//! **bit-identical** to its sequential execution at any worker count —
//! the deque scheduler may move items between threads freely, but items
//! are pure functions of their index and faults key on the item index,
//! so nothing observable may depend on who ran what.
//!
//! Covers the cold exhaustive build, the horizon-sweep `extend` /
//! `extend_pinned` paths, seeded chaos campaigns (absorbed-fault sets
//! included), budget-partial prefixes, and a straggler workload where a
//! static round-robin split would serialize behind one slow item.

use eba_model::{FailureMode, ProcessorId, RunBudget, Scenario, ScenarioSpace, Time};
use eba_protocols::runner::{run_exhaustive_supervised, CampaignReport};
use eba_protocols::Relay;
use eba_sim::chaos::{supervised_indexed, ChaosPlan, FaultInjector, FaultKind, FaultSite};
use eba_sim::{BuildOutcome, GeneratedSystem, SystemBuilder};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Id-exact equality: run records, view table size, and the `ViewId` at
/// every `(run, processor, time)` slot. Stronger than the render-based
/// equivalence used for warm-vs-cold comparisons — across worker counts
/// the engine promises identical interning, not just identical content.
fn assert_identical(a: &GeneratedSystem, b: &GeneratedSystem, what: &str) {
    assert_eq!(a.num_runs(), b.num_runs(), "{what}: run count");
    assert_eq!(a.table().len(), b.table().len(), "{what}: view table size");
    let n = a.n();
    for r in a.run_ids() {
        assert_eq!(a.run(r).config, b.run(r).config, "{what}: config of {r:?}");
        assert_eq!(
            a.run(r).pattern,
            b.run(r).pattern,
            "{what}: pattern of {r:?}"
        );
        for p in ProcessorId::all(n) {
            for time in 0..=a.horizon().index() {
                let t = Time::new(time as u16);
                assert_eq!(
                    a.view(r, p, t),
                    b.view(r, p, t),
                    "{what}: view id at {r:?}, {p}, {t}"
                );
            }
        }
    }
}

/// The straggler regression: one item takes ~50ms while 63 others are
/// instant. A static round-robin split pins a quarter of the items
/// behind the straggler's thread; work stealing drains them elsewhere.
/// Results must be bit-identical to sequential at every worker count,
/// and on a multi-core host the parallel wall time must beat the serial
/// sum of sleeps.
#[test]
fn straggler_workload_is_bit_identical_and_not_serialized() {
    const ITEMS: usize = 64;
    let job = |i: usize| {
        if i == 0 {
            std::thread::sleep(Duration::from_millis(50));
        } else {
            std::thread::sleep(Duration::from_millis(1));
        }
        (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
    };
    let (sequential, faults) = supervised_indexed(ITEMS, 1, FaultSite::CampaignShard, job).unwrap();
    assert!(faults.is_empty());

    for workers in [2, 4, 8] {
        let started = Instant::now();
        let (parallel, faults) =
            supervised_indexed(ITEMS, workers, FaultSite::CampaignShard, job).unwrap();
        let elapsed = started.elapsed();
        assert!(faults.is_empty(), "{workers} workers");
        assert_eq!(sequential, parallel, "{workers} workers");
        // The serial sum is 50ms + 63×1ms ≈ 113ms. Only assert the
        // speedup where the host can actually run two threads at once —
        // on a single-core container the scheduler interleaves but
        // cannot overlap the sleeps.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        if cores > 1 {
            assert!(
                elapsed < Duration::from_millis(113),
                "{workers} workers: stragglers must not serialize the pool \
                 (took {elapsed:?})"
            );
        }
    }
}

/// The cold exhaustive build is id-exact across worker counts: the
/// shard merge happens in shard order regardless of which thread built
/// which shard.
#[test]
fn exhaustive_build_is_identical_at_every_worker_count() {
    for scenario in [
        Scenario::new(3, 1, FailureMode::Omission, 2).unwrap(),
        Scenario::new(3, 2, FailureMode::Crash, 3).unwrap(),
    ] {
        let baseline = SystemBuilder::new(&scenario)
            .threads(1)
            .shards(8)
            .build()
            .unwrap();
        for workers in WORKER_COUNTS {
            let system = SystemBuilder::new(&scenario)
                .threads(workers)
                .shards(8)
                .build()
                .unwrap();
            assert_identical(&baseline, &system, &format!("build @{workers}"));
        }
    }
}

/// A horizon sweep (1 → 2 → 3) through `extend` is id-exact across
/// worker counts: each block's table is the base table plus the block's
/// new views in enumeration order, and the block-order absorb merge
/// re-interns them exactly where a sequential extension would.
#[test]
fn horizon_sweep_extend_is_identical_at_every_worker_count() {
    let base_scenario = Scenario::new(3, 1, FailureMode::Omission, 1).unwrap();
    let base = SystemBuilder::new(&base_scenario)
        .threads(1)
        .build()
        .unwrap();

    let mut baseline = None;
    for workers in WORKER_COUNTS {
        let mut system = base.clone();
        for horizon in [2u16, 3] {
            let target = Scenario::new(3, 1, FailureMode::Omission, horizon).unwrap();
            let (extended, report) = SystemBuilder::new(&target)
                .threads(workers)
                .extend(&system)
                .unwrap();
            assert!(report.reused_runs > 0, "@{workers} h={horizon}");
            system = extended;
        }
        match &baseline {
            None => baseline = Some(system),
            Some(first) => assert_identical(first, &system, &format!("extend @{workers}")),
        }
    }

    // And the sweep agrees with a cold build of the final horizon on
    // every observable (content; `ViewId` numbering may legitimately
    // differ from a cold table, which is what the incremental oracle in
    // `incremental_equivalence.rs` checks exhaustively).
    let cold = SystemBuilder::new(&Scenario::new(3, 1, FailureMode::Omission, 3).unwrap())
        .threads(1)
        .build()
        .unwrap();
    let swept = baseline.unwrap();
    assert_eq!(swept.num_runs(), cold.num_runs());
    assert_eq!(swept.table().len(), cold.table().len());
}

/// `extend_pinned` over a sampled base is id-exact across worker
/// counts: base-run blocks merge in block order with the same absorb
/// argument as `extend`.
#[test]
fn pinned_extension_is_identical_at_every_worker_count() {
    let base_scenario = Scenario::new(4, 2, FailureMode::Crash, 1).unwrap();
    let base = GeneratedSystem::sampled(&base_scenario, 60, 0xEBA);
    let target = Scenario::new(4, 2, FailureMode::Crash, 3).unwrap();

    let mut baseline = None;
    for workers in WORKER_COUNTS {
        let (system, report) = SystemBuilder::new(&target)
            .threads(workers)
            .extend_pinned(&base)
            .unwrap();
        assert_eq!(report.fresh_runs, 0, "@{workers}");
        assert_eq!(system.num_runs(), base.num_runs(), "@{workers}");
        match &baseline {
            None => baseline = Some(system),
            Some(first) => {
                assert_identical(first, &system, &format!("extend_pinned @{workers}"));
            }
        }
    }
}

/// A seeded chaos campaign reports byte-identical aggregates at every
/// worker count: faults key on the item index, so the same shards are
/// disturbed no matter which thread picks them up (workers = 1 runs the
/// undisturbed sequential path, which the recovered reports must match).
#[test]
fn seeded_chaos_campaign_reports_are_identical_at_every_worker_count() {
    let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
    let assert_reports_equal = |a: &CampaignReport, b: &CampaignReport, what: &str| {
        assert_eq!(a.runs, b.runs, "{what}: runs");
        assert_eq!(a.stats.histogram(), b.stats.histogram(), "{what}: stats");
        assert_eq!(
            a.agreement_violations, b.agreement_violations,
            "{what}: agreement"
        );
        assert_eq!(
            a.validity_violations, b.validity_violations,
            "{what}: validity"
        );
        assert_eq!(
            a.decision_violations, b.decision_violations,
            "{what}: decision"
        );
        assert_eq!(
            a.non_simultaneous, b.non_simultaneous,
            "{what}: simultaneity"
        );
        assert_eq!(
            a.messages_delivered, b.messages_delivered,
            "{what}: messages"
        );
    };

    let mut baseline: Option<CampaignReport> = None;
    for workers in WORKER_COUNTS {
        let plan = Arc::new(ChaosPlan::seeded(0xEBA, &[FaultSite::CampaignShard], 16, 4));
        let chaos: Arc<dyn FaultInjector> = Arc::clone(&plan) as _;
        let report = run_exhaustive_supervised(&Relay::p0(1), &scenario, workers, &chaos).unwrap();
        match &baseline {
            None => baseline = Some(report),
            Some(first) => assert_reports_equal(first, &report, &format!("campaign @{workers}")),
        }
    }
}

/// Injected builder panics leave the system id-exact and the absorbed
/// `WorkerFault` set identical at every worker count: supervision
/// records faults by item index in `settle`'s index-order pass, so the
/// fault log is as schedule-independent as the results.
#[test]
fn chaos_disturbed_builds_agree_on_faults_and_system_at_every_worker_count() {
    let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
    let make_plan = || {
        ChaosPlan::new()
            .with_fault(FaultSite::BuilderShard, 0, FaultKind::Panic)
            .with_fault(FaultSite::BuilderShard, 3, FaultKind::Panic)
            .with_fault(FaultSite::BuilderShard, 7, FaultKind::Panic)
            .with_fault(
                FaultSite::BuilderShard,
                5,
                FaultKind::Delay(Duration::from_millis(5)),
            )
    };

    let mut baseline: Option<(GeneratedSystem, Vec<_>)> = None;
    for workers in WORKER_COUNTS {
        let plan = Arc::new(make_plan());
        let outcome = SystemBuilder::new(&scenario)
            .threads(workers)
            .shards(8)
            .chaos(Arc::clone(&plan) as Arc<dyn FaultInjector>)
            .build_governed()
            .unwrap();
        assert_eq!(plan.fired(), 4, "@{workers}: all planned faults fire");
        let faults = outcome.report().worker_faults.clone();
        let system = outcome.into_system();
        match &baseline {
            None => baseline = Some((system, faults)),
            Some((first, first_faults)) => {
                assert_identical(first, &system, &format!("chaos build @{workers}"));
                assert_eq!(first_faults, &faults, "@{workers}: absorbed fault log");
            }
        }
    }
}

/// A run-bound budget stops at the same statically planned shard prefix
/// at every worker count, and the partial systems are id-exact: the
/// bound is planned before any work happens, so timing and stealing
/// cannot move it.
#[test]
fn budget_partial_prefix_is_identical_at_every_worker_count() {
    let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
    let space = ScenarioSpace::new(scenario);
    let shards = space.shards(8);
    let num_configs = space.num_configs();
    let first_three: u64 = shards[..3]
        .iter()
        .map(|s| u64::try_from(s.len() * num_configs).unwrap())
        .sum();

    let mut baseline: Option<GeneratedSystem> = None;
    for workers in WORKER_COUNTS {
        let outcome = SystemBuilder::new(&scenario)
            .threads(workers)
            .shards(8)
            .budget(RunBudget::unlimited().with_max_runs(first_three))
            .build_governed()
            .unwrap();
        match outcome {
            BuildOutcome::Partial {
                system,
                completed_shards,
                ..
            } => {
                assert_eq!(completed_shards, 3, "@{workers}");
                assert_eq!(system.num_runs() as u64, first_three, "@{workers}");
                match &baseline {
                    None => baseline = Some(system),
                    Some(first) => {
                        assert_identical(first, &system, &format!("partial @{workers}"));
                    }
                }
            }
            BuildOutcome::Complete { .. } => panic!("@{workers}: budget should bite"),
        }
    }
}
