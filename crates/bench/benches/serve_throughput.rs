//! Throughput and latency of the `eba-serve` daemon (DESIGN.md §4h).
//!
//! An in-process [`eba_serve::Server`] answers a mixed
//! crash/omission/general-omission workload from concurrent TCP clients.
//! Two regimes are measured:
//!
//! * **warm** — every scenario already pooled, so a query costs one
//!   protocol round-trip plus a cache-wired evaluation; this is the
//!   daemon's raison d'être (the cold engine pays a full system build
//!   per query);
//! * **cold** — the pool is evicted before every query, forcing a
//!   rebuild each time; the gap between the regimes is the session
//!   pool's contribution.
//!
//! Custom harness (not criterion): concurrency and tail latency are the
//! point, so the bench reports aggregate qps and p50/p95/p99 per-query
//! latency over all clients rather than a single-threaded median.

use eba_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::thread;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const ROUNDS: usize = 25;

/// The mixed workload: three failure modes, a budgeted partial, a
/// sampled scenario, and a control ping.
const WORKLOAD: &[&str] = &[
    r#"{"op":"check","formula":"CC(E0) -> C(E0)"}"#,
    r#"{"op":"check","formula":"C(E0) -> CC(E0)"}"#,
    r#"{"op":"check","formula":"B_1(E0) -> (N(1) -> E0)","mode":"omission","horizon":2}"#,
    r#"{"op":"check","formula":"K_1(E0) -> E0","mode":"general-omission","horizon":2}"#,
    r#"{"op":"check","formula":"true","mode":"omission","horizon":2,"shards":64,"max_runs":50}"#,
    r#"{"op":"check","formula":"CC(E0)","sampled":[20,7]}"#,
    r#"{"op":"ping"}"#,
];

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn ask(&mut self, line: &str) -> String {
        let mut frame = Vec::with_capacity(line.len() + 1);
        frame.extend_from_slice(line.as_bytes());
        frame.push(b'\n');
        self.writer.write_all(&frame).expect("send");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("recv");
        response
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs `CLIENTS` concurrent clients through `ROUNDS` rotations of the
/// workload, returning (elapsed, per-query latencies).
fn drive(addr: SocketAddr, evict_each_query: bool) -> (Duration, Vec<Duration>) {
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut latencies = Vec::with_capacity(ROUNDS * WORKLOAD.len());
                for round in 0..ROUNDS {
                    for (j, _) in WORKLOAD.iter().enumerate() {
                        let line = WORKLOAD[(i + j + round) % WORKLOAD.len()];
                        if evict_each_query {
                            client.ask(r#"{"op":"evict"}"#);
                        }
                        let sent = Instant::now();
                        let response = client.ask(line);
                        latencies.push(sent.elapsed());
                        assert!(
                            response.contains("\"ok\":"),
                            "malformed response: {response}"
                        );
                    }
                }
                latencies
            })
        })
        .collect();
    let mut all = Vec::new();
    for handle in handles {
        all.extend(handle.join().expect("client thread"));
    }
    (started.elapsed(), all)
}

fn report(regime: &str, elapsed: Duration, mut latencies: Vec<Duration>) {
    latencies.sort_unstable();
    let queries = latencies.len();
    let qps = queries as f64 / elapsed.as_secs_f64();
    println!(
        "serve_throughput/{regime}: {queries} queries over {CLIENTS} clients in {:.2}s \
         = {qps:.0} qps; latency p50 {:?} p95 {:?} p99 {:?}",
        elapsed.as_secs_f64(),
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
}

fn main() {
    let server = Server::bind(ServeConfig::default()).expect("bind loopback");
    let addr = server.local_addr().expect("addr");
    let drain = server.drain_flag();
    let runner = thread::spawn(move || server.run());

    // Warm the pool: one pass over every workload line.
    let mut warmer = Client::connect(addr);
    for line in WORKLOAD {
        warmer.ask(line);
    }

    let (elapsed, latencies) = drive(addr, false);
    report("warm", elapsed, latencies);

    let (elapsed, latencies) = drive(addr, true);
    report("cold_evict_per_query", elapsed, latencies);

    drain.store(true, Ordering::Relaxed);
    let snapshot = runner.join().expect("server thread");
    println!(
        "serve_throughput/pool: hits={} misses={} evictions={} retries={}",
        snapshot.pool.hits, snapshot.pool.misses, snapshot.pool.evictions, snapshot.pool.retries,
    );
}
