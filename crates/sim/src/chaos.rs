//! Fault injection, worker supervision, and adversarial schedules.
//!
//! The paper is a theory of computing *under failures*; this module makes
//! the engine that reproduces it survive its own. It has three parts:
//!
//! 1. **Fault injection** — a [`FaultInjector`] is threaded through the
//!    parallel stages of the engine (the [`SystemBuilder`] shard workers,
//!    the `eba-kripke` reachability workers, the campaign runners) and is
//!    consulted once per work item. [`ChaosPlan`] injects deterministic
//!    engine faults — a worker panic in shard `k`, a synthetic capacity
//!    exhaustion, an artificial delay — from an explicit or seeded plan,
//!    so every degradation path is testable. [`NoChaos`] is the free
//!    default.
//!
//! 2. **Supervision** — [`supervised_indexed`] is the worker pool used by
//!    those stages: every work item runs under `catch_unwind`, a panicked
//!    item is retried once on a fresh thread and then falls back to
//!    sequential execution on the supervising thread, and only a fault
//!    that defeats all three attempts surfaces — as a typed
//!    [`EngineFault`], never as a poisoned `join().expect(...)`. Work
//!    items are pure functions of their index, so a recovered run is
//!    bit-identical to an undisturbed one.
//!
//! 3. **Adversarial schedules** — [`AdversarySchedule`] generates
//!    worst-case failure patterns (latest-possible crashes, crash chains,
//!    asymmetric omission sets) as a first-class run-set input alongside
//!    exhaustive enumeration and seeded sampling, for scenarios too large
//!    to enumerate but whose hardest corners are known.
//!
//! See DESIGN.md §4c for the supervision policy and the budget semantics
//! that complement it ([`eba_model::RunBudget`]).
//!
//! [`SystemBuilder`]: crate::SystemBuilder

use crate::sched;
use crate::system::GeneratedSystem;
use eba_model::{
    enumerate, sample, FailureMode, FailurePattern, FaultyBehavior, InitialConfig, ModelError,
    ProcSet, ProcessorId, Round, Scenario,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// A parallel stage of the engine at which faults can be injected and
/// workers are supervised.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultSite {
    /// A [`SystemBuilder`](crate::SystemBuilder) shard worker; the item
    /// index is the shard index.
    BuilderShard,
    /// An `eba-kripke` reachability edge-collection worker; the item index
    /// is the processor index.
    ReachabilityWorker,
    /// An `eba-protocols` exhaustive-campaign worker; the item index is
    /// the shard index.
    CampaignShard,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::BuilderShard => write!(f, "builder shard"),
            FaultSite::ReachabilityWorker => write!(f, "reachability worker"),
            FaultSite::CampaignShard => write!(f, "campaign shard"),
        }
    }
}

/// The kind of engine fault a [`ChaosPlan`] injects at a site.
#[derive(Clone, Copy, Debug)]
pub enum FaultKind {
    /// The worker panics (exercises `catch_unwind` supervision).
    Panic,
    /// The worker reports a synthetic [`ModelError::CapacityExceeded`]
    /// (exercises typed-error propagation out of a pool).
    CapacityExhaustion,
    /// The worker stalls for the given duration (exercises deadline
    /// budgets and load-balance under slow shards).
    Delay(Duration),
}

/// Deterministic injection of engine faults into supervised stages.
///
/// Implementations are consulted once per work item (`site`, `index`)
/// and may panic, sleep, or return a synthetic error; returning `Ok(())`
/// leaves the item undisturbed. Production code uses [`NoChaos`].
pub trait FaultInjector: Send + Sync {
    /// Called by a worker before processing item `index` of `site`.
    ///
    /// # Errors
    ///
    /// Returns a synthetic [`ModelError`] when the plan injects a
    /// capacity-exhaustion fault here.
    fn inject(&self, site: FaultSite, index: usize) -> Result<(), ModelError>;
}

/// The default injector: never injects anything.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoChaos;

impl FaultInjector for NoChaos {
    fn inject(&self, _site: FaultSite, _index: usize) -> Result<(), ModelError> {
        Ok(())
    }
}

/// One planned fault: fires at (`site`, `index`) up to `fires` times.
#[derive(Debug)]
struct PlannedFault {
    site: FaultSite,
    index: usize,
    kind: FaultKind,
    fires: u32,
    remaining: AtomicU32,
}

/// A deterministic, seedable plan of engine faults; see the module docs.
///
/// Each fault fires a bounded number of times (default once), so the
/// supervisor's retry succeeds and degradation paths — not just failure
/// paths — are exercised. A recurring fault (see
/// [`ChaosPlan::with_recurring_fault`]) can defeat the retry and the
/// sequential fallback too, driving the engine into its terminal
/// [`EngineFault`].
///
/// # Example
///
/// ```
/// use eba_sim::chaos::{ChaosPlan, FaultInjector, FaultKind, FaultSite};
///
/// let plan = ChaosPlan::new().with_fault(FaultSite::BuilderShard, 0, FaultKind::Panic);
/// // The first visit to shard 0 panics; the retry goes through.
/// assert!(std::panic::catch_unwind(|| plan.inject(FaultSite::BuilderShard, 0)).is_err());
/// assert!(plan.inject(FaultSite::BuilderShard, 0).is_ok());
/// assert_eq!(plan.fired(), 1);
/// ```
#[derive(Default, Debug)]
pub struct ChaosPlan {
    faults: Vec<PlannedFault>,
}

impl ChaosPlan {
    /// An empty plan (equivalent to [`NoChaos`]).
    #[must_use]
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Adds a fault that fires exactly once at (`site`, `index`).
    #[must_use]
    pub fn with_fault(self, site: FaultSite, index: usize, kind: FaultKind) -> Self {
        self.with_recurring_fault(site, index, kind, 1)
    }

    /// Adds a fault that fires on the first `fires` visits to
    /// (`site`, `index`). With `fires >= 3` a panic fault defeats the
    /// initial attempt, the retry, *and* the sequential fallback.
    #[must_use]
    pub fn with_recurring_fault(
        mut self,
        site: FaultSite,
        index: usize,
        kind: FaultKind,
        fires: u32,
    ) -> Self {
        self.faults.push(PlannedFault {
            site,
            index,
            kind,
            fires,
            remaining: AtomicU32::new(fires),
        });
        self
    }

    /// A seeded plan of `faults` random faults across the given sites and
    /// item indices `0..max_index`. The same seed always yields the same
    /// plan, so chaos campaigns are reproducible.
    #[must_use]
    pub fn seeded(seed: u64, sites: &[FaultSite], max_index: usize, faults: usize) -> Self {
        assert!(
            !sites.is_empty(),
            "seeded chaos plan needs at least one site"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = ChaosPlan::new();
        for _ in 0..faults {
            let site = sites[rng.gen_range(0..sites.len())];
            let index = rng.gen_range(0..max_index.max(1));
            let kind = match rng.gen_range(0..4u32) {
                0 | 1 => FaultKind::Panic,
                2 => FaultKind::CapacityExhaustion,
                _ => FaultKind::Delay(Duration::from_millis(rng.gen_range(1..5u64))),
            };
            plan = plan.with_fault(site, index, kind);
        }
        plan
    }

    /// How many planned faults have fired so far.
    #[must_use]
    pub fn fired(&self) -> u32 {
        self.faults
            .iter()
            .map(|f| f.fires - f.remaining.load(Ordering::Relaxed))
            .sum()
    }
}

impl FaultInjector for ChaosPlan {
    fn inject(&self, site: FaultSite, index: usize) -> Result<(), ModelError> {
        for fault in &self.faults {
            if fault.site != site || fault.index != index {
                continue;
            }
            // Claim one firing; another thread may have used the last one.
            let claimed = fault
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
                .is_ok();
            if !claimed {
                continue;
            }
            match fault.kind {
                FaultKind::Panic => {
                    panic!("chaos: injected panic at {site} #{index}")
                }
                FaultKind::CapacityExhaustion => {
                    return Err(ModelError::capacity_exceeded("chaos-injected capacity", 0));
                }
                FaultKind::Delay(duration) => thread::sleep(duration),
            }
        }
        Ok(())
    }
}

/// A worker fault the supervisor absorbed: the stage still completed, and
/// this record says what it survived.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkerFault {
    /// The stage the fault occurred in.
    pub site: FaultSite,
    /// The index of the work item whose worker panicked.
    pub index: usize,
    /// How many attempts panicked before one succeeded (1 = the retry
    /// succeeded, 2 = only the sequential fallback did).
    pub attempts: u32,
    /// The panic payload of the first failed attempt, as text.
    pub message: String,
}

impl fmt::Display for WorkerFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} #{} panicked {} time(s) before recovery: {}",
            self.site, self.index, self.attempts, self.message
        )
    }
}

/// A typed engine failure: what a supervised stage returns instead of
/// aborting the process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineFault {
    /// A work item panicked on the initial attempt, the retry, *and* the
    /// sequential fallback — the computation itself is broken (or a chaos
    /// plan was configured to defeat supervision).
    WorkerPanicked {
        /// The stage the worker belonged to.
        site: FaultSite,
        /// The index of the work item.
        index: usize,
        /// The final panic payload, as text.
        message: String,
    },
    /// A model-level error (invalid input, or a real or injected capacity
    /// overflow) propagated out of a stage.
    Model(ModelError),
}

impl fmt::Display for EngineFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineFault::WorkerPanicked {
                site,
                index,
                message,
            } => write!(
                f,
                "{site} #{index} panicked on every attempt (initial, retry, sequential): {message}"
            ),
            EngineFault::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineFault {}

impl From<ModelError> for EngineFault {
    fn from(e: ModelError) -> Self {
        EngineFault::Model(e)
    }
}

/// Renders a panic payload as text (panics carry `&str` or `String`
/// payloads in practice).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `job(i)` once per attempt on a fresh, isolated thread.
fn attempt_on_fresh_thread<T, F>(job: &F, index: usize) -> Result<T, String>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    thread::scope(|scope| {
        let handle = scope.spawn(move || catch_unwind(AssertUnwindSafe(|| job(index))));
        match handle.join() {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(payload)) => Err(panic_message(payload.as_ref())),
            Err(payload) => Err(panic_message(payload.as_ref())),
        }
    })
}

/// The supervised worker pool behind every parallel stage of the engine.
///
/// Computes `job(0..count)` on up to `workers` threads under a
/// work-stealing scheduler ([`crate::sched`]): the item index space is
/// chunked onto a shared injector, each worker drains its own deque from
/// the front, and idle workers steal half of a victim's deque from the
/// back. Which thread runs an item is therefore *not* part of the
/// contract — the contract is **item-indexed determinism under any
/// schedule**: items must be pure functions of their index (every stage
/// in this workspace satisfies that), results are scattered into
/// index-keyed slots, and fault injection keys on the item index, so any
/// schedule produces output identical to the sequential one.
///
/// Each item runs under `catch_unwind`; a panicked item is retried once
/// on a fresh thread, then falls back to sequential execution on the
/// calling thread.
///
/// Returns the results in item order together with the [`WorkerFault`]s
/// that were absorbed along the way.
///
/// With `workers <= 1` (or a single item) the job runs sequentially on
/// the calling thread, but still under supervision: panicked items go
/// through the same retry ladder as in the parallel case. A daemon on a
/// single-core host keeps the same fault-isolation guarantees as one on
/// a many-core host.
///
/// # Example
///
/// The worker count never changes the output:
///
/// ```
/// use eba_sim::chaos::{supervised_indexed, FaultSite};
///
/// let job = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
/// let (sequential, _) =
///     supervised_indexed(64, 1, FaultSite::CampaignShard, job).unwrap();
/// let (stolen, _) =
///     supervised_indexed(64, 4, FaultSite::CampaignShard, job).unwrap();
/// assert_eq!(sequential, stolen);
/// ```
///
/// # Errors
///
/// Returns [`EngineFault::WorkerPanicked`] only when an item panicked on
/// all three attempts.
pub fn supervised_indexed<T, F>(
    count: usize,
    workers: usize,
    site: FaultSite,
    job: F,
) -> Result<(Vec<T>, Vec<WorkerFault>), EngineFault>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(count).max(1);
    let mut slots: Vec<Option<Result<T, String>>> = Vec::new();
    slots.resize_with(count, || None);
    if workers <= 1 || count <= 1 {
        for (index, slot) in slots.iter_mut().enumerate() {
            let outcome = catch_unwind(AssertUnwindSafe(|| job(index)))
                .map_err(|payload| panic_message(payload.as_ref()));
            *slot = Some(outcome);
        }
        return settle(slots, site, &job);
    }
    let queues = sched::WorkQueues::new(count, workers);
    thread::scope(|scope| {
        let job = &job;
        let queues = &queues;
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                scope.spawn(move || {
                    let started = Instant::now();
                    let mut items = Vec::new();
                    while let Some(index) = queues.next(worker) {
                        let outcome = catch_unwind(AssertUnwindSafe(|| job(index)))
                            .map_err(|payload| panic_message(payload.as_ref()));
                        items.push((index, outcome));
                    }
                    (items, started.elapsed())
                })
            })
            .collect();
        let mut per_worker = vec![0usize; workers];
        let mut spans = vec![Duration::ZERO; workers];
        for (worker, handle) in handles.into_iter().enumerate() {
            // Panics inside items are caught above, so a worker thread
            // itself dying is out-of-band (e.g. a panic while dropping a
            // caught payload); its unreported items go through the retry
            // path below like any other failed item.
            if let Ok((items, span)) = handle.join() {
                per_worker[worker] = items.len();
                spans[worker] = span;
                for (index, outcome) in items {
                    slots[index] = Some(outcome);
                }
            }
        }
        sched::record_run(&per_worker, &spans, queues.steals());
    });
    settle(slots, site, &job)
}

/// The shared retry ladder: resolve every failed or unreported slot with
/// one bounded retry on a fresh thread, then a final sequential attempt
/// on the calling thread; only an item that defeats all three attempts
/// surfaces as [`EngineFault::WorkerPanicked`].
fn settle<T, F>(
    slots: Vec<Option<Result<T, String>>>,
    site: FaultSite,
    job: &F,
) -> Result<(Vec<T>, Vec<WorkerFault>), EngineFault>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut results: Vec<T> = Vec::with_capacity(slots.len());
    let mut faults = Vec::new();
    for (index, slot) in slots.into_iter().enumerate() {
        let first_message = match slot {
            Some(Ok(value)) => {
                results.push(value);
                continue;
            }
            Some(Err(message)) => message,
            None => "worker thread died before reporting".to_owned(),
        };
        // One bounded retry on a fresh, isolated thread …
        match attempt_on_fresh_thread(job, index) {
            Ok(value) => {
                faults.push(WorkerFault {
                    site,
                    index,
                    attempts: 1,
                    message: first_message,
                });
                results.push(value);
            }
            // … then graceful fallback to sequential execution here.
            Err(_) => match catch_unwind(AssertUnwindSafe(|| job(index))) {
                Ok(value) => {
                    faults.push(WorkerFault {
                        site,
                        index,
                        attempts: 2,
                        message: first_message,
                    });
                    results.push(value);
                }
                Err(payload) => {
                    return Err(EngineFault::WorkerPanicked {
                        site,
                        index,
                        message: panic_message(payload.as_ref()),
                    });
                }
            },
        }
    }
    Ok((results, faults))
}

/// A generator of worst-case failure patterns: the adversary's opening
/// book, usable as a first-class run-set input alongside exhaustive
/// enumeration ([`eba_model::enumerate::patterns`]) and seeded sampling.
///
/// Exhaustive systems grow exponentially; when a scenario is too large to
/// enumerate, the schedules here cover the structurally hardest corners —
/// crashes as late as possible, information chains, asymmetric omission
/// sets — which drive the lower-bound arguments of the paper and its
/// successors.
///
/// # Example
///
/// ```
/// use eba_model::{FailureMode, Scenario};
/// use eba_sim::chaos::AdversarySchedule;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(4, 2, FailureMode::Crash, 3)?;
/// let adversary = AdversarySchedule::new(&scenario);
/// let system = adversary.system();
/// assert!(system.num_runs() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AdversarySchedule {
    scenario: Scenario,
}

impl AdversarySchedule {
    /// An adversary for the given scenario.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        AdversarySchedule {
            scenario: *scenario,
        }
    }

    /// The underlying scenario.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Latest-possible crashes (crash mode only; empty otherwise): for
    /// every nonempty faulty set, (a) all members crash silently in the
    /// final round, and (b) all members crash in the final round
    /// delivering only to the lowest nonfaulty processor — the maximally
    /// asymmetric late crash.
    #[must_use]
    pub fn latest_crashes(&self) -> Vec<FailurePattern> {
        if self.scenario.mode() != FailureMode::Crash {
            return Vec::new();
        }
        let n = self.scenario.n();
        let last = Round::new(self.scenario.horizon().ticks());
        let mut out = Vec::new();
        for set in self.nonempty_faulty_sets() {
            let victim = lowest_outside(set, n);
            for receivers in [ProcSet::empty(), ProcSet::singleton(victim)] {
                let mut pattern = FailurePattern::failure_free(n);
                for member in set.iter() {
                    pattern.set_behavior(
                        member,
                        FaultyBehavior::Crash {
                            round: last,
                            receivers,
                        },
                    );
                }
                debug_assert!(self.scenario.validate_pattern(&pattern).is_ok());
                out.push(pattern);
            }
        }
        out
    }

    /// Crash chains (crash mode only; empty otherwise): for every nonempty
    /// faulty set, member `k` (in id order) crashes in round `k + 1`
    /// delivering only to member `k + 1` — the last member delivers only
    /// to the lowest nonfaulty processor. This is the adversary behind the
    /// `t + 1`-round lower bound: information about the failure trickles
    /// one hop per round.
    #[must_use]
    pub fn crash_chains(&self) -> Vec<FailurePattern> {
        if self.scenario.mode() != FailureMode::Crash {
            return Vec::new();
        }
        let n = self.scenario.n();
        let horizon = self.scenario.horizon().ticks();
        let mut out = Vec::new();
        for set in self.nonempty_faulty_sets() {
            let members: Vec<ProcessorId> = set.iter().collect();
            let mut pattern = FailurePattern::failure_free(n);
            for (k, &member) in members.iter().enumerate() {
                let round = Round::new((k as u16 + 1).min(horizon));
                let receiver = members
                    .get(k + 1)
                    .copied()
                    .unwrap_or_else(|| lowest_outside(set, n));
                pattern.set_behavior(
                    member,
                    FaultyBehavior::Crash {
                        round,
                        receivers: ProcSet::singleton(receiver),
                    },
                );
            }
            debug_assert!(self.scenario.validate_pattern(&pattern).is_ok());
            out.push(pattern);
        }
        out
    }

    /// Wraps per-round send-omission sets in the scenario mode's
    /// **canonical** behavior encoding: `Omission` under sending
    /// omissions, `GeneralOmission` with an all-empty receive vector
    /// under general omissions. Using the canonical encoding keeps
    /// worst-case patterns `find_run`-compatible with exhaustively
    /// enumerated systems (the enumerators never emit an `Omission`
    /// behavior in general-omission mode).
    fn send_omission_behavior(&self, omissions: Vec<ProcSet>) -> FaultyBehavior {
        match self.scenario.mode() {
            FailureMode::GeneralOmission => FaultyBehavior::GeneralOmission {
                receive: vec![ProcSet::empty(); omissions.len()],
                send: omissions,
            },
            _ => FaultyBehavior::Omission { omissions },
        }
    }

    /// Asymmetric omission sets (omission modes only; empty otherwise):
    /// for every nonempty faulty set, (a) all members omit to the lowest
    /// nonfaulty processor in every round — one processor is starved of
    /// all faulty input — and (b) all members omit to the even-indexed
    /// non-members in every round, splitting the nonfaulty processors
    /// into two informational halves. Behaviors use the mode's canonical
    /// encoding (see [`AdversarySchedule::deaf_receivers`] for the
    /// receive-side plays general omission adds).
    #[must_use]
    pub fn asymmetric_omissions(&self) -> Vec<FailurePattern> {
        if self.scenario.mode() == FailureMode::Crash {
            return Vec::new();
        }
        let n = self.scenario.n();
        let rounds = self.scenario.horizon().index();
        let mut out = Vec::new();
        for set in self.nonempty_faulty_sets() {
            let starved = ProcSet::singleton(lowest_outside(set, n));
            let evens: ProcSet = ProcessorId::all(n)
                .filter(|p| !set.contains(*p) && p.index() % 2 == 0)
                .collect();
            for omitted in [starved, evens] {
                if omitted.is_empty() {
                    continue;
                }
                let mut pattern = FailurePattern::failure_free(n);
                for member in set.iter() {
                    pattern.set_behavior(
                        member,
                        self.send_omission_behavior(vec![
                            omitted - ProcSet::singleton(member);
                            rounds
                        ]),
                    );
                }
                debug_assert!(self.scenario.validate_pattern(&pattern).is_ok());
                out.push(pattern);
            }
        }
        out
    }

    /// Receive-side starvation (general omission only; empty otherwise):
    /// for every nonempty faulty set, (a) every member is *deaf* — it
    /// receives no message from anyone in any round, the receive-side
    /// dual of silence — and (b) every member refuses exactly the
    /// messages of the lowest nonfaulty processor, so one correct
    /// processor's information never enters the faulty set. These plays
    /// only exist under general omission, where the adversary controls
    /// reception; they are the schedules the sending-omission worst case
    /// can never exercise.
    #[must_use]
    pub fn deaf_receivers(&self) -> Vec<FailurePattern> {
        if self.scenario.mode() != FailureMode::GeneralOmission {
            return Vec::new();
        }
        let n = self.scenario.n();
        let rounds = self.scenario.horizon().index();
        let mut out = Vec::new();
        for set in self.nonempty_faulty_sets() {
            let victim = ProcSet::singleton(lowest_outside(set, n));
            for refused in [ProcSet::full(n), victim] {
                let mut pattern = FailurePattern::failure_free(n);
                for member in set.iter() {
                    pattern.set_behavior(
                        member,
                        FaultyBehavior::GeneralOmission {
                            send: vec![ProcSet::empty(); rounds],
                            receive: vec![refused - ProcSet::singleton(member); rounds],
                        },
                    );
                }
                debug_assert!(self.scenario.validate_pattern(&pattern).is_ok());
                out.push(pattern);
            }
        }
        out
    }

    /// `count` seeded random patterns (any mode), for padding a worst-case
    /// schedule with bulk coverage.
    #[must_use]
    pub fn sampled(&self, count: usize, seed: u64) -> Vec<FailurePattern> {
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = sample::PatternSampler::new(self.scenario);
        (0..count).map(|_| sampler.sample(&mut rng)).collect()
    }

    /// The mode-appropriate worst-case schedule: the failure-free pattern
    /// (so corresponding failure-free runs are always present), then
    /// latest crashes and crash chains (crash mode), asymmetric
    /// omissions (omission modes), and deaf receivers (general omission
    /// only), deduplicated in order.
    #[must_use]
    pub fn worst_case(&self) -> Vec<FailurePattern> {
        let mut out = vec![FailurePattern::failure_free(self.scenario.n())];
        out.extend(self.latest_crashes());
        out.extend(self.crash_chains());
        out.extend(self.asymmetric_omissions());
        out.extend(self.deaf_receivers());
        let mut seen = std::collections::HashSet::new();
        out.retain(|p| seen.insert(p.clone()));
        out
    }

    /// The generated system of the worst-case schedule: every initial
    /// configuration crossed with every [`AdversarySchedule::worst_case`]
    /// pattern. Polynomially sized where the exhaustive system is
    /// exponential, yet containing the adversary's strongest plays.
    #[must_use]
    pub fn system(&self) -> GeneratedSystem {
        let configs: Vec<InitialConfig> = InitialConfig::enumerate_all(self.scenario.n()).collect();
        let mut specs = Vec::new();
        for pattern in self.worst_case() {
            for config in &configs {
                specs.push((config.clone(), pattern.clone()));
            }
        }
        GeneratedSystem::from_runs(&self.scenario, specs)
    }

    fn nonempty_faulty_sets(&self) -> impl Iterator<Item = ProcSet> {
        enumerate::faulty_sets(self.scenario.n(), self.scenario.t())
            .into_iter()
            .filter(|s| !s.is_empty())
    }
}

/// The lowest processor id outside `set` (some processor is always
/// outside: faulty sets have at most `t < n` members).
fn lowest_outside(set: ProcSet, n: usize) -> ProcessorId {
    ProcessorId::all(n)
        .find(|p| !set.contains(*p))
        .expect("faulty sets leave at least one processor nonfaulty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::Time;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn no_chaos_injects_nothing() {
        assert!(NoChaos.inject(FaultSite::BuilderShard, 0).is_ok());
    }

    #[test]
    fn planned_panic_fires_exactly_once() {
        let plan = ChaosPlan::new().with_fault(FaultSite::BuilderShard, 2, FaultKind::Panic);
        assert!(plan.inject(FaultSite::BuilderShard, 1).is_ok());
        let caught = catch_unwind(AssertUnwindSafe(|| plan.inject(FaultSite::BuilderShard, 2)));
        assert!(caught.is_err());
        // Second visit (the supervisor's retry) is clean.
        assert!(plan.inject(FaultSite::BuilderShard, 2).is_ok());
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn capacity_fault_is_a_typed_error() {
        let plan =
            ChaosPlan::new().with_fault(FaultSite::BuilderShard, 0, FaultKind::CapacityExhaustion);
        let err = plan.inject(FaultSite::BuilderShard, 0).unwrap_err();
        assert!(matches!(err, ModelError::CapacityExceeded { .. }));
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let sites = [FaultSite::BuilderShard, FaultSite::ReachabilityWorker];
        let a = ChaosPlan::seeded(42, &sites, 8, 5);
        let b = ChaosPlan::seeded(42, &sites, 8, 5);
        assert_eq!(a.faults.len(), 5);
        for (fa, fb) in a.faults.iter().zip(&b.faults) {
            assert_eq!(fa.site, fb.site);
            assert_eq!(fa.index, fb.index);
            assert_eq!(
                std::mem::discriminant(&fa.kind),
                std::mem::discriminant(&fb.kind)
            );
        }
    }

    #[test]
    fn supervised_pool_computes_in_order_without_faults() {
        let (out, faults) = supervised_indexed(17, 4, FaultSite::BuilderShard, |i| i * i).unwrap();
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert!(faults.is_empty());
    }

    #[test]
    fn supervised_pool_recovers_from_a_single_panic() {
        let attempts = AtomicUsize::new(0);
        let (out, faults) = supervised_indexed(8, 4, FaultSite::BuilderShard, |i| {
            if i == 3 && attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("boom in item 3");
            }
            i + 100
        })
        .unwrap();
        assert_eq!(out, (100..108).collect::<Vec<_>>());
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].index, 3);
        assert_eq!(faults[0].attempts, 1);
        assert!(faults[0].message.contains("boom"));
    }

    #[test]
    fn supervised_pool_falls_back_to_sequential() {
        // Panic twice (initial + retry); only the sequential fallback on
        // the supervising thread succeeds.
        let attempts = AtomicUsize::new(0);
        let supervisor = thread::current().id();
        let (out, faults) = supervised_indexed(4, 2, FaultSite::ReachabilityWorker, |i| {
            if i == 0
                && thread::current().id() != supervisor
                && attempts.fetch_add(1, Ordering::Relaxed) < 2
            {
                panic!("persistent worker fault");
            }
            i
        })
        .unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].attempts, 2);
    }

    #[test]
    fn defeating_all_attempts_yields_a_typed_fault() {
        let result: Result<(Vec<usize>, _), _> =
            supervised_indexed(4, 2, FaultSite::CampaignShard, |i| {
                if i == 1 {
                    panic!("unrecoverable");
                }
                i
            });
        let fault = result.unwrap_err();
        assert_eq!(
            fault,
            EngineFault::WorkerPanicked {
                site: FaultSite::CampaignShard,
                index: 1,
                message: "unrecoverable".to_owned(),
            }
        );
        assert!(fault.to_string().contains("campaign shard #1"));
    }

    #[test]
    fn sequential_pool_keeps_the_supervision_contract() {
        // A single-core host (workers == 1) must absorb a transient
        // panic exactly like the parallel pool: one retry, same results.
        let attempts = AtomicUsize::new(0);
        let (out, faults) = supervised_indexed(3, 1, FaultSite::BuilderShard, |i| {
            if i == 1 && attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient fault on a single-core host");
            }
            i * 10
        })
        .unwrap();
        assert_eq!(out, vec![0, 10, 20]);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].index, 1);
        assert!(faults[0].message.contains("transient fault"));
    }

    #[test]
    fn sequential_pool_surfaces_a_persistent_panic_as_a_typed_fault() {
        let result: Result<(Vec<usize>, _), _> =
            supervised_indexed(3, 1, FaultSite::BuilderShard, |i| {
                if i == 1 {
                    panic!("unrecoverable");
                }
                i
            });
        assert!(matches!(
            result.unwrap_err(),
            EngineFault::WorkerPanicked {
                site: FaultSite::BuilderShard,
                index: 1,
                ..
            }
        ));
    }

    fn crash_scenario() -> Scenario {
        Scenario::new(4, 2, FailureMode::Crash, 3).unwrap()
    }

    #[test]
    fn latest_crashes_are_valid_and_late() {
        let scenario = crash_scenario();
        let adversary = AdversarySchedule::new(&scenario);
        let patterns = adversary.latest_crashes();
        assert!(!patterns.is_empty());
        for pattern in &patterns {
            scenario.validate_pattern(pattern).unwrap();
            for p in ProcessorId::all(4) {
                if let Some(FaultyBehavior::Crash { round, .. }) = pattern.behavior(p) {
                    assert_eq!(round.end(), Time::new(3), "crash is latest-possible");
                }
            }
        }
    }

    #[test]
    fn crash_chains_escalate_rounds() {
        let scenario = crash_scenario();
        let adversary = AdversarySchedule::new(&scenario);
        let patterns = adversary.crash_chains();
        assert!(!patterns.is_empty());
        for pattern in &patterns {
            scenario.validate_pattern(pattern).unwrap();
        }
        // A 2-member chain: first member crashes in round 1 delivering
        // only to the second member.
        let two = patterns
            .iter()
            .find(|p| p.num_faulty() == 2)
            .expect("t = 2 produces two-member chains");
        let members: Vec<ProcessorId> = ProcessorId::all(4)
            .filter(|&p| two.behavior(p).is_some())
            .collect();
        let Some(FaultyBehavior::Crash { round, receivers }) = two.behavior(members[0]) else {
            panic!("chain member must crash");
        };
        assert_eq!(*round, Round::new(1));
        assert_eq!(*receivers, ProcSet::singleton(members[1]));
    }

    #[test]
    fn asymmetric_omissions_are_valid_and_asymmetric() {
        let scenario = Scenario::new(4, 2, FailureMode::Omission, 3).unwrap();
        let adversary = AdversarySchedule::new(&scenario);
        let patterns = adversary.asymmetric_omissions();
        assert!(!patterns.is_empty());
        for pattern in &patterns {
            scenario.validate_pattern(pattern).unwrap();
            // Some message is omitted and some is delivered in round 1.
            let faulty: Vec<ProcessorId> = ProcessorId::all(4)
                .filter(|&p| pattern.behavior(p).is_some())
                .collect();
            let omitted_any = faulty
                .iter()
                .any(|&p| ProcessorId::all(4).any(|q| !pattern.delivers(p, q, Round::new(1))));
            assert!(omitted_any);
        }
        // Crash mode yields none.
        assert!(AdversarySchedule::new(&crash_scenario())
            .asymmetric_omissions()
            .is_empty());
    }

    #[test]
    fn worst_case_schedule_is_deduplicated_and_starts_failure_free() {
        let adversary = AdversarySchedule::new(&crash_scenario());
        let patterns = adversary.worst_case();
        assert_eq!(patterns[0].num_faulty(), 0);
        let mut dedup = patterns.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), patterns.len());
    }

    fn general_omission_scenario() -> Scenario {
        Scenario::new(4, 2, FailureMode::GeneralOmission, 3).unwrap()
    }

    #[test]
    fn general_omission_worst_case_is_valid_and_nonempty() {
        let scenario = general_omission_scenario();
        let adversary = AdversarySchedule::new(&scenario);
        let patterns = adversary.worst_case();
        // Failure-free first, then asymmetric omissions (crash schedules
        // are crash-mode-only and must not leak in).
        assert_eq!(patterns[0].num_faulty(), 0);
        assert!(patterns.len() > 1, "general omission has adversarial plays");
        assert!(adversary.latest_crashes().is_empty());
        assert!(adversary.crash_chains().is_empty());
        for pattern in &patterns {
            scenario.validate_pattern(pattern).unwrap();
        }
        // Deduplicated, like every worst-case schedule.
        let mut dedup = patterns.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), patterns.len());
    }

    #[test]
    fn general_omission_worst_case_extends_the_omission_shape() {
        // The asymmetric-omission generators are shared by both omission
        // modes, but general omission re-encodes them canonically (so
        // they stay `find_run`-compatible with exhaustive enumeration)
        // and adds receive-side plays no sending-omission schedule has.
        let go = AdversarySchedule::new(&general_omission_scenario()).worst_case();
        let so = AdversarySchedule::new(&Scenario::new(4, 2, FailureMode::Omission, 3).unwrap())
            .worst_case();
        for pattern in &so {
            let canonical = reencode_general(pattern);
            assert!(
                go.contains(&canonical),
                "send-omission worst case missing from general omission"
            );
        }
        assert!(
            go.len() > so.len(),
            "general omission should add receive-side schedules"
        );
        // Every extra pattern refuses at least one reception.
        let send_side: std::collections::HashSet<_> = so.iter().map(reencode_general).collect();
        for pattern in go.iter().filter(|p| !send_side.contains(*p)) {
            let hears_less = ProcessorId::all(4).any(|p| {
                matches!(
                    pattern.behavior(p),
                    Some(FaultyBehavior::GeneralOmission { receive, .. })
                        if receive.iter().any(|r| !r.is_empty())
                )
            });
            assert!(hears_less, "extra general-omission pattern is send-only");
        }
    }

    /// Re-encodes every sending-omission behavior in `pattern` as the
    /// canonical general-omission behavior with empty receive sets.
    fn reencode_general(pattern: &FailurePattern) -> FailurePattern {
        let n = pattern.n();
        let mut out = FailurePattern::failure_free(n);
        for p in ProcessorId::all(n) {
            match pattern.behavior(p) {
                None => {}
                Some(FaultyBehavior::Omission { omissions }) => out.set_behavior(
                    p,
                    FaultyBehavior::GeneralOmission {
                        send: omissions.clone(),
                        receive: vec![ProcSet::empty(); omissions.len()],
                    },
                ),
                Some(other) => out.set_behavior(p, other.clone()),
            }
        }
        out
    }

    #[test]
    fn general_omission_adversary_system_embeds_in_the_exhaustive_one() {
        // Small enough to enumerate exhaustively: every worst-case run
        // must exist in the exhaustive general-omission system.
        let scenario = Scenario::new(3, 1, FailureMode::GeneralOmission, 2).unwrap();
        let adversary = AdversarySchedule::new(&scenario);
        let system = adversary.system();
        let exhaustive = GeneratedSystem::exhaustive(&scenario);
        assert!(system.num_runs() > 0);
        assert!(system.num_runs() < exhaustive.num_runs());
        for run in system.run_ids() {
            let record = system.run(run);
            assert!(
                exhaustive
                    .find_run(&record.config, &record.pattern)
                    .is_some(),
                "worst-case run missing from the exhaustive general-omission system"
            );
        }
    }

    #[test]
    fn general_omission_asymmetric_schedules_starve_a_receiver() {
        let scenario = general_omission_scenario();
        let patterns = AdversarySchedule::new(&scenario).asymmetric_omissions();
        assert!(!patterns.is_empty());
        // The starved-receiver family must contain, for every nonempty
        // faulty set, a pattern where some nonfaulty processor receives
        // no message from any faulty processor in any round.
        let starving = patterns.iter().filter(|pattern| {
            let faulty = pattern.faulty_set();
            ProcessorId::all(4).any(|victim| {
                !faulty.contains(victim)
                    && faulty.iter().all(|sender| {
                        (1..=scenario.horizon().ticks())
                            .all(|r| !pattern.delivers(sender, victim, Round::new(r)))
                    })
            })
        });
        let faulty_sets: std::collections::HashSet<ProcSet> =
            starving.map(FailurePattern::faulty_set).collect();
        let expected: std::collections::HashSet<ProcSet> = enumerate::faulty_sets(4, 2)
            .into_iter()
            .filter(|s| !s.is_empty())
            .collect();
        assert_eq!(faulty_sets, expected);
    }

    #[test]
    fn adversary_system_is_a_subsystem_of_the_exhaustive_one() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let adversary = AdversarySchedule::new(&scenario);
        let system = adversary.system();
        let exhaustive = GeneratedSystem::exhaustive(&scenario);
        assert!(system.num_runs() > 0);
        assert!(system.num_runs() < exhaustive.num_runs());
        for run in system.run_ids() {
            let record = system.run(run);
            assert!(
                exhaustive
                    .find_run(&record.config, &record.pattern)
                    .is_some(),
                "adversarial run must exist in the exhaustive system"
            );
        }
    }

    #[test]
    fn sampled_schedules_are_reproducible() {
        let adversary = AdversarySchedule::new(&crash_scenario());
        assert_eq!(adversary.sampled(10, 3), adversary.sampled(10, 3));
    }
}
