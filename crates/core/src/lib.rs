//! The core contribution of *A Characterization of Eventual Byzantine
//! Agreement* (Halpern–Moses–Waarts, PODC 1990), implemented over the
//! `eba-sim` generated systems and the `eba-kripke` epistemic model
//! checker:
//!
//! * [`DecisionPair`] / [`FipDecisions`] — decision pairs `(Z, O)` and the
//!   semantics of the full-information protocol `FIP(Z, O)` (Section 4);
//! * [`Constructor`] — the Proposition 5.1 optimization steps and the
//!   Theorem 5.2 two-step construction of optimal protocols;
//! * [`check_optimality`] — the Theorem 5.3 necessary-and-sufficient
//!   optimality conditions, in terms of continual common knowledge;
//! * [`lift_protocol`] — Corollary 2.3 made executable: lift *any*
//!   protocol to a full-information decision pair, ready to optimize;
//! * [`dominates`] — the domination preorder of Section 2.3;
//! * [`verify_properties`] — the agreement/validity/decision/simultaneity
//!   properties of Section 2.1;
//! * [`protocols`] — the paper's concrete protocols: `F^Λ`, `F^{Λ,1}`,
//!   `F^{Λ,2}`, the crash rule `FIP(Z^cr, O^cr)` of Theorem 6.1, the
//!   0-chain protocol `FIP(Z⁰, O⁰)` and `F*` of Section 6.2, and the
//!   common-knowledge SBA rule;
//! * [`EngineSession`] — incremental engine sessions: one system grown
//!   in place by append-only horizon extension, with epoch-scoped
//!   knowledge caches, serving constructors and evaluators at every
//!   horizon;
//! * [`chains`] — 0-chains and the `∃0*` predicate;
//! * [`analysis`] — decision-time breakdowns by failure count and
//!   configuration class.
//!
//! # Example
//!
//! Build the optimal crash-mode EBA protocol from nothing and verify it:
//!
//! ```
//! use eba_core::{check_optimality, verify_properties, Constructor, DecisionPair, FipDecisions};
//! use eba_model::{FailureMode, Scenario};
//! use eba_sim::GeneratedSystem;
//!
//! # fn main() -> Result<(), eba_model::ModelError> {
//! let scenario = Scenario::new(3, 1, FailureMode::Crash, 3)?;
//! let system = GeneratedSystem::exhaustive(&scenario);
//! let mut ctor = Constructor::new(&system);
//!
//! let f2 = ctor.optimize(&DecisionPair::empty(3)); // Theorem 5.2
//! let decisions = FipDecisions::compute(&system, &f2, "F^{Λ,2}");
//! assert!(verify_properties(&system, &decisions).is_eba());
//! assert!(check_optimality(&mut ctor, &f2).is_optimal()); // Theorem 5.3
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod construct;
mod decision;
mod domination;
mod fip;
mod lift;
mod optimality;
mod properties;
mod session;

pub mod analysis;
pub mod chains;
pub mod protocols;

pub use construct::Constructor;
pub use decision::DecisionPair;
pub use domination::{dominates, DominationReport};
pub use fip::{Conflict, FipDecisions};
pub use lift::lift_protocol;
pub use optimality::{check_optimality, ConditionCheck, OptimalityReport};
pub use properties::{
    decision_profile, strict_validity_violations, verify_properties, PropertyReport,
};
pub use session::{EngineSession, SessionScope};

pub use eba_kripke::{SetReprKind, SetReprStats};
