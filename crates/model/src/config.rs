//! Initial configurations.

use crate::{ProcSet, ProcessorId, Value};
use std::fmt;
use std::ops::Index;

/// An initial configuration: the list of the processors' initial values
/// (Section 2.3 of the paper calls this the system's *initial
/// configuration*).
///
/// # Example
///
/// ```
/// use eba_model::{InitialConfig, ProcessorId, Value};
///
/// let config = InitialConfig::from_bits(3, 0b101);
/// assert_eq!(config[ProcessorId::new(0)], Value::One);
/// assert_eq!(config[ProcessorId::new(1)], Value::Zero);
/// assert!(config.exists(Value::Zero) && config.exists(Value::One));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InitialConfig {
    values: Vec<Value>,
}

impl InitialConfig {
    /// Creates a configuration from explicit per-processor values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or longer than
    /// [`ProcessorId::MAX_PROCESSORS`].
    #[must_use]
    pub fn new(values: Vec<Value>) -> Self {
        assert!(!values.is_empty(), "a system has at least one processor");
        assert!(values.len() <= ProcessorId::MAX_PROCESSORS);
        InitialConfig { values }
    }

    /// Creates a configuration in which every processor holds `value`.
    #[must_use]
    pub fn uniform(n: usize, value: Value) -> Self {
        InitialConfig::new(vec![value; n])
    }

    /// Creates a configuration from a bit mask: bit `i` gives processor
    /// `i`'s value (`1 ↦ Value::One`).
    #[must_use]
    pub fn from_bits(n: usize, bits: u128) -> Self {
        InitialConfig::new(
            (0..n)
                .map(|i| Value::from_bit(bits >> i & 1 == 1))
                .collect(),
        )
    }

    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// The initial value of processor `p`.
    #[must_use]
    pub fn value(&self, p: ProcessorId) -> Value {
        self.values[p.index()]
    }

    /// The values as a slice, indexed by processor index.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Whether some processor starts with `v` (the paper's `∃0` / `∃1`
    /// atoms refer to this predicate of the run's configuration).
    #[must_use]
    pub fn exists(&self, v: Value) -> bool {
        self.values.contains(&v)
    }

    /// Whether all processors start with the same value.
    #[must_use]
    pub fn all_same(&self) -> bool {
        self.values.iter().all(|&v| v == self.values[0])
    }

    /// The set of processors whose initial value is `v`.
    #[must_use]
    pub fn holders(&self, v: Value) -> ProcSet {
        ProcessorId::all(self.n())
            .filter(|&p| self.value(p) == v)
            .collect()
    }

    /// Encodes the configuration as a bit mask (inverse of
    /// [`InitialConfig::from_bits`]).
    #[must_use]
    pub fn to_bits(&self) -> u128 {
        self.values
            .iter()
            .enumerate()
            .fold(0u128, |acc, (i, v)| acc | (u128::from(v.as_bit()) << i))
    }

    /// Enumerates all `2^n` configurations of `n` processors, in increasing
    /// bit-mask order.
    pub fn enumerate_all(n: usize) -> impl Iterator<Item = InitialConfig> {
        assert!(
            n <= 32,
            "exhaustive configuration enumeration is limited to n ≤ 32"
        );
        (0u128..(1u128 << n)).map(move |bits| InitialConfig::from_bits(n, bits))
    }
}

impl Index<ProcessorId> for InitialConfig {
    type Output = Value;
    fn index(&self, p: ProcessorId) -> &Value {
        &self.values[p.index()]
    }
}

impl fmt::Display for InitialConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        for bits in 0..16u128 {
            let c = InitialConfig::from_bits(4, bits);
            assert_eq!(c.to_bits(), bits);
        }
    }

    #[test]
    fn uniform_all_same() {
        for v in Value::ALL {
            let c = InitialConfig::uniform(5, v);
            assert!(c.all_same());
            assert!(c.exists(v));
            assert!(!c.exists(v.other()));
            assert_eq!(c.holders(v).len(), 5);
        }
    }

    #[test]
    fn mixed_configuration() {
        let c = InitialConfig::from_bits(3, 0b010);
        assert!(!c.all_same());
        assert!(c.exists(Value::Zero));
        assert!(c.exists(Value::One));
        assert_eq!(
            c.holders(Value::One),
            ProcSet::singleton(ProcessorId::new(1))
        );
    }

    #[test]
    fn enumerate_all_is_exhaustive_and_distinct() {
        let all: Vec<_> = InitialConfig::enumerate_all(3).collect();
        assert_eq!(all.len(), 8);
        let mut bits: Vec<_> = all.iter().map(InitialConfig::to_bits).collect();
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len(), 8);
    }

    #[test]
    fn display() {
        let c = InitialConfig::from_bits(3, 0b101);
        assert_eq!(c.to_string(), "⟨1,0,1⟩");
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn empty_rejected() {
        let _ = InitialConfig::new(vec![]);
    }
}
