//! Self-chaos suite for the `eba-serve` daemon.
//!
//! The daemon's correctness contract: under concurrency, injected
//! engine faults, eviction, malformed input, and abusive clients, every
//! successful response is **byte-identical** to the single-threaded
//! cold oracle ([`eba_serve::oracle`]), and the daemon itself never
//! dies — worker panics are isolated, bad clients are shed or
//! disconnected, and SIGINT drains gracefully.

use eba_serve::{oracle, Request, RetryPolicy, ServeConfig, Server, SessionPool, StatsSnapshot};
use eba_sim::chaos::{ChaosPlan, FaultKind, FaultSite};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

struct TestServer {
    addr: SocketAddr,
    drain: &'static AtomicBool,
    pool: Arc<SessionPool>,
    handle: thread::JoinHandle<StatsSnapshot>,
}

fn start(config: ServeConfig) -> TestServer {
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("resolved addr");
    let drain = server.drain_flag();
    let pool = server.pool();
    let handle = thread::spawn(move || server.run());
    TestServer {
        addr,
        drain,
        pool,
        handle,
    }
}

impl TestServer {
    fn client(&self) -> Client {
        Client::connect(self.addr)
    }

    fn drain(self) -> StatsSnapshot {
        self.drain.store(true, Ordering::Relaxed);
        self.handle.join().expect("server thread must not panic")
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        let mut frame = Vec::with_capacity(line.len() + 1);
        frame.extend_from_slice(line.as_bytes());
        frame.push(b'\n');
        self.writer.write_all(&frame).expect("send");
    }

    fn recv(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_owned()),
            Err(_) => None,
        }
    }

    fn ask(&mut self, line: &str) -> String {
        self.send(line);
        self.recv().expect("response before EOF")
    }
}

/// The mixed workload: crash, omission, and general-omission scenarios;
/// check/optimize/sweep ops; valid and invalid formulas; a witness
/// query; and a deterministically budgeted partial (pinned shards).
/// Every line's response is a pure function of the line.
fn workload() -> Vec<&'static str> {
    vec![
        r#"{"op":"check","formula":"CC(E0) -> C(E0)"}"#,
        r#"{"op":"check","formula":"C(E0) -> CC(E0)"}"#,
        r#"{"op":"check","formula":"B_1(E0) -> (N(1) -> E0)","mode":"omission","horizon":2}"#,
        r#"{"op":"check","formula":"K_1(E0) -> E0","mode":"general-omission","horizon":2}"#,
        r#"{"op":"check","formula":"CC(E0) -> C(E0)","witness":true}"#,
        r#"{"op":"check","formula":"true","mode":"omission","horizon":2,"shards":64,"max_runs":50}"#,
        r#"{"op":"check","formula":"this is not a formula"}"#,
        r#"{"op":"check","formula":"CC(E0)","sampled":[20,7]}"#,
        r#"{"op":"optimize","n":3,"t":1,"mode":"crash","horizon":3}"#,
        r#"{"op":"sweep","formula":"CC(E0) -> C(E0)","from":2,"to":3}"#,
        r#"{"op":"ping"}"#,
    ]
}

fn oracle_map(lines: &[&'static str]) -> HashMap<&'static str, String> {
    lines
        .iter()
        .map(|line| {
            let answer = match Request::from_line(line) {
                Ok(req) => oracle(&req),
                Err(e) => e.to_frame().to_line(),
            };
            (*line, answer)
        })
        .collect()
}

/// ≥16 concurrent clients, chaos injection on, mid-run eviction: every
/// response byte-identical to the cold oracle; zero daemon panics.
#[test]
fn soak_sixteen_concurrent_clients_with_chaos_match_the_oracle() {
    let lines = workload();
    let expected = Arc::new(oracle_map(&lines));

    // Seeded bounded chaos over the build stage: panics (absorbed by
    // shard supervision), capacity faults (retried by the pool), and
    // delays (jitter). The retry budget outlasts the plan's fire count.
    let chaos = Arc::new(ChaosPlan::seeded(0xEBA5, &[FaultSite::BuilderShard], 8, 6));
    let config = ServeConfig {
        retry: RetryPolicy {
            attempts: 10,
            base_backoff: Duration::from_micros(200),
        },
        chaos: Some(chaos),
        ..ServeConfig::default()
    };
    let server = start(config);

    // A chaos-monkey thread evicting and polling stats while the
    // clients run: eviction mid-workload must never change an answer.
    let monkey_addr = server.addr;
    let monkey_stop = Arc::new(AtomicBool::new(false));
    let monkey_stop2 = Arc::clone(&monkey_stop);
    let monkey = thread::spawn(move || {
        let mut client = Client::connect(monkey_addr);
        while !monkey_stop2.load(Ordering::Relaxed) {
            let evicted = client.ask(r#"{"op":"evict"}"#);
            assert!(evicted.contains(r#""evicted":"#), "{evicted}");
            let stats = client.ask(r#"{"op":"stats"}"#);
            assert!(stats.contains(r#""resident_bytes":"#), "{stats}");
            thread::sleep(Duration::from_millis(20));
        }
    });

    let clients: Vec<_> = (0..16)
        .map(|i| {
            let addr = server.addr;
            let lines = lines.clone();
            let expected = Arc::clone(&expected);
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                // Each client rotates the workload differently so the
                // pool sees interleaved scenarios, not a convoy.
                for round in 0..2 {
                    for (j, _) in lines.iter().enumerate() {
                        let line = lines[(i + j + round) % lines.len()];
                        let response = client.ask(line);
                        assert_eq!(
                            response, expected[line],
                            "client {i} line {line} diverged from the oracle"
                        );
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread must not panic");
    }
    monkey_stop.store(true, Ordering::Relaxed);
    monkey.join().expect("monkey thread must not panic");

    // The daemon is still alive and sane after the storm.
    let mut probe = server.client();
    assert_eq!(probe.ask(r#"{"op":"ping"}"#), r#"{"ok":true,"op":"pong"}"#);
    let snapshot = server.drain();
    assert_eq!(snapshot.panics, 0, "no query may panic: {snapshot:?}");
    assert!(snapshot.queries >= 16 * 2 * 11, "{snapshot:?}");
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let server = start(ServeConfig::default());
    let mut client = server.client();
    let cases = [
        ("this is not json", "bad-frame"),
        (r#"[1,2,3]"#, "bad-frame"),
        (r#"{"no_op":true}"#, "bad-frame"),
        (r#"{"op":"transmogrify"}"#, "bad-request"),
        (r#"{"op":"check"}"#, "bad-request"),
        (r#"{"op":"check","formula":"true","n":-1}"#, "bad-request"),
        (
            r#"{"op":"check","formula":"true","n":500}"#,
            "invalid-scenario",
        ),
        (
            r#"{"op":"check","formula":"true","t":5}"#,
            "invalid-scenario",
        ),
    ];
    for (frame, kind) in cases {
        let response = client.ask(frame);
        assert!(
            response.contains(&format!(r#""error":"{kind}""#)),
            "{frame} -> {response}"
        );
    }
    // Deeply nested garbage is rejected, not stack-overflowed.
    let deep = format!("{}{}", "[".repeat(10_000), "]".repeat(10_000));
    let response = client.ask(&deep);
    assert!(response.contains(r#""error":"bad-frame""#), "{response}");
    // And the connection still works.
    assert_eq!(client.ask(r#"{"op":"ping"}"#), r#"{"ok":true,"op":"pong"}"#);
    server.drain();
}

#[test]
fn oversized_frames_are_rejected_and_disconnected() {
    let config = ServeConfig {
        max_frame_bytes: 1024,
        ..ServeConfig::default()
    };
    let server = start(config);
    let mut client = server.client();
    let huge = format!(r#"{{"op":"ping","pad":"{}"}}"#, "x".repeat(4096));
    let response = client.ask(&huge);
    assert!(response.contains("frame too long"), "{response}");
    assert!(client.recv().is_none(), "oversize sender must be dropped");
    // A fresh connection is unaffected.
    let mut fresh = server.client();
    assert_eq!(fresh.ask(r#"{"op":"ping"}"#), r#"{"ok":true,"op":"pong"}"#);
    server.drain();
}

#[test]
fn slow_loris_clients_are_disconnected_without_hurting_others() {
    let config = ServeConfig {
        read_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = start(config);
    let mut loris = server.client();
    // Half a frame, then stall past the read timeout.
    loris
        .writer
        .write_all(br#"{"op":"chec"#)
        .expect("partial write");
    loris.writer.flush().unwrap();
    // A well-behaved client is served while the loris stalls.
    let mut good = server.client();
    assert_eq!(good.ask(r#"{"op":"ping"}"#), r#"{"ok":true,"op":"pong"}"#);
    thread::sleep(Duration::from_millis(400));
    // The loris connection is gone: its next read sees EOF/reset.
    let mut buf = [0u8; 16];
    loris
        .writer
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let gone = match loris.writer.read(&mut buf) {
        Ok(0) => true,
        Ok(_) => false,
        Err(_) => true,
    };
    assert!(gone, "slow-loris connection must be closed");
    let snapshot = server.drain();
    assert!(snapshot.bad_connections >= 1, "{snapshot:?}");
}

#[test]
fn admission_control_sheds_with_a_retry_hint_when_saturated() {
    // One slot, no queue; recurring build delays on every shard keep
    // the slot busy long enough for the prober to collide with it.
    let mut plan = ChaosPlan::new();
    for shard in 0..32 {
        plan = plan.with_recurring_fault(
            FaultSite::BuilderShard,
            shard,
            FaultKind::Delay(Duration::from_millis(100)),
            u32::MAX,
        );
    }
    let chaos = Arc::new(plan);
    let config = ServeConfig {
        max_active: 1,
        max_waiting: 0,
        chaos: Some(chaos),
        ..ServeConfig::default()
    };
    let server = start(config);
    let addr = server.addr;
    let slow = thread::spawn(move || {
        let mut client = Client::connect(addr);
        // Many shards, each delayed: the build holds the slot long
        // enough for the prober to collide with it.
        client.ask(r#"{"op":"check","formula":"true","mode":"omission","horizon":2,"shards":32,"max_runs":100000}"#)
    });
    thread::sleep(Duration::from_millis(120));
    let mut prober = server.client();
    let shed = prober.ask(r#"{"op":"ping"}"#);
    assert!(
        shed.contains(r#""error":"overloaded""#),
        "expected load shedding, got {shed}"
    );
    assert!(shed.contains(r#""retry_after_ms":"#), "{shed}");
    let slow_response = slow.join().expect("slow client thread");
    assert!(slow_response.contains(r#""ok":true"#), "{slow_response}");
    let snapshot = server.drain();
    assert!(snapshot.shed >= 1, "{snapshot:?}");
}

#[test]
fn injected_persistent_faults_surface_as_typed_engine_fault_frames() {
    let chaos = Arc::new(ChaosPlan::new().with_recurring_fault(
        FaultSite::BuilderShard,
        0,
        FaultKind::CapacityExhaustion,
        u32::MAX,
    ));
    let config = ServeConfig {
        retry: RetryPolicy {
            attempts: 2,
            base_backoff: Duration::from_micros(100),
        },
        chaos: Some(chaos),
        ..ServeConfig::default()
    };
    let server = start(config);
    let mut client = server.client();
    let response = client.ask(r#"{"op":"check","formula":"true"}"#);
    assert!(response.contains(r#""error":"engine-fault""#), "{response}");
    assert!(response.contains("2 attempts"), "{response}");
    // The daemon survives its engine failing.
    assert_eq!(client.ask(r#"{"op":"ping"}"#), r#"{"ok":true,"op":"pong"}"#);
    server.drain();
}

#[test]
fn graceful_drain_finishes_in_flight_work_and_flushes_stats() {
    let server = start(ServeConfig::default());
    // An idle client parked in a blocking read: drain must unblock it
    // promptly (read-half shutdown), not wait out the 30s read timeout.
    let mut idle = server.client();
    assert_eq!(idle.ask(r#"{"op":"ping"}"#), r#"{"ok":true,"op":"pong"}"#);

    // An in-flight query racing the drain: it must complete with a
    // well-formed frame (the build either finishes or stops at a
    // cooperative checkpoint with a typed outcome), never be cut off.
    let addr = server.addr;
    let inflight = thread::spawn(move || {
        let mut client = Client::connect(addr);
        client.ask(r#"{"op":"check","formula":"CC(E0) -> C(E0)","mode":"omission","horizon":3}"#)
    });
    thread::sleep(Duration::from_millis(50));

    let drain_started = std::time::Instant::now();
    let snapshot = server.drain();
    let drained_in = drain_started.elapsed();

    let response = inflight.join().expect("in-flight client");
    assert!(
        eba_serve::json::parse(&response).is_ok(),
        "in-flight response must be a complete frame: {response}"
    );
    assert!(
        drained_in < Duration::from_secs(20),
        "drain must not wait out idle read timeouts: {drained_in:?}"
    );
    assert!(idle.recv().is_none(), "idle connection closed by drain");
    assert!(snapshot.queries >= 2, "{snapshot:?}");
    assert_eq!(snapshot.panics, 0, "{snapshot:?}");
}

#[test]
fn mid_query_eviction_never_changes_answers() {
    let server = start(ServeConfig::default());
    let line = r#"{"op":"check","formula":"CC(E0) -> C(E0)","mode":"omission","horizon":2}"#;
    let expected = oracle(&Request::from_line(line).unwrap());

    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let pool = Arc::clone(&server.pool);
    // Direct pool eviction (no protocol round-trip) for the tightest
    // possible interleaving with in-flight checkouts.
    let evictor = thread::spawn(move || {
        while !stop2.load(Ordering::Relaxed) {
            pool.evict(None);
            thread::yield_now();
        }
    });

    let askers: Vec<_> = (0..4)
        .map(|_| {
            let addr = server.addr;
            let expected = expected.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                for _ in 0..5 {
                    assert_eq!(client.ask(line), expected);
                }
            })
        })
        .collect();
    for asker in askers {
        asker.join().expect("asker thread");
    }
    stop.store(true, Ordering::Relaxed);
    evictor.join().expect("evictor thread");
    let snapshot = server.drain();
    assert_eq!(snapshot.panics, 0, "{snapshot:?}");
}

#[test]
fn connection_churn_does_not_hurt_the_daemon() {
    let server = start(ServeConfig::default());
    for i in 0..30 {
        let mut client = server.client();
        if i % 3 == 0 {
            // Connect-and-vanish.
            drop(client);
        } else {
            assert_eq!(client.ask(r#"{"op":"ping"}"#), r#"{"ok":true,"op":"pong"}"#);
        }
    }
    let snapshot = server.drain();
    assert!(snapshot.connections >= 30, "{snapshot:?}");
    assert_eq!(snapshot.panics, 0, "{snapshot:?}");
}
