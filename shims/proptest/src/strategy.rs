//! Value-generation strategies (no shrinking; see the crate docs).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no value tree: `generate` draws a
/// fresh value directly, and failing cases are reported without shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives a strategy for smaller
    /// instances (eventually bottoming out at `self`) and returns the
    /// strategy for one more level of structure. `depth` bounds the
    /// nesting; `_desired_size` and `_expected_branch_size` are accepted
    /// for API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let expanded = f(current).boxed();
            // One part leaves to two parts deeper structure keeps trees
            // shallow-biased while still exercising every level.
            current = Union::weighted(vec![(1, leaf.clone()), (2, expanded)]).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe core of [`Strategy`], used behind [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self // already erased; avoid double indirection
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A weighted choice between strategies; the expansion of
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// A uniform choice between the given strategies.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// A weighted choice between the given strategies.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    #[must_use]
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "Union needs at least one positively weighted option"
        );
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut ticket = rng.below(u128::from(self.total_weight)) as u64;
        for (weight, option) in &self.options {
            let weight = u64::from(*weight);
            if ticket < weight {
                return option.generate(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket drawn below the total weight");
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = rng.below(span);
                ((self.start as i128).wrapping_add(offset as i128)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range strategy");
                let span = ((end as i128).wrapping_sub(start as i128) as u128) + 1;
                let offset = rng.below(span);
                ((start as i128).wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// u128 ranges don't fit the i128 arithmetic above; the workspace only uses
// sub-2^64 spans, which `below` handles directly.
impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0u128..1 << 8).generate(&mut rng);
            assert!(y < 256);
            let z = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn union_covers_all_options() {
        let mut rng = rng();
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = rng();
        let mut max_depth = 0;
        for _ in 0..300 {
            let t = strat.generate(&mut rng);
            max_depth = max_depth.max(depth(&t));
            assert!(depth(&t) <= 3);
        }
        assert!(
            max_depth >= 2,
            "recursion never fired (max depth {max_depth})"
        );
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = rng();
        let s = ((0usize..3), (10u16..12)).prop_map(|(a, b)| a + b as usize);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((10..14).contains(&v));
        }
    }
}
