//! The synchronous global clock.

use std::fmt;
use std::ops::{Add, Sub};

/// A point on the shared global clock, starting at 0.
///
/// Following Section 2.3 of the paper, *round* `k` takes place between time
/// `k − 1` and time `k`: messages are sent *during* a round, while decisions
/// are made *at* a time.
///
/// # Example
///
/// ```
/// use eba_model::{Round, Time};
///
/// let t = Time::new(3);
/// assert_eq!(t.ending_round(), Some(Round::new(3)));
/// assert_eq!(Time::ZERO.ending_round(), None);
/// assert_eq!(Round::new(3).end(), t);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Time(u16);

impl Time {
    /// Time 0, the start of every run.
    pub const ZERO: Time = Time(0);

    /// Creates a time from a raw tick count.
    #[must_use]
    pub fn new(ticks: u16) -> Self {
        Time(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub fn ticks(self) -> u16 {
        self.0
    }

    /// Returns the raw tick count as a `usize`, for indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The round that ends at this time, or `None` at time 0.
    #[must_use]
    pub fn ending_round(self) -> Option<Round> {
        if self.0 == 0 {
            None
        } else {
            Some(Round(self.0))
        }
    }

    /// The next time tick.
    #[must_use]
    pub fn next(self) -> Time {
        Time(self.0 + 1)
    }

    /// The previous time tick, or `None` at time 0.
    #[must_use]
    pub fn prev(self) -> Option<Time> {
        self.0.checked_sub(1).map(Time)
    }

    /// Iterates over all times `0..=horizon`.
    pub fn upto(horizon: Time) -> impl DoubleEndedIterator<Item = Time> + Clone {
        (0..=horizon.0).map(Time)
    }
}

impl Add<u16> for Time {
    type Output = Time;
    fn add(self, rhs: u16) -> Time {
        Time(self.0 + rhs)
    }
}

impl Sub<Time> for Time {
    type Output = u16;
    /// Number of ticks between two times.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`.
    fn sub(self, rhs: Time) -> u16 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A communication round, numbered from 1.
///
/// Round `k` takes place between [`Time`] `k − 1` and time `k`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Round(u16);

impl Round {
    /// The first round.
    pub const FIRST: Round = Round(1);

    /// Creates a round from its (one-based) number.
    ///
    /// # Panics
    ///
    /// Panics if `number == 0`; rounds start at 1.
    #[must_use]
    pub fn new(number: u16) -> Self {
        assert!(number >= 1, "rounds are numbered from 1");
        Round(number)
    }

    /// The one-based round number.
    #[must_use]
    pub fn number(self) -> u16 {
        self.0
    }

    /// The time at which the round starts (`k − 1`).
    #[must_use]
    pub fn start(self) -> Time {
        Time(self.0 - 1)
    }

    /// The time at which the round ends (`k`).
    #[must_use]
    pub fn end(self) -> Time {
        Time(self.0)
    }

    /// The next round.
    #[must_use]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Iterates over rounds `1..=last` (all rounds within a horizon of
    /// `last` time ticks).
    pub fn upto(last: Time) -> impl DoubleEndedIterator<Item = Round> + Clone {
        (1..=last.ticks()).map(Round)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_time_correspondence() {
        let r = Round::new(4);
        assert_eq!(r.start(), Time::new(3));
        assert_eq!(r.end(), Time::new(4));
        assert_eq!(Time::new(4).ending_round(), Some(r));
        assert_eq!(Time::ZERO.ending_round(), None);
    }

    #[test]
    fn next_prev() {
        assert_eq!(Time::ZERO.next(), Time::new(1));
        assert_eq!(Time::new(1).prev(), Some(Time::ZERO));
        assert_eq!(Time::ZERO.prev(), None);
        assert_eq!(Round::FIRST.next(), Round::new(2));
    }

    #[test]
    fn iterators_cover_horizon() {
        let times: Vec<_> = Time::upto(Time::new(3)).collect();
        assert_eq!(times.len(), 4);
        let rounds: Vec<_> = Round::upto(Time::new(3)).collect();
        assert_eq!(rounds.len(), 3);
        assert_eq!(rounds[0], Round::FIRST);
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn round_zero_rejected() {
        let _ = Round::new(0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Time::new(2) + 3, Time::new(5));
        assert_eq!(Time::new(5) - Time::new(2), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Time::new(2).to_string(), "t2");
        assert_eq!(Round::new(2).to_string(), "r2");
    }
}
