//! Incremental engine sessions: one growing system, many queries.
//!
//! The classic pipeline treats every scenario as a cold start: generate
//! the system, evaluate, throw everything away. Horizon sweeps — the
//! paper's own methodology for checking that a horizon is large enough
//! (decision times stabilize once `T ≥ t + 2`; see DESIGN.md §2 and the
//! EXP10 ablation) — pay that full cost at every horizon even though a
//! horizon-`T+1` system *contains* the horizon-`T` system: runs only gain
//! rounds, and base-horizon views are append-only artifacts of the past.
//!
//! [`EngineSession`] exploits that structure. It owns one
//! [`GeneratedSystem`] and one shared [`KnowledgeCache`] and grows the
//! system in place via [`EngineSession::extend_to`]:
//!
//! * **model** — [`eba_model::Scenario::extend_horizon`] produces the
//!   delta spec and the pattern translation rules;
//! * **sim** — [`SystemBuilder::extend`] (or
//!   [`SystemBuilder::extend_pinned`] for sampled/partial bases) reuses
//!   every surviving base view row and simulates only appended rounds;
//! * **kripke** — [`KnowledgeCache::advance_epoch`] invalidates the
//!   point-indexed knowledge artifacts (reachability bitsets, scope
//!   columns), which are sized to the old point set and must never hit
//!   across horizons, while the cache handle and its statistics survive;
//! * **core** — [`EngineSession::constructor`] /
//!   [`EngineSession::evaluator`] hand out optimization and evaluation
//!   frontends wired to the session's current system and cache, so the
//!   Theorem 5.2 construction and the Theorem 5.3 optimality check can be
//!   re-run at each horizon.
//!
//! Incremental growth is **equivalence-checked against cold builds**: the
//! full-space path re-enumerates the extended pattern space in canonical
//! order, so run ids, run order, and every decision/optimality artifact
//! are bit-identical to generating the extended scenario from scratch
//! (`tests/incremental_equivalence.rs` enforces this differentially).
//!
//! # Example
//!
//! ```
//! use eba_core::{DecisionPair, EngineSession};
//! use eba_model::{FailureMode, Scenario};
//!
//! # fn main() -> Result<(), eba_model::ModelError> {
//! let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
//! let mut session = EngineSession::exhaustive(&scenario)?;
//! let at_h2 = session.constructor().optimize(&DecisionPair::empty(3));
//! let report = session.extend_to(3)?;
//! assert!(report.reused_runs > 0);
//! let at_h3 = session.constructor().optimize(&DecisionPair::empty(3));
//! # let _ = (at_h2, at_h3);
//! # Ok(())
//! # }
//! ```

use crate::Constructor;
use eba_kripke::{Evaluator, KnowledgeCache, SetReprKind};
use eba_model::{ModelError, Scenario, Time};
use eba_sim::{ExtendReport, GeneratedSystem, SystemBuilder};

/// How a session's system tracks its scenario's run space across
/// extensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionScope {
    /// The system is the **exhaustive** system of its scenario and stays
    /// exhaustive: extension re-enumerates the grown pattern space
    /// ([`SystemBuilder::extend`]), adding fresh runs for patterns that
    /// only exist at the larger horizon.
    FullSpace,
    /// The system is a fixed set of runs (sampled, budget-partial, or
    /// hand-picked) and extension pads exactly those runs to the larger
    /// horizon ([`SystemBuilder::extend_pinned`]); the run count never
    /// changes.
    PinnedRuns,
}

/// An incremental engine session; see the module docs.
#[derive(Debug)]
pub struct EngineSession {
    system: GeneratedSystem,
    cache: KnowledgeCache,
    scope: SessionScope,
    extensions: Vec<ExtendReport>,
    threads: Option<usize>,
}

impl EngineSession {
    /// Opens a [`SessionScope::FullSpace`] session on the exhaustive
    /// system of `scenario`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExceeded`] when the scenario
    /// overflows the run or view id space.
    pub fn exhaustive(scenario: &Scenario) -> Result<Self, ModelError> {
        Self::exhaustive_with_repr(scenario, SetReprKind::Dense)
    }

    /// [`exhaustive`](EngineSession::exhaustive) with an explicit
    /// set-representation backend for the session's knowledge cache.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExceeded`] when the scenario
    /// overflows the run or view id space.
    pub fn exhaustive_with_repr(
        scenario: &Scenario,
        repr: SetReprKind,
    ) -> Result<Self, ModelError> {
        let system = SystemBuilder::new(scenario).build()?;
        Ok(Self::from_system_with_repr(system, SessionScope::FullSpace, repr))
    }

    /// Opens a session on an existing system. `scope` must reflect how
    /// the system was built: [`SessionScope::FullSpace`] only for
    /// exhaustive systems (the extension path re-enumerates the full
    /// pattern space and cross-checks run counts), and
    /// [`SessionScope::PinnedRuns`] for anything else.
    #[must_use]
    pub fn from_system(system: GeneratedSystem, scope: SessionScope) -> Self {
        Self::from_system_with_repr(system, scope, SetReprKind::Dense)
    }

    /// [`from_system`](EngineSession::from_system) with an explicit
    /// set-representation backend for the session's knowledge cache:
    /// [`SetReprKind::Dense`] stores word-block bitsets verbatim,
    /// [`SetReprKind::Shared`] interns cached artifacts into a
    /// hash-consed node table. Query results are bit-identical either
    /// way; the backend only changes how cached sets are stored and
    /// combined.
    #[must_use]
    pub fn from_system_with_repr(
        system: GeneratedSystem,
        scope: SessionScope,
        repr: SetReprKind,
    ) -> Self {
        EngineSession {
            system,
            cache: KnowledgeCache::with_repr(repr),
            scope,
            extensions: Vec::new(),
            threads: None,
        }
    }

    /// Pins the worker-thread count used by subsequent
    /// [`extend_to`](EngineSession::extend_to) calls. Unset, extensions
    /// use the builder's default (all available cores). The extended
    /// system is bit-identical either way — this is a throughput knob.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = Some(threads.max(1));
    }

    /// Grows the session's system to `horizon`, reusing base view rows
    /// per the session's [`SessionScope`], and advances the knowledge
    /// cache's epoch so no stale point-indexed artifact survives. Returns
    /// the reuse accounting of this step.
    ///
    /// Extension is gated on the scenario's exchange
    /// ([`eba_model::ExchangeKind::supports_session_extension`]):
    /// full-information and `digest:0` sessions extend; fingerprinted
    /// digest sessions (`digest:<bits>` with `bits > 0`) fail typed here
    /// and must be rebuilt at the target horizon.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScenario`] unless `horizon` strictly
    /// exceeds the current one, and [`ModelError::CapacityExceeded`] on
    /// id-space overflow of the extended system.
    pub fn extend_to(&mut self, horizon: u16) -> Result<ExtendReport, ModelError> {
        let target = self.system.scenario().with_horizon(horizon)?;
        let mut builder = SystemBuilder::new(&target);
        if let Some(threads) = self.threads {
            builder = builder.threads(threads);
        }
        let (system, report) = match self.scope {
            SessionScope::FullSpace => builder.extend(&self.system)?,
            SessionScope::PinnedRuns => builder.extend_pinned(&self.system)?,
        };
        self.system = system;
        self.cache.advance_epoch();
        self.extensions.push(report);
        Ok(report)
    }

    /// The session's current system.
    #[must_use]
    pub fn system(&self) -> &GeneratedSystem {
        &self.system
    }

    /// The session's current scenario.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        self.system.scenario()
    }

    /// The session's current horizon.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.system.horizon()
    }

    /// The session's scope.
    #[must_use]
    pub fn scope(&self) -> SessionScope {
        self.scope
    }

    /// The set-representation backend of the session's knowledge cache.
    #[must_use]
    pub fn set_repr(&self) -> SetReprKind {
        self.cache.set_repr()
    }

    /// The shared knowledge cache (clone it to share with ad-hoc
    /// evaluators over the session's current system).
    #[must_use]
    pub fn cache(&self) -> &KnowledgeCache {
        &self.cache
    }

    /// The cache epoch — equals the number of extensions performed.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.cache.epoch()
    }

    /// The reuse accounting of every extension performed so far, in
    /// order.
    #[must_use]
    pub fn extensions(&self) -> &[ExtendReport] {
        &self.extensions
    }

    /// A [`Constructor`] over the session's current system, wired to the
    /// session cache. The borrow ends before the next
    /// [`extend_to`](EngineSession::extend_to) — the borrow checker
    /// enforces that no evaluator built for an old horizon outlives the
    /// extension that invalidates it.
    #[must_use]
    pub fn constructor(&self) -> Constructor<'_> {
        Constructor::with_cache(&self.system, self.cache.clone())
    }

    /// An [`Evaluator`] over the session's current system, wired to the
    /// session cache; same borrow discipline as
    /// [`constructor`](EngineSession::constructor).
    #[must_use]
    pub fn evaluator(&self) -> Evaluator<'_> {
        Evaluator::with_cache(&self.system, self.cache.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_optimality, DecisionPair, FipDecisions};
    use eba_model::FailureMode;

    fn scenario() -> Scenario {
        Scenario::new(3, 1, FailureMode::Crash, 2).unwrap()
    }

    #[test]
    fn session_growth_matches_cold_builds() {
        let mut session = EngineSession::exhaustive(&scenario()).unwrap();
        for h in [3u16, 4] {
            session.extend_to(h).unwrap();
            let pair = session.constructor().optimize(&DecisionPair::empty(3));

            let cold_scenario = scenario().with_horizon(h).unwrap();
            let cold_system = GeneratedSystem::exhaustive(&cold_scenario);
            let mut cold_ctor = Constructor::new(&cold_system);
            let cold_pair = cold_ctor.optimize(&DecisionPair::empty(3));

            // Run ids are aligned by construction, so decisions compare
            // directly, run by run.
            let warm = FipDecisions::compute(session.system(), &pair, "warm");
            let cold = FipDecisions::compute(&cold_system, &cold_pair, "cold");
            assert_eq!(session.system().num_runs(), cold_system.num_runs());
            for r in cold_system.run_ids() {
                for p in eba_model::ProcessorId::all(3) {
                    assert_eq!(warm.decision(r, p), cold.decision(r, p), "run {r:?} {p}");
                }
            }
            assert!(check_optimality(&mut session.constructor(), &pair).is_optimal());
        }
        assert_eq!(session.epoch(), 2);
        assert_eq!(session.extensions().len(), 2);
    }

    #[test]
    fn extend_to_rejects_non_growth() {
        let mut session = EngineSession::exhaustive(&scenario()).unwrap();
        assert!(session.extend_to(2).is_err());
        assert!(session.extend_to(1).is_err());
        assert_eq!(session.epoch(), 0, "failed extensions must not advance");
    }

    #[test]
    fn extend_to_rejects_unsupported_exchange() {
        use eba_model::ExchangeKind;
        // digest:0 sessions extend like full-information ones…
        let d0 = scenario()
            .with_exchange(ExchangeKind::Digest { bits: 0 })
            .unwrap();
        let mut session = EngineSession::exhaustive(&d0).unwrap();
        assert!(session.extend_to(4).is_ok());
        // …fingerprinted digests are rebuild-only and fail typed.
        let d32 = scenario()
            .with_exchange(ExchangeKind::Digest { bits: 32 })
            .unwrap();
        let mut session = EngineSession::exhaustive(&d32).unwrap();
        let err = session.extend_to(4).unwrap_err();
        assert!(err.to_string().contains("session extension"), "{err}");
        assert_eq!(session.epoch(), 0, "failed extensions must not advance");
    }

    #[test]
    fn pinned_sessions_keep_their_run_set() {
        let base = GeneratedSystem::sampled(&scenario(), 20, 7);
        let runs = base.num_runs();
        let mut session = EngineSession::from_system(base, SessionScope::PinnedRuns);
        let report = session.extend_to(4).unwrap();
        assert_eq!(session.system().num_runs(), runs);
        assert_eq!(report.fresh_runs, 0);
        assert_eq!(report.reused_runs, runs);
        assert_eq!(session.horizon(), Time::new(4));
    }
}
