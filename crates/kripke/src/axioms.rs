//! Axiom checkers for the knowledge operators (Proposition 3.1 and
//! Lemma 3.4).
//!
//! These helpers verify, over a concrete generated system, that the
//! implemented operators satisfy the modal properties the paper proves:
//! S5 for `K_i`, and K45 + fixed point + induction + stability for
//! continual common knowledge. They are used by the test suites and by
//! experiment EXP8.

use crate::{Evaluator, Formula, NonRigidSet};
use eba_model::ProcessorId;

/// The outcome of one axiom check: the axiom's name and whether it held
/// (with a counterexample point rendered into the message when it did
/// not).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AxiomReport {
    /// Short axiom name (e.g. `"knowledge axiom"`).
    pub name: &'static str,
    /// `None` when the axiom held; otherwise a description of a failing
    /// point.
    pub violation: Option<String>,
}

impl AxiomReport {
    fn check(eval: &mut Evaluator<'_>, name: &'static str, f: &Formula) -> Self {
        let violation = eval
            .counterexample(f)
            .map(|(run, time)| format!("fails at run {}, {time} (formula {f})", run.index()));
        AxiomReport { name, violation }
    }

    /// Whether the axiom held.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// Checks the S5 properties of `K_i` (Proposition 3.1) on the given
/// formulas: distribution, knowledge, positive and negative introspection,
/// and knowledge generalization (only applicable when `φ` is valid).
pub fn check_s5(
    eval: &mut Evaluator<'_>,
    i: ProcessorId,
    phi: &Formula,
    psi: &Formula,
) -> Vec<AxiomReport> {
    let k = |f: &Formula| f.clone().known_by(i);
    let mut reports = Vec::new();

    // (a) knowledge generalization: if ⊨ φ then ⊨ K_i φ.
    if eval.valid(phi) {
        reports.push(AxiomReport::check(
            eval,
            "knowledge generalization",
            &k(phi),
        ));
    }
    // (b) distribution: (K_i φ ∧ K_i(φ ⇒ ψ)) ⇒ K_i ψ.
    let dist = k(phi)
        .and(k(&phi.clone().implies(psi.clone())))
        .implies(k(psi));
    reports.push(AxiomReport::check(eval, "distribution axiom", &dist));
    // (c) knowledge axiom: K_i φ ⇒ φ.
    reports.push(AxiomReport::check(
        eval,
        "knowledge axiom",
        &k(phi).implies(phi.clone()),
    ));
    // (d) positive introspection: K_i φ ⇒ K_i K_i φ.
    reports.push(AxiomReport::check(
        eval,
        "positive introspection",
        &k(phi).implies(k(&k(phi))),
    ));
    // (e) negative introspection: ¬K_i φ ⇒ K_i ¬K_i φ.
    reports.push(AxiomReport::check(
        eval,
        "negative introspection",
        &k(phi).not().implies(k(&k(phi).not())),
    ));
    reports
}

/// Checks the continual-common-knowledge properties of Lemma 3.4 on the
/// given formulas: K45 (distribution, positive and negative
/// introspection), generalization, the fixed-point axiom, the induction
/// rule, and stability (`C□_S φ ⇒ □̄ C□_S φ`).
pub fn check_continual_common(
    eval: &mut Evaluator<'_>,
    s: NonRigidSet,
    phi: &Formula,
    psi: &Formula,
) -> Vec<AxiomReport> {
    let cc = |f: &Formula| f.clone().continual_common(s);
    let mut reports = Vec::new();

    // (a) generalization: if ⊨ φ then ⊨ C□_S φ.
    if eval.valid(phi) {
        reports.push(AxiomReport::check(eval, "C□ generalization", &cc(phi)));
    }
    // (b) distribution.
    let dist = cc(phi)
        .and(cc(&phi.clone().implies(psi.clone())))
        .implies(cc(psi));
    reports.push(AxiomReport::check(eval, "C□ distribution", &dist));
    // (c) positive introspection: C□ φ ⇒ C□ C□ φ.
    reports.push(AxiomReport::check(
        eval,
        "C□ positive introspection",
        &cc(phi).implies(cc(&cc(phi))),
    ));
    // (d) negative introspection: ¬C□ φ ⇒ C□ ¬C□ φ.
    reports.push(AxiomReport::check(
        eval,
        "C□ negative introspection",
        &cc(phi).not().implies(cc(&cc(phi).not())),
    ));
    // (e) fixed-point axiom: C□ φ ⇒ E□_S (φ ∧ C□ φ).
    reports.push(AxiomReport::check(
        eval,
        "C□ fixed-point axiom",
        &cc(phi).implies(phi.clone().and(cc(phi)).everyone_box(s)),
    ));
    // (f) induction rule: if ⊨ φ ⇒ E□_S(φ ∧ ψ) then ⊨ φ ⇒ C□_S ψ.
    let premise = phi
        .clone()
        .implies(phi.clone().and(psi.clone()).everyone_box(s));
    if eval.valid(&premise) {
        reports.push(AxiomReport::check(
            eval,
            "C□ induction rule",
            &phi.clone().implies(cc(psi)),
        ));
    }
    // (g) stability: C□ φ ⇒ □̄ C□ φ.
    reports.push(AxiomReport::check(
        eval,
        "C□ stability",
        &cc(phi).implies(cc(phi).always_all()),
    ));
    // Strengthening: C□_S φ ⇒ C_S φ (continual common knowledge is
    // stronger than common knowledge — end of Section 3.3).
    reports.push(AxiomReport::check(
        eval,
        "C□ implies C",
        &cc(phi).implies(phi.clone().common(s)),
    ));
    reports
}

/// Convenience: run [`check_s5`] and [`check_continual_common`] over a
/// batch of formulas and return only the violations.
pub fn all_violations(
    eval: &mut Evaluator<'_>,
    processors: &[ProcessorId],
    sets: &[NonRigidSet],
    formulas: &[Formula],
) -> Vec<AxiomReport> {
    let mut violations = Vec::new();
    for phi in formulas {
        for psi in formulas {
            for &i in processors {
                violations.extend(
                    check_s5(eval, i, phi, psi)
                        .into_iter()
                        .filter(|r| !r.holds()),
                );
            }
            for &s in sets {
                violations.extend(
                    check_continual_common(eval, s, phi, psi)
                        .into_iter()
                        .filter(|r| !r.holds()),
                );
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{FailureMode, Scenario, Value};
    use eba_sim::GeneratedSystem;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn s5_holds_on_crash_system() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        let mut eval = Evaluator::new(&system);
        let phi = Formula::exists(Value::Zero);
        let psi = Formula::exists(Value::One);
        for i in 0..3 {
            for report in check_s5(&mut eval, p(i), &phi, &psi) {
                assert!(report.holds(), "{}: {:?}", report.name, report.violation);
            }
        }
    }

    #[test]
    fn continual_common_axioms_hold_on_crash_system() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        let mut eval = Evaluator::new(&system);
        let phi = Formula::exists(Value::Zero);
        let psi = Formula::exists(Value::Zero).or(Formula::exists(Value::One));
        for report in check_continual_common(&mut eval, NonRigidSet::Nonfaulty, &phi, &psi) {
            assert!(report.holds(), "{}: {:?}", report.name, report.violation);
        }
    }

    #[test]
    fn continual_common_axioms_hold_on_omission_system() {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        let mut eval = Evaluator::new(&system);
        let phi = Formula::exists(Value::One);
        let psi = Formula::exists(Value::Zero);
        for report in check_continual_common(&mut eval, NonRigidSet::Nonfaulty, &phi, &psi) {
            assert!(report.holds(), "{}: {:?}", report.name, report.violation);
        }
    }

    #[test]
    fn all_violations_finds_nothing_on_valid_operators() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        let mut eval = Evaluator::new(&system);
        let formulas = [
            Formula::exists(Value::Zero),
            Formula::exists(Value::One),
            Formula::exists(Value::Zero).known_by(p(0)),
        ];
        let violations = all_violations(
            &mut eval,
            &[p(0), p(1)],
            &[NonRigidSet::Nonfaulty, NonRigidSet::Everyone],
            &formulas,
        );
        assert!(violations.is_empty(), "{violations:?}");
    }
}
