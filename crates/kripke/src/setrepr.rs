//! Pluggable set representations: the dense word-block backend and the
//! shared hash-consed node-table backend.
//!
//! Every set the knowledge engine manipulates — satisfaction bitsets,
//! per-processor scope columns, the membership words of registered
//! state-set families — is ultimately a `u64` word vector. The **dense**
//! backend (the default) stores each vector outright; it is today's
//! word-block representation, untouched. The **shared** backend stores
//! vectors in one [`NodeTable`]: a hash-consed binary tree over the word
//! index axis, where leaves are interned words and branches are interned
//! `(lo, hi)` pairs covering power-of-two word ranges (vectors are
//! conceptually zero-padded to the next power of two, and all-zero
//! subtrees collapse into one shared ladder). Structural hash-consing
//! makes the representation **canonical** — equal content yields equal
//! root ids — so the thousands of near-identical reachability, scope,
//! and decision-family sets a sweep produces share their common subtrees
//! instead of each owning a full bitmask, and content equality is one id
//! compare.
//!
//! # Memoization discipline (why results stay bit-identical)
//!
//! The shared backend never *computes* differently: plan kernels, the
//! gfp fixpoint, and reachability assembly all run on dense words
//! exactly as before, so decisions, optimality verdicts, and iteration
//! counts are bit-identical by construction (`tests/setrepr_equivalence.rs`
//! enforces this differentially). Sharing engages at the **storage**
//! layer — [`crate::KnowledgeCache`] keys and scope columns, plus the
//! plan executor's per-node interning — and at the boolean-combination
//! layer, where `And`/`Or` plan nodes whose operands are already interned
//! are combined by the memoized [`NodeTable::apply`] (one memo entry per
//! distinct `(op, lo, hi)` sub-combination) and the result is provably
//! the same node the dense result would intern to, because zero padding
//! is closed under `and`/`or`/`and-not` and consing is canonical.
//!
//! The table is monotonic: nodes are never garbage-collected
//! individually. Its lifetime is the cache's epoch — horizon extension
//! ([`crate::KnowledgeCache::advance_epoch`]) and [`clear`](NodeTable::clear)
//! drop the whole table (every root interned under the old point space
//! is stale anyway), and the serve pool reclaims it by evicting the
//! owning session. [`NodeTable::approx_bytes`] feeds
//! [`crate::CacheStats::resident_bytes`] so LRU eviction stays honest.

use std::collections::HashMap;
use std::fmt;

/// Which set-representation backend a [`crate::KnowledgeCache`] (and
/// everything wired to it) runs; see the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SetReprKind {
    /// Explicit word-block bitsets — today's representation, the
    /// differential-oracle default.
    #[default]
    Dense,
    /// Hash-consed node-table storage with an operation memo cache;
    /// bit-identical results, shared structure.
    Shared,
}

impl SetReprKind {
    /// Parses a CLI/protocol spelling (`"dense"` / `"shared"`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "dense" => Some(SetReprKind::Dense),
            "shared" => Some(SetReprKind::Shared),
            _ => None,
        }
    }

    /// The canonical spelling (`"dense"` / `"shared"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SetReprKind::Dense => "dense",
            SetReprKind::Shared => "shared",
        }
    }
}

impl fmt::Display for SetReprKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tag bit separating branch ids from leaf ids inside a [`NodeId`].
const BRANCH_BIT: u32 = 1 << 31;

/// A node of a [`NodeTable`]: an interned leaf word or an interned
/// `(lo, hi)` branch. The high bit of the raw id is the discriminant,
/// leaving 2³¹ ids per kind — far beyond any real table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(u32);

impl NodeId {
    fn leaf(index: u32) -> Self {
        debug_assert_eq!(index & BRANCH_BIT, 0, "leaf id space exhausted");
        NodeId(index)
    }

    fn branch(index: u32) -> Self {
        debug_assert_eq!(index & BRANCH_BIT, 0, "branch id space exhausted");
        NodeId(index | BRANCH_BIT)
    }

    fn is_leaf(self) -> bool {
        self.0 & BRANCH_BIT == 0
    }

    fn index(self) -> usize {
        (self.0 & !BRANCH_BIT) as usize
    }

    /// The raw tagged id (for key digests).
    pub(crate) fn raw(self) -> u32 {
        self.0
    }
}

/// A handle to a word vector interned in a [`NodeTable`]: the root node
/// plus the (untrimmed) word length. Within one table, two handles are
/// equal **iff** their vectors are word-for-word equal — consing is
/// canonical — so handle equality replaces content comparison.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SharedWords {
    root: NodeId,
    len: u32,
}

impl SharedWords {
    /// The interned vector's word length.
    #[must_use]
    pub fn len_words(self) -> usize {
        self.len as usize
    }

    /// The root node id.
    #[must_use]
    pub fn root(self) -> NodeId {
        self.root
    }
}

/// A binary word-lane operation combinable through [`NodeTable::apply`].
/// All three preserve all-zero padding (`0 op 0 = 0`), which is what
/// keeps native combination canonical; complement does not and must go
/// through dense recomputation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeOp {
    /// `a & b`.
    And,
    /// `a | b`.
    Or,
    /// `a & !b`.
    AndNot,
}

impl NodeOp {
    fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            NodeOp::And => a & b,
            NodeOp::Or => a | b,
            NodeOp::AndNot => a & !b,
        }
    }
}

/// A snapshot of a [`NodeTable`]'s size and counters; see
/// [`NodeTable::stats`]. The hit/miss counters are monotonic over the
/// table's lifetime and survive [`NodeTable::clear`]; `nodes` and
/// `bytes` reflect current residency.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SetReprStats {
    /// Nodes currently resident (leaves plus branches).
    pub nodes: u64,
    /// Word vectors interned over the table's lifetime.
    pub interned_sets: u64,
    /// Cons requests answered by an existing node (structure shared).
    pub dedup_hits: u64,
    /// Cons requests that created a fresh node.
    pub fresh_nodes: u64,
    /// [`NodeTable::apply`] sub-combinations served from the memo.
    pub memo_hits: u64,
    /// [`NodeTable::apply`] sub-combinations computed fresh.
    pub memo_misses: u64,
    /// Approximate resident heap bytes of the table.
    pub bytes: u64,
}

impl SetReprStats {
    /// Fraction of cons requests answered structurally (`0.0` on an
    /// untouched table).
    #[must_use]
    pub fn dedup_ratio(&self) -> f64 {
        let total = self.dedup_hits + self.fresh_nodes;
        if total == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / total as f64
        }
    }
}

/// The shared backend's hash-consed node table; see the module docs.
#[derive(Debug, Default)]
pub struct NodeTable {
    /// Interned leaf words, by leaf index.
    leaves: Vec<u64>,
    leaf_map: HashMap<u64, u32>,
    /// Interned `(lo, hi)` branches, by branch index. A branch at height
    /// `h` covers `2^h` word slots; its children cover the halves.
    branches: Vec<(NodeId, NodeId)>,
    branch_map: HashMap<(NodeId, NodeId), u32>,
    /// The `apply` operation memo: `(op, a, b) → result`, one entry per
    /// distinct sub-combination ever computed.
    memo: HashMap<(NodeOp, NodeId, NodeId), NodeId>,
    /// `zero_ladder[h]` is the all-zero subtree of height `h` — the
    /// shared padding every non-power-of-two vector hangs off.
    zero_ladder: Vec<NodeId>,
    interned_sets: u64,
    dedup_hits: u64,
    fresh_nodes: u64,
    memo_hits: u64,
    memo_misses: u64,
}

impl NodeTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        NodeTable::default()
    }

    /// Nodes currently resident (leaves plus branches).
    #[must_use]
    pub fn len_nodes(&self) -> usize {
        self.leaves.len() + self.branches.len()
    }

    /// Approximate resident heap bytes: node payloads plus memo entries
    /// (hash-map overhead is ignored, matching the dense side's
    /// accounting, which ignores `Vec` overhead).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.leaves.len() * size_of::<u64>()
            + self.branches.len() * size_of::<(NodeId, NodeId)>()
            + self.memo.len() * size_of::<((NodeOp, NodeId, NodeId), NodeId)>()
    }

    /// A snapshot of the table's counters.
    #[must_use]
    pub fn stats(&self) -> SetReprStats {
        SetReprStats {
            nodes: self.len_nodes() as u64,
            interned_sets: self.interned_sets,
            dedup_hits: self.dedup_hits,
            fresh_nodes: self.fresh_nodes,
            memo_hits: self.memo_hits,
            memo_misses: self.memo_misses,
            bytes: self.approx_bytes() as u64,
        }
    }

    /// Drops every node and memo entry (counters survive). All
    /// outstanding [`SharedWords`] handles become invalid; the knowledge
    /// cache calls this exactly when it also purges every entry holding
    /// such a handle (epoch advance and [`crate::KnowledgeCache::clear`]).
    pub fn clear(&mut self) {
        self.leaves.clear();
        self.leaf_map.clear();
        self.branches.clear();
        self.branch_map.clear();
        self.memo.clear();
        self.zero_ladder.clear();
    }

    fn leaf(&mut self, word: u64) -> NodeId {
        if let Some(&index) = self.leaf_map.get(&word) {
            self.dedup_hits += 1;
            return NodeId::leaf(index);
        }
        self.fresh_nodes += 1;
        let index = u32::try_from(self.leaves.len()).expect("node-table leaf id space exhausted");
        self.leaves.push(word);
        self.leaf_map.insert(word, index);
        NodeId::leaf(index)
    }

    fn branch(&mut self, lo: NodeId, hi: NodeId) -> NodeId {
        if let Some(&index) = self.branch_map.get(&(lo, hi)) {
            self.dedup_hits += 1;
            return NodeId::branch(index);
        }
        self.fresh_nodes += 1;
        let index =
            u32::try_from(self.branches.len()).expect("node-table branch id space exhausted");
        self.branches.push((lo, hi));
        self.branch_map.insert((lo, hi), index);
        NodeId::branch(index)
    }

    /// The all-zero subtree of `height` (0 = the zero leaf).
    fn zero(&mut self, height: usize) -> NodeId {
        while self.zero_ladder.len() <= height {
            let next = match self.zero_ladder.last() {
                None => self.leaf(0),
                Some(&z) => self.branch(z, z),
            };
            self.zero_ladder.push(next);
        }
        self.zero_ladder[height]
    }

    /// Interns a word vector, sharing every identical subtree already in
    /// the table. Two calls with word-for-word equal input return equal
    /// handles (canonicity); the input is **not** trimmed or otherwise
    /// normalized, so callers must pass canonical vectors if they want
    /// logical-set equality (bitsets over one point space and trimmed
    /// `ViewSet` words both qualify).
    pub fn intern_words(&mut self, words: &[u64]) -> SharedWords {
        self.interned_sets += 1;
        let len = u32::try_from(words.len()).expect("node-table vectors are bounded by u32 words");
        if words.is_empty() {
            let root = self.zero(0);
            return SharedWords { root, len };
        }
        let mut level: Vec<NodeId> = Vec::with_capacity(words.len());
        for &w in words {
            let id = self.leaf(w);
            level.push(id);
        }
        let mut height = 0;
        while level.len() > 1 {
            if level.len() % 2 == 1 {
                let pad = self.zero(height);
                level.push(pad);
            }
            let mut parents = Vec::with_capacity(level.len() / 2);
            for pair in 0..level.len() / 2 {
                let id = self.branch(level[2 * pair], level[2 * pair + 1]);
                parents.push(id);
            }
            level = parents;
            height += 1;
        }
        SharedWords {
            root: level[0],
            len,
        }
    }

    /// Writes the interned vector back into `out` (which must have
    /// exactly `set.len_words()` slots). Every in-range slot is written,
    /// so `out` need not be zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the handle's word length, or if
    /// the handle was not produced by this table (detected structurally
    /// in the best case; handles must never cross tables).
    pub fn materialize_into(&self, set: SharedWords, out: &mut [u64]) {
        assert_eq!(
            out.len(),
            set.len_words(),
            "materialization buffer length must match the interned vector"
        );
        if out.is_empty() {
            return;
        }
        let height = usize::try_from(usize::BITS - (out.len() - 1).leading_zeros())
            .expect("height fits usize");
        self.fill(set.root, height, 0, out);
    }

    fn fill(&self, node: NodeId, height: usize, base: usize, out: &mut [u64]) {
        if base >= out.len() {
            return; // zero-padding region past the vector's end
        }
        if height == 0 {
            out[base] = self.leaves[node.index()];
        } else {
            let (lo, hi) = self.branches[node.index()];
            let half = 1usize << (height - 1);
            self.fill(lo, height - 1, base, out);
            self.fill(hi, height - 1, base + half, out);
        }
    }

    /// Combines two same-length interned vectors natively, memoizing
    /// every sub-combination. The result handle is exactly what interning
    /// the dense word-wise result would produce (padding is closed under
    /// every [`NodeOp`] and consing is canonical), so callers may use it
    /// interchangeably — the differential suite asserts this.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different word lengths.
    pub fn apply(&mut self, op: NodeOp, a: SharedWords, b: SharedWords) -> SharedWords {
        assert_eq!(
            a.len, b.len,
            "apply requires same-length operands (same point space)"
        );
        if a.len == 0 {
            return a;
        }
        let root = self.apply_node(op, a.root, b.root);
        SharedWords { root, len: a.len }
    }

    fn apply_node(&mut self, op: NodeOp, a: NodeId, b: NodeId) -> NodeId {
        if a == b && matches!(op, NodeOp::And | NodeOp::Or) {
            return a; // idempotent on identical subtrees
        }
        debug_assert_eq!(
            a.is_leaf(),
            b.is_leaf(),
            "apply operands must have equal height (handles from one table, same length)"
        );
        if a.is_leaf() {
            let word = op.eval(self.leaves[a.index()], self.leaves[b.index()]);
            return self.leaf(word);
        }
        if let Some(&cached) = self.memo.get(&(op, a, b)) {
            self.memo_hits += 1;
            return cached;
        }
        self.memo_misses += 1;
        let (a_lo, a_hi) = self.branches[a.index()];
        let (b_lo, b_hi) = self.branches[b.index()];
        let lo = self.apply_node(op, a_lo, b_lo);
        let hi = self.apply_node(op, a_hi, b_hi);
        let result = self.branch(lo, hi);
        self.memo.insert((op, a, b), result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word soup (same generator as the kernel tests).
    fn soup(seed: u64, len: usize) -> Vec<u64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                state
            })
            .collect()
    }

    #[test]
    fn intern_round_trips_across_lengths() {
        let mut table = NodeTable::new();
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 100] {
            let words = soup(len as u64 + 1, len);
            let handle = table.intern_words(&words);
            assert_eq!(handle.len_words(), len);
            let mut out = vec![u64::MAX; len];
            table.materialize_into(handle, &mut out);
            assert_eq!(out, words, "round trip at {len} words");
        }
    }

    #[test]
    fn interning_is_canonical() {
        let mut table = NodeTable::new();
        let words = soup(9, 13);
        let a = table.intern_words(&words);
        let nodes_after_first = table.len_nodes();
        let b = table.intern_words(&words);
        assert_eq!(a, b, "equal content must yield equal handles");
        assert_eq!(
            table.len_nodes(),
            nodes_after_first,
            "re-interning must create no nodes"
        );
        let mut different = words.clone();
        different[5] ^= 1;
        assert_ne!(table.intern_words(&different), a);
        assert!(table.stats().dedup_hits > 0);
    }

    #[test]
    fn shared_structure_dedups_across_vectors() {
        let mut table = NodeTable::new();
        let base = soup(3, 64);
        let _ = table.intern_words(&base);
        let nodes_before = table.len_nodes();
        // One word flipped: only the path to the root is fresh — at most
        // one leaf plus log2(64) branches.
        let mut variant = base.clone();
        variant[17] = !variant[17];
        let _ = table.intern_words(&variant);
        assert!(
            table.len_nodes() <= nodes_before + 1 + 6,
            "a one-word variant must share all off-path structure \
             ({} -> {})",
            nodes_before,
            table.len_nodes()
        );
    }

    #[test]
    fn apply_matches_dense_word_ops() {
        let mut table = NodeTable::new();
        for len in [1usize, 3, 8, 11, 64] {
            let a_words = soup(0xA, len);
            let b_words = soup(0xB, len);
            let a = table.intern_words(&a_words);
            let b = table.intern_words(&b_words);
            for op in [NodeOp::And, NodeOp::Or, NodeOp::AndNot] {
                let native = table.apply(op, a, b);
                let dense: Vec<u64> = a_words
                    .iter()
                    .zip(&b_words)
                    .map(|(&x, &y)| op.eval(x, y))
                    .collect();
                let reinterned = table.intern_words(&dense);
                assert_eq!(
                    native, reinterned,
                    "apply({op:?}) must equal interning the dense result at {len} words"
                );
            }
        }
        let stats = table.stats();
        assert!(stats.memo_misses > 0);
    }

    #[test]
    fn apply_memoizes_repeated_combinations() {
        let mut table = NodeTable::new();
        let a = table.intern_words(&soup(0xC, 32));
        let b = table.intern_words(&soup(0xD, 32));
        let first = table.apply(NodeOp::And, a, b);
        let misses = table.stats().memo_misses;
        let second = table.apply(NodeOp::And, a, b);
        assert_eq!(first, second);
        assert_eq!(
            table.stats().memo_misses,
            misses,
            "repeat combination must be fully memo-served"
        );
        assert!(table.stats().memo_hits > 0);
    }

    #[test]
    fn zero_padding_is_shared() {
        let mut table = NodeTable::new();
        // Two different odd lengths both hang off the shared zero ladder.
        let _ = table.intern_words(&soup(1, 5));
        let nodes = table.len_nodes();
        let _ = table.intern_words(&soup(2, 9));
        // The 9-word tree needs its own leaves/branches but no new zero
        // subtrees beyond one taller ladder rung.
        assert!(table.len_nodes() > nodes);
        let rendered = format!("{:?}", table.stats());
        assert!(rendered.contains("dedup_hits"));
    }

    #[test]
    fn clear_drops_nodes_but_keeps_history() {
        let mut table = NodeTable::new();
        let _ = table.intern_words(&soup(5, 16));
        assert!(table.len_nodes() > 0);
        let interned = table.stats().interned_sets;
        table.clear();
        assert_eq!(table.len_nodes(), 0);
        assert_eq!(table.approx_bytes(), 0);
        assert_eq!(table.stats().interned_sets, interned);
        // The table is reusable after a clear.
        let h = table.intern_words(&[7, 8]);
        let mut out = [0u64; 2];
        table.materialize_into(h, &mut out);
        assert_eq!(out, [7, 8]);
    }

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!(SetReprKind::parse("dense"), Some(SetReprKind::Dense));
        assert_eq!(SetReprKind::parse("shared"), Some(SetReprKind::Shared));
        assert_eq!(SetReprKind::parse("bdd"), None);
        assert_eq!(SetReprKind::default(), SetReprKind::Dense);
        assert_eq!(SetReprKind::Shared.to_string(), "shared");
    }

    #[test]
    fn dedup_ratio_is_well_defined() {
        let empty = SetReprStats::default();
        assert_eq!(empty.dedup_ratio(), 0.0);
        let mut table = NodeTable::new();
        let words = soup(11, 32);
        let _ = table.intern_words(&words);
        let _ = table.intern_words(&words);
        let ratio = table.stats().dedup_ratio();
        assert!(ratio > 0.0 && ratio < 1.0, "{ratio}");
    }
}
