//! Experiment EXP4; see `eba_bench::experiments::exp4`.
fn main() {
    for table in eba_bench::experiments::exp4() {
        table.print();
    }
}
