//! `FIP(Z, O)`: deriving decisions from a decision pair over a generated
//! system.

use crate::DecisionPair;
use eba_model::{ProcSet, ProcessorId, Time, Value};
use eba_sim::{Decision, GeneratedSystem, RunId};

/// A conflict: a processor whose state entered both `Z_i` and `O_i` at the
/// same time.
///
/// Well-formed decision pairs never conflict for *nonfaulty* processors
/// (the constructions of Section 5 guarantee it — `Z'_i` requires
/// `C□ ∃0`, `O'_i` requires `¬C□ ∃0`); a faulty processor that knows it
/// is faulty satisfies every `B^N_i` vacuously and may conflict, which is
/// harmless since only nonfaulty decisions matter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Conflict {
    /// The run in which the conflict occurred.
    pub run: RunId,
    /// The conflicted processor.
    pub proc: ProcessorId,
    /// The time at which both decision sets first contained its state.
    pub time: Time,
}

/// The decisions of `FIP(Z, O)` across an entire generated system.
///
/// Produced by [`FipDecisions::compute`]; indexed by `(run, processor)`.
#[derive(Clone, Debug)]
pub struct FipDecisions {
    name: String,
    times: usize,
    n: usize,
    decisions: Vec<Option<Decision>>,
    conflicts: Vec<Conflict>,
}

impl FipDecisions {
    /// Runs `FIP(Z, O)` over the system: every processor decides the
    /// first time its view enters a decision set; decisions are
    /// irreversible. Ties between `Z_i` and `O_i` are recorded as
    /// [`Conflict`]s and resolved in favor of 0 (documented, arbitrary —
    /// nonfaulty processors never conflict under the paper's
    /// constructions, which the test suites assert).
    ///
    /// # Panics
    ///
    /// Panics if the pair's processor count differs from the system's.
    #[must_use]
    pub fn compute(system: &GeneratedSystem, pair: &DecisionPair, name: impl Into<String>) -> Self {
        assert_eq!(
            pair.n(),
            system.n(),
            "decision pair does not match the system"
        );
        let n = system.n();
        let times = system.horizon().index() + 1;
        let mut decisions = vec![None; system.num_runs() * n];
        let mut conflicts = Vec::new();

        for run in system.run_ids() {
            for p in ProcessorId::all(n) {
                let slot = run.index() * n + p.index();
                'time: for time in Time::upto(system.horizon()) {
                    let view = system.view(run, p, time);
                    let in_zero = pair.zero().contains(p, view);
                    let in_one = pair.one().contains(p, view);
                    if in_zero && in_one {
                        conflicts.push(Conflict { run, proc: p, time });
                    }
                    let value = if in_zero {
                        Value::Zero
                    } else if in_one {
                        Value::One
                    } else {
                        continue 'time;
                    };
                    decisions[slot] = Some(Decision { value, time });
                    break 'time;
                }
            }
        }

        FipDecisions {
            name: name.into(),
            times,
            n,
            decisions,
            conflicts,
        }
    }

    /// A short name for reports (e.g. `"F^{Λ,2}"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of runs covered.
    #[must_use]
    pub fn num_runs(&self) -> usize {
        self.decisions.len() / self.n
    }

    /// Number of times per run (horizon + 1).
    #[must_use]
    pub fn times(&self) -> usize {
        self.times
    }

    /// The decision of processor `p` in run `r`, if any.
    #[must_use]
    pub fn decision(&self, r: RunId, p: ProcessorId) -> Option<Decision> {
        self.decisions[r.index() * self.n + p.index()]
    }

    /// The decision time of `p` in `r`, if it decides.
    #[must_use]
    pub fn decision_time(&self, r: RunId, p: ProcessorId) -> Option<Time> {
        self.decision(r, p).map(|d| d.time)
    }

    /// All recorded conflicts.
    #[must_use]
    pub fn conflicts(&self) -> &[Conflict] {
        &self.conflicts
    }

    /// Conflicts involving processors that are *nonfaulty* in the
    /// conflicting run — these indicate a malformed decision pair.
    #[must_use]
    pub fn nonfaulty_conflicts(&self, system: &GeneratedSystem) -> Vec<Conflict> {
        self.conflicts
            .iter()
            .copied()
            .filter(|c| system.nonfaulty(c.run).contains(c.proc))
            .collect()
    }

    /// The distinct values decided by the given processors in run `r`.
    #[must_use]
    pub fn decided_values(&self, r: RunId, among: ProcSet) -> Vec<Value> {
        let mut values: Vec<Value> = among
            .iter()
            .filter_map(|p| self.decision(r, p).map(|d| d.value))
            .collect();
        values.sort_unstable();
        values.dedup();
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_kripke::StateSets;
    use eba_model::{FailureMode, Scenario};

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    fn system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    /// The decision pair "decide your own initial value at time 0" —
    /// not an agreement protocol, but a sharp test of the mechanics.
    fn own_value_pair(system: &GeneratedSystem) -> DecisionPair {
        let table = system.table();
        let mut zero = StateSets::empty(3);
        let mut one = StateSets::empty(3);
        for v in table.ids() {
            let owner = table.proc(v);
            match table.own_value(v) {
                Value::Zero => zero.insert(owner, v),
                Value::One => one.insert(owner, v),
            };
        }
        DecisionPair::new(zero, one)
    }

    #[test]
    fn empty_pair_never_decides() {
        let system = system();
        let d = FipDecisions::compute(&system, &DecisionPair::empty(3), "F^Λ");
        for r in system.run_ids() {
            for i in 0..3 {
                assert_eq!(d.decision(r, p(i)), None);
            }
        }
        assert!(d.conflicts().is_empty());
        assert_eq!(d.name(), "F^Λ");
    }

    #[test]
    fn own_value_pair_decides_at_time_zero() {
        let system = system();
        let d = FipDecisions::compute(&system, &own_value_pair(&system), "own-value");
        for r in system.run_ids() {
            let config = &system.run(r).config;
            for i in 0..3 {
                let dec = d.decision(r, p(i)).unwrap();
                assert_eq!(dec.time, Time::ZERO);
                assert_eq!(dec.value, config.value(p(i)));
            }
        }
        assert!(d.conflicts().is_empty());
    }

    #[test]
    fn decisions_are_irreversible_first_hit() {
        // A pair whose Z contains p0's time-0 zero view and whose O
        // contains every later view: the time-0 decision must win.
        let system = system();
        let table = system.table();
        let mut zero = StateSets::empty(3);
        let mut one = StateSets::empty(3);
        for v in table.ids() {
            if table.proc(v) != p(0) {
                continue;
            }
            if table.time(v) == Time::ZERO && table.own_value(v) == Value::Zero {
                zero.insert(p(0), v);
            }
            if table.time(v) > Time::ZERO {
                one.insert(p(0), v);
            }
        }
        let d = FipDecisions::compute(&system, &DecisionPair::new(zero, one), "latch");
        for r in system.run_ids() {
            // A p0 that crashes immediately never reaches a time-1 view;
            // restrict to runs where it is nonfaulty.
            if !system.nonfaulty(r).contains(p(0)) {
                continue;
            }
            let config = &system.run(r).config;
            let dec = d.decision(r, p(0)).unwrap();
            if config.value(p(0)) == Value::Zero {
                assert_eq!(dec.value, Value::Zero);
                assert_eq!(dec.time, Time::ZERO);
            } else {
                assert_eq!(dec.value, Value::One);
            }
        }
    }

    #[test]
    fn conflicts_are_detected() {
        let system = system();
        let table = system.table();
        // Put p0's every view in both sets.
        let mut zero = StateSets::empty(3);
        let mut one = StateSets::empty(3);
        for v in table.ids() {
            if table.proc(v) == p(0) {
                zero.insert(p(0), v);
                one.insert(p(0), v);
            }
        }
        let d = FipDecisions::compute(&system, &DecisionPair::new(zero, one), "conflicted");
        assert!(!d.conflicts().is_empty());
        // Ties resolve to 0.
        for r in system.run_ids() {
            assert_eq!(d.decision(r, p(0)).unwrap().value, Value::Zero);
        }
        assert!(!d.nonfaulty_conflicts(&system).is_empty());
    }

    #[test]
    fn decided_values_collects_distinct() {
        let system = system();
        let d = FipDecisions::compute(&system, &own_value_pair(&system), "own-value");
        let mixed = system
            .find_run(
                &eba_model::InitialConfig::from_bits(3, 0b001),
                &eba_model::FailurePattern::failure_free(3),
            )
            .unwrap();
        let values = d.decided_values(mixed, ProcSet::full(3));
        assert_eq!(values, vec![Value::Zero, Value::One]);
    }

    #[test]
    #[allow(unused_must_use)]
    #[should_panic(expected = "does not match")]
    fn mismatched_pair_rejected() {
        let system = system();
        FipDecisions::compute(&system, &DecisionPair::empty(4), "bad");
    }
}
