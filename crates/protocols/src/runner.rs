//! Campaign runners: execute a protocol across exhaustive or sampled run
//! sets, validating properties and collecting decision statistics.

use eba_model::{enumerate, sample, FailurePattern, InitialConfig, Scenario, ScenarioSpace};
use eba_sim::chaos::{supervised_indexed, EngineFault, FaultInjector, FaultSite, NoChaos};
use eba_sim::stats::DecisionStats;
use eba_sim::{execute_unchecked, Protocol};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// Aggregate results of running one protocol over a set of runs.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Protocol name.
    pub protocol: String,
    /// Scenario description.
    pub scenario: String,
    /// Number of runs executed.
    pub runs: u64,
    /// Decision-time statistics over nonfaulty processors.
    pub stats: DecisionStats,
    /// Runs violating weak agreement.
    pub agreement_violations: u64,
    /// Runs violating weak validity.
    pub validity_violations: u64,
    /// Runs in which some nonfaulty processor did not decide within the
    /// horizon.
    pub decision_violations: u64,
    /// Runs whose nonfaulty decisions were not simultaneous.
    pub non_simultaneous: u64,
    /// Total messages delivered across all runs.
    pub messages_delivered: u64,
}

impl CampaignReport {
    /// Whether every executed run satisfied weak agreement and weak
    /// validity.
    #[must_use]
    pub fn safe(&self) -> bool {
        self.agreement_violations == 0 && self.validity_violations == 0
    }

    /// Whether every run additionally satisfied the decision property.
    #[must_use]
    pub fn live(&self) -> bool {
        self.safe() && self.decision_violations == 0
    }

    /// Folds another report (over a disjoint slice of the same campaign)
    /// into this one. Every field is a sum or a merge, so the result is
    /// independent of merge order.
    pub fn merge(&mut self, other: &CampaignReport) {
        self.runs += other.runs;
        self.stats.merge(&other.stats);
        self.agreement_violations += other.agreement_violations;
        self.validity_violations += other.validity_violations;
        self.decision_violations += other.decision_violations;
        self.non_simultaneous += other.non_simultaneous;
        self.messages_delivered += other.messages_delivered;
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: runs={} {} agree-viol={} valid-viol={} undecided-runs={}",
            self.protocol,
            self.scenario,
            self.runs,
            self.stats,
            self.agreement_violations,
            self.validity_violations,
            self.decision_violations,
        )
    }
}

/// Runs `protocol` over an explicit list of `(config, pattern)` runs.
pub fn run_campaign<P: Protocol>(
    protocol: &P,
    scenario: &Scenario,
    runs: impl IntoIterator<Item = (InitialConfig, FailurePattern)>,
) -> CampaignReport {
    let mut report = CampaignReport {
        protocol: protocol.name().to_owned(),
        scenario: scenario.to_string(),
        runs: 0,
        stats: DecisionStats::new(),
        agreement_violations: 0,
        validity_violations: 0,
        decision_violations: 0,
        non_simultaneous: 0,
        messages_delivered: 0,
    };
    for (config, pattern) in runs {
        let trace = execute_unchecked(protocol, &config, &pattern, scenario.horizon());
        report.runs += 1;
        report.stats.record_trace(&trace);
        report.agreement_violations += u64::from(!trace.satisfies_weak_agreement());
        report.validity_violations += u64::from(!trace.satisfies_weak_validity());
        report.decision_violations += u64::from(!trace.satisfies_decision());
        report.non_simultaneous += u64::from(!trace.satisfies_simultaneity());
        report.messages_delivered += trace.messages_delivered();
    }
    report
}

/// Runs `protocol` over **every** run of the scenario (all configurations
/// × all canonical failure patterns). Exponential; check
/// [`enumerate::count_patterns`] first.
pub fn run_exhaustive<P: Protocol>(protocol: &P, scenario: &Scenario) -> CampaignReport {
    let configs: Vec<InitialConfig> = InitialConfig::enumerate_all(scenario.n()).collect();
    let runs = enumerate::patterns(scenario).flat_map(|pattern| {
        configs
            .iter()
            .cloned()
            .map(move |config| (config, pattern.clone()))
            .collect::<Vec<_>>()
    });
    run_campaign(protocol, scenario, runs)
}

/// Runs `protocol` over every run of the scenario, splitting the pattern
/// axis into [`ScenarioSpace`] shards executed by `threads` worker
/// threads. Every aggregate in the report is commutative, so the result
/// equals [`run_exhaustive`] for any thread count.
pub fn run_exhaustive_threaded<P: Protocol + Sync>(
    protocol: &P,
    scenario: &Scenario,
    threads: usize,
) -> CampaignReport {
    match run_exhaustive_supervised(protocol, scenario, threads, &(Arc::new(NoChaos) as _)) {
        Ok(report) => report,
        // Unreachable without an injector: supervision retries a panicked
        // shard and falls back to sequential re-execution before erroring.
        Err(fault) => panic!("{fault}"),
    }
}

/// [`run_exhaustive_threaded`] with explicit worker supervision and fault
/// injection: each campaign shard runs under `catch_unwind`, a panicked
/// shard is retried once on a fresh thread and then recomputed
/// sequentially, and only a persistently failing shard surfaces as a
/// typed [`EngineFault`]. Aggregates merge in shard order, so the report
/// is identical to the sequential one whenever `Ok` is returned — even
/// when recovery paths were taken.
///
/// # Errors
///
/// Returns [`EngineFault::WorkerPanicked`] when a shard fails all
/// supervision attempts (in practice only under an injector that fires
/// three times at the same site).
pub fn run_exhaustive_supervised<P: Protocol + Sync>(
    protocol: &P,
    scenario: &Scenario,
    threads: usize,
    chaos: &Arc<dyn FaultInjector>,
) -> Result<CampaignReport, EngineFault> {
    let workers = threads.max(1);
    if workers == 1 {
        return Ok(run_exhaustive(protocol, scenario));
    }
    let space = ScenarioSpace::new(*scenario);
    let shards = space.shards(workers * 4);
    let configs: Vec<InitialConfig> = InitialConfig::enumerate_all(scenario.n()).collect();
    let (partials, _faults) =
        supervised_indexed(shards.len(), workers, FaultSite::CampaignShard, |index| {
            if let Err(e) = chaos.inject(FaultSite::CampaignShard, index) {
                panic!("{e}");
            }
            let runs = space.shard_patterns(shards[index]).flat_map(|pattern| {
                configs
                    .iter()
                    .cloned()
                    .map(move |config| (config, pattern.clone()))
            });
            run_campaign(protocol, scenario, runs)
        })?;
    let mut merged: Option<CampaignReport> = None;
    for partial in partials {
        match &mut merged {
            None => merged = Some(partial),
            Some(acc) => acc.merge(&partial),
        }
    }
    Ok(merged.expect("a scenario always has at least one shard"))
}

/// Runs `protocol` over `count` seeded random runs of the scenario.
pub fn run_sampled<P: Protocol>(
    protocol: &P,
    scenario: &Scenario,
    count: usize,
    seed: u64,
) -> CampaignReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = sample::PatternSampler::new(*scenario);
    let runs: Vec<(InitialConfig, FailurePattern)> = (0..count)
        .map(|_| {
            (
                sample::random_config(scenario.n(), &mut rng),
                sampler.sample(&mut rng),
            )
        })
        .collect();
    run_campaign(protocol, scenario, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChainOmission, FloodMin, P0Opt, Relay};
    use eba_model::FailureMode;

    #[test]
    fn exhaustive_p0_campaign_is_live() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        let report = run_exhaustive(&Relay::p0(1), &scenario);
        assert!(report.live(), "{report}");
        assert_eq!(report.runs, 8 * enumerate::count_patterns(&scenario) as u64);
        assert!(report.stats.decided() > 0);
    }

    #[test]
    fn exhaustive_p0opt_campaign_is_live() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        let report = run_exhaustive(&P0Opt::new(1), &scenario);
        assert!(report.live(), "{report}");
    }

    #[test]
    fn threaded_campaign_matches_sequential() {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        let sequential = run_exhaustive(&Relay::p0(1), &scenario);
        for threads in [1, 2, 5] {
            let threaded = run_exhaustive_threaded(&Relay::p0(1), &scenario, threads);
            assert_eq!(threaded.runs, sequential.runs, "{threads} threads");
            assert_eq!(threaded.stats.histogram(), sequential.stats.histogram());
            assert_eq!(threaded.stats.undecided(), sequential.stats.undecided());
            assert_eq!(threaded.messages_delivered, sequential.messages_delivered);
            assert_eq!(
                threaded.agreement_violations,
                sequential.agreement_violations
            );
            assert_eq!(threaded.non_simultaneous, sequential.non_simultaneous);
        }
    }

    #[test]
    fn sampled_campaigns_are_reproducible() {
        let scenario = Scenario::new(8, 2, FailureMode::Crash, 4).unwrap();
        let a = run_sampled(&P0Opt::new(2), &scenario, 100, 7);
        let b = run_sampled(&P0Opt::new(2), &scenario, 100, 7);
        assert_eq!(a.stats.histogram(), b.stats.histogram());
        assert!(a.live(), "{a}");
    }

    #[test]
    fn floodmin_is_simultaneous_in_crash_mode() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        let report = run_exhaustive(&FloodMin::new(1), &scenario);
        assert!(report.live(), "{report}");
        assert_eq!(report.non_simultaneous, 0);
    }

    #[test]
    fn chain_omission_sampled_campaign_is_live() {
        let scenario = Scenario::new(8, 3, FailureMode::Omission, 5).unwrap();
        let report = run_sampled(&ChainOmission::new(8), &scenario, 200, 11);
        assert!(report.live(), "{report}");
    }

    #[test]
    fn injected_campaign_shard_panic_degrades_to_identical_report() {
        use eba_sim::chaos::{ChaosPlan, FaultKind};
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        let baseline = run_exhaustive(&Relay::p0(1), &scenario);
        let plan = ChaosPlan::new().with_fault(FaultSite::CampaignShard, 0, FaultKind::Panic);
        let plan = Arc::new(plan);
        let chaos: Arc<dyn FaultInjector> = Arc::clone(&plan) as _;
        let report = run_exhaustive_supervised(&Relay::p0(1), &scenario, 4, &chaos).unwrap();
        assert_eq!(plan.fired(), 1, "the injected fault must actually fire");
        assert_eq!(report.runs, baseline.runs);
        assert_eq!(report.stats.histogram(), baseline.stats.histogram());
        assert_eq!(report.messages_delivered, baseline.messages_delivered);
        assert_eq!(report.non_simultaneous, baseline.non_simultaneous);
    }

    #[test]
    fn persistent_campaign_shard_panic_is_a_typed_fault() {
        use eba_sim::chaos::{ChaosPlan, FaultKind};
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        let chaos: Arc<dyn FaultInjector> = Arc::new(ChaosPlan::new().with_recurring_fault(
            FaultSite::CampaignShard,
            2,
            FaultKind::Panic,
            3,
        ));
        let fault = run_exhaustive_supervised(&Relay::p0(1), &scenario, 4, &chaos).unwrap_err();
        match fault {
            EngineFault::WorkerPanicked { site, index, .. } => {
                assert_eq!(site, FaultSite::CampaignShard);
                assert_eq!(index, 2);
            }
            other => panic!("expected a worker fault, got {other}"),
        }
    }

    #[test]
    fn report_display_mentions_protocol() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        let report = run_sampled(&Relay::p0(1), &scenario, 10, 1);
        assert!(report.to_string().contains("P0"));
    }
}
