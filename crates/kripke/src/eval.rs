//! The memoizing formula evaluator over a generated system.

use crate::bitset::Bitset;
use crate::cache::{HashedReachKey, KnowledgeCache, ReachKey, ReachSel, ScopeColumns};
use crate::formula::Formula;
use crate::nonrigid::{NonRigidSet, PointPredId, RunPredId, StateSets, StateSetsId};
use crate::plan::FormulaPlan;
use crate::uf::UnionFind;
use eba_model::fasthash::{FastMap, FastSet};
use eba_model::{ModelError, ProcSet, ProcessorId, Time};
use eba_sim::chaos::{supervised_indexed, FaultInjector, FaultSite, NoChaos};
use eba_sim::symmetry::{SymmetryInfo, ViewClasses};
use eba_sim::{GeneratedSystem, RunId, ViewId};
use std::sync::Arc;
use std::sync::OnceLock;
use std::thread;

/// Available parallelism, probed once: it is a syscall, and evaluators
/// are constructed in inner loops.
fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| thread::available_parallelism().map_or(1, |p| p.get()))
}

/// Ids interned by the evaluator are `u32`s; this is how many of each
/// kind it can issue.
const ID_CAPACITY: u128 = 1 << 32;

/// Point count below which reachability edges are collected on the
/// calling thread: spawning workers costs more than the scan saves.
pub(crate) const PARALLEL_POINTS_THRESHOLD: usize = 1 << 12;

/// The reachability structure of a nonrigid set `S` over a generated
/// system: the point-level components behind `C_S` (the \[DM90\]
/// characterization) and their projection onto runs behind `C□_S`
/// (Corollary 3.3); see DESIGN.md §4.
///
/// Two points are linked when some processor belongs to `S` at both and
/// has the same local state at both. Since FIP states encode the clock,
/// links preserve time; the `□̄` in `E□_S` lets a chain restart at any time
/// of the current run, which projects reachability onto runs.
#[derive(Clone, Debug)]
pub struct Reachability {
    /// Per point: compact component id, or `u32::MAX` where `S` is empty.
    point_comp: Vec<u32>,
    num_point_comps: usize,
    /// Per run: compact run-component id.
    run_comp: Vec<u32>,
    /// Per run: whether the run contains any point with `S` nonempty.
    run_has_s_points: Vec<bool>,
    /// Per point: the members of `S` at that point.
    s_members: Vec<ProcSet>,
}

impl Reachability {
    /// The component id of a point, or `None` where `S` is empty.
    #[must_use]
    pub fn point_component(&self, point: usize) -> Option<u32> {
        (self.point_comp[point] != u32::MAX).then_some(self.point_comp[point])
    }

    /// Number of point-level components.
    #[must_use]
    pub fn num_point_components(&self) -> usize {
        self.num_point_comps
    }

    /// The run-component id of a run.
    #[must_use]
    pub fn run_component(&self, run: RunId) -> u32 {
        self.run_comp[run.index()]
    }

    /// Whether the run contains any point where `S` is nonempty.
    #[must_use]
    pub fn run_has_s_points(&self, run: RunId) -> bool {
        self.run_has_s_points[run.index()]
    }

    /// The members of `S` at a point.
    #[must_use]
    pub fn members(&self, point: usize) -> ProcSet {
        self.s_members[point]
    }

    /// The number of points this structure was computed over.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.s_members.len()
    }

    /// Approximate resident heap bytes of the structure's per-point and
    /// per-run vectors (for the knowledge cache's memory accounting).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.point_comp.len() * size_of::<u32>()
            + self.run_comp.len() * size_of::<u32>()
            + self.run_has_s_points.len()
            + self.s_members.len() * size_of::<ProcSet>()
    }
}

/// A memoizing evaluator of [`Formula`]s over a [`GeneratedSystem`].
///
/// Points of the system are indexed linearly (`run × (horizon + 1) +
/// time`); every formula evaluates to the [`Bitset`] of points satisfying
/// it, cached by formula structure. State-set families and per-run
/// predicates are registered up front and referenced by id from formulas.
///
/// # Example
///
/// ```
/// use eba_kripke::{Evaluator, Formula};
/// use eba_model::{FailureMode, Scenario, Value};
/// use eba_sim::GeneratedSystem;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
/// let system = GeneratedSystem::exhaustive(&scenario);
/// let mut eval = Evaluator::new(&system);
/// // "Some processor started with 0 or some processor started with 1"
/// // holds everywhere.
/// let f = Formula::exists(Value::Zero).or(Formula::exists(Value::One));
/// assert!(eval.valid(&f));
/// # Ok(())
/// # }
/// ```
pub struct Evaluator<'a> {
    pub(crate) system: &'a GeneratedSystem,
    pub(crate) n: usize,
    pub(crate) times: usize,
    pub(crate) num_points: usize,
    pub(crate) threads: usize,
    state_sets: Vec<StateSets>,
    run_preds: Vec<Vec<bool>>,
    point_preds: Vec<Arc<Bitset>>,
    pub(crate) cache: FastMap<Formula, Arc<Bitset>>,
    pub(crate) reach_cache: FastMap<NonRigidSet, Arc<Reachability>>,
    pub(crate) scope_cache: FastMap<NonRigidSet, ScopeColumns>,
    /// Content keys are canonicalized and hashed once per set, then
    /// reused across the staged reachability *and* scope lookups.
    key_memo: FastMap<NonRigidSet, Arc<HashedReachKey>>,
    /// The symmetry metadata of a quotiented system (`None` on unreduced
    /// systems). Present, every knowledge kernel evaluates under the
    /// orbit twist: a point is disqualified by the *view-orbit classes*
    /// of the falsifying points rather than by raw views, which makes
    /// the reduced system answer full-space questions exactly for
    /// symmetric formulas (DESIGN.md §4i).
    symmetry: Option<&'a SymmetryInfo>,
    /// Orbit-closure verdicts per registered state-set family, memoized
    /// (the check is O(occurring views)).
    family_closed_memo: FastMap<u32, bool>,
    pub(crate) shared: KnowledgeCache,
    pub(crate) chaos: Arc<dyn FaultInjector>,
    plan_mode: bool,
    batch_mode: bool,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over `system` with a private knowledge cache
    /// and one reachability worker per available CPU.
    #[must_use]
    pub fn new(system: &'a GeneratedSystem) -> Self {
        Evaluator::with_cache(system, KnowledgeCache::new())
    }

    /// Creates an evaluator over `system` backed by a shared
    /// [`KnowledgeCache`]: reachability structures computed here are
    /// visible to every other evaluator holding a clone of `cache`, and
    /// vice versa. All sharers must evaluate over the same system; see the
    /// cache's docs.
    #[must_use]
    pub fn with_cache(system: &'a GeneratedSystem, cache: KnowledgeCache) -> Self {
        let n = system.n();
        let times = system.horizon().index() + 1;
        Evaluator {
            system,
            n,
            times,
            num_points: system.num_runs() * times,
            threads: default_threads(),
            state_sets: Vec::new(),
            run_preds: Vec::new(),
            point_preds: Vec::new(),
            cache: FastMap::default(),
            reach_cache: FastMap::default(),
            scope_cache: FastMap::default(),
            key_memo: FastMap::default(),
            symmetry: system.symmetry(),
            family_closed_memo: FastMap::default(),
            shared: cache,
            chaos: Arc::new(NoChaos),
            plan_mode: true,
            batch_mode: true,
        }
    }

    /// Switches between the compiled-plan evaluation pipeline (the
    /// default) and the recursive reference evaluator. Both produce
    /// bit-identical results; the recursive path is kept as the oracle
    /// for differential testing and debugging.
    pub fn set_plan_mode(&mut self, enabled: bool) {
        self.plan_mode = enabled;
    }

    /// Whether formulas are evaluated through compiled plans (see
    /// [`FormulaPlan`]).
    #[must_use]
    pub fn plan_mode(&self) -> bool {
        self.plan_mode
    }

    /// Switches batched reachability (the default) on or off. When on,
    /// plan execution prefetches every nonrigid set a plan needs through
    /// one [`crate::reach::BatchBuilder`] sweep; when off, each set is
    /// resolved on demand by the per-set path. Both are bit-identical;
    /// the per-set path is kept as the differential-test oracle.
    pub fn set_batch_mode(&mut self, enabled: bool) {
        self.batch_mode = enabled;
    }

    /// Whether plan execution batch-prefetches reachability structures.
    #[must_use]
    pub fn batch_mode(&self) -> bool {
        self.batch_mode
    }

    /// Sets the number of worker threads used to collect reachability
    /// edges (clamped to at least 1). Results are identical for every
    /// thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Installs a fault injector ([`eba_sim::chaos`]) consulted once per
    /// reachability worker item. An injected capacity fault at this site
    /// degrades to a supervised panic (reachability itself is
    /// infallible); panics and delays behave as at any other site.
    pub fn set_chaos(&mut self, injector: Arc<dyn FaultInjector>) {
        self.chaos = injector;
    }

    /// The shared knowledge cache backing this evaluator (clone it to
    /// share with further evaluators over the same system).
    #[must_use]
    pub fn knowledge_cache(&self) -> &KnowledgeCache {
        &self.shared
    }

    /// The underlying system.
    #[must_use]
    pub fn system(&self) -> &'a GeneratedSystem {
        self.system
    }

    /// Number of linear point indices.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Registers a state-set family for use in formulas.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExceeded`] when the `u32` id space
    /// for state-set families is full.
    ///
    /// # Panics
    ///
    /// Panics if the family's processor count differs from the system's.
    pub fn try_register_state_sets(&mut self, sets: StateSets) -> Result<StateSetsId, ModelError> {
        assert_eq!(
            sets.n(),
            self.n,
            "state-set family has the wrong processor count"
        );
        let id = u32::try_from(self.state_sets.len())
            .map_err(|_| ModelError::capacity_exceeded("state-set family ids", ID_CAPACITY))?;
        self.state_sets.push(sets);
        Ok(StateSetsId(id))
    }

    /// [`try_register_state_sets`](Evaluator::try_register_state_sets)
    /// for callers without an error channel.
    ///
    /// # Panics
    ///
    /// Panics with the rendered [`ModelError::CapacityExceeded`] when the
    /// id space is full, or if the family's processor count differs from
    /// the system's.
    pub fn register_state_sets(&mut self, sets: StateSets) -> StateSetsId {
        match self.try_register_state_sets(sets) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// The registered family behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this evaluator.
    #[must_use]
    pub fn state_sets(&self, id: StateSetsId) -> &StateSets {
        &self.state_sets[id.0 as usize]
    }

    /// Registers a per-run predicate for use in formulas.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExceeded`] when the `u32` id space
    /// for run predicates is full.
    ///
    /// # Panics
    ///
    /// Panics if the vector's length differs from the number of runs.
    pub fn try_register_run_pred(&mut self, pred: Vec<bool>) -> Result<RunPredId, ModelError> {
        assert_eq!(
            pred.len(),
            self.system.num_runs(),
            "run predicate has the wrong length"
        );
        let id = u32::try_from(self.run_preds.len())
            .map_err(|_| ModelError::capacity_exceeded("run predicate ids", ID_CAPACITY))?;
        self.run_preds.push(pred);
        Ok(RunPredId(id))
    }

    /// [`try_register_run_pred`](Evaluator::try_register_run_pred) for
    /// callers without an error channel.
    ///
    /// # Panics
    ///
    /// Panics with the rendered [`ModelError::CapacityExceeded`] when the
    /// id space is full, or if the vector's length differs from the
    /// number of runs.
    pub fn register_run_pred(&mut self, pred: Vec<bool>) -> RunPredId {
        match self.try_register_run_pred(pred) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Registers a per-point predicate for use in formulas; the bitset is
    /// indexed by linear point index (see [`Evaluator::point_index`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExceeded`] when the `u32` id space
    /// for point predicates is full — the realistic overflow site, since
    /// fixpoint iteration registers one predicate per iteration.
    ///
    /// # Panics
    ///
    /// Panics if the bitset's length differs from [`Evaluator::num_points`].
    pub fn try_register_point_pred(&mut self, pred: Bitset) -> Result<PointPredId, ModelError> {
        assert_eq!(
            pred.len(),
            self.num_points,
            "point predicate has the wrong length"
        );
        let id = u32::try_from(self.point_preds.len())
            .map_err(|_| ModelError::capacity_exceeded("point predicate ids", ID_CAPACITY))?;
        self.point_preds.push(Arc::new(pred));
        Ok(PointPredId(id))
    }

    /// [`try_register_point_pred`](Evaluator::try_register_point_pred)
    /// for callers without an error channel.
    ///
    /// # Panics
    ///
    /// Panics with the rendered [`ModelError::CapacityExceeded`] when the
    /// id space is full, or if the bitset's length differs from
    /// [`Evaluator::num_points`].
    pub fn register_point_pred(&mut self, pred: Bitset) -> PointPredId {
        match self.try_register_point_pred(pred) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// The linear index of a point.
    #[must_use]
    pub fn point_index(&self, run: RunId, time: Time) -> usize {
        run.index() * self.times + time.index()
    }

    /// The (run, time) of a linear point index.
    #[must_use]
    pub fn point_of(&self, index: usize) -> (RunId, Time) {
        (
            RunId::new(index / self.times),
            Time::new((index % self.times) as u16),
        )
    }

    /// The members of nonrigid set `s` at a point.
    #[must_use]
    pub fn members(&self, s: NonRigidSet, run: RunId, time: Time) -> ProcSet {
        match s {
            NonRigidSet::Everyone => ProcSet::full(self.n),
            NonRigidSet::Nonfaulty => self.system.nonfaulty(run),
            NonRigidSet::NonfaultyAnd(id) => {
                let sets = &self.state_sets[id.0 as usize];
                self.system
                    .nonfaulty(run)
                    .iter()
                    .filter(|&p| sets.contains(p, self.system.view(run, p, time)))
                    .collect()
            }
        }
    }

    /// Evaluates a formula, returning the set of points satisfying it.
    ///
    /// In plan mode (the default) the formula is lowered to a
    /// [`FormulaPlan`] — a deduplicated DAG of dense-bitset kernels —
    /// and executed over the system's columnar [`eba_sim::PointStore`];
    /// otherwise the recursive reference evaluator runs. Both paths
    /// produce bit-identical bitsets and share the same per-subformula
    /// memo, so they can be mixed freely on one evaluator.
    pub fn eval(&mut self, formula: &Formula) -> Arc<Bitset> {
        if let Some(cached) = self.cache.get(formula) {
            return Arc::clone(cached);
        }
        if self.plan_mode {
            let plan = FormulaPlan::compile(formula);
            return self.eval_plan(&plan);
        }
        let result = Arc::new(self.compute(formula));
        self.cache.insert(formula.clone(), Arc::clone(&result));
        result
    }

    /// Executes a compiled plan, returning the extension of its root.
    ///
    /// Every cacheable node's result is recorded in (and served from)
    /// the same formula-keyed memo that [`Evaluator::eval`] uses.
    pub fn eval_plan(&mut self, plan: &FormulaPlan) -> Arc<Bitset> {
        crate::plan::execute(self, plan)
    }

    /// Whether the formula holds at the given point.
    pub fn holds_at(&mut self, formula: &Formula, run: RunId, time: Time) -> bool {
        let idx = self.point_index(run, time);
        self.eval(formula).get(idx)
    }

    /// Whether the formula is valid in the system (holds at every point).
    pub fn valid(&mut self, formula: &Formula) -> bool {
        self.eval(formula).all()
    }

    /// A point where the formula fails, if any.
    pub fn counterexample(&mut self, formula: &Formula) -> Option<(RunId, Time)> {
        let set = self.eval(formula);
        set.first_zero().map(|idx| self.point_of(idx))
    }

    /// The views of processor `p` at which the formula holds.
    ///
    /// Since a formula like `B^N_p φ` depends only on `p`'s local state,
    /// the result is exact for such formulas: it is the decision set the
    /// formula describes. For formulas that are not state-determined, a
    /// view is included only if the formula holds at *every* point where
    /// `p` has that view.
    pub fn views_where(&mut self, p: ProcessorId, formula: &Formula) -> FastSet<ViewId> {
        let mut views = FastSet::default();
        self.for_each_view_where(p, formula, |v| {
            views.insert(v);
        });
        views
    }

    /// Like [`Evaluator::views_where`], but inserts the qualifying views
    /// of `p` straight into a [`StateSets`] family — the decision-set
    /// extraction loop of an optimize step calls this once per
    /// processor, and skipping the intermediate set materialization is
    /// measurable there.
    pub fn views_where_into(&mut self, p: ProcessorId, formula: &Formula, sets: &mut StateSets) {
        self.for_each_view_where(p, formula, |v| {
            sets.insert(p, v);
        });
    }

    /// For every processor `i` at once, the views at which `B^S_i ψ`
    /// holds, inserted into `sets` — value-identical to calling
    /// [`Evaluator::views_where_into`] with `ψ.believed_by(i, scope)`
    /// per processor, but `ψ` is evaluated **once** and each processor
    /// costs one bucket sweep instead of a formula build, a plan
    /// compile, and a closure kernel.
    ///
    /// The fusion is sound because `B^S_i ψ` is constant across a bucket
    /// (all its points share `i`'s view): it fails somewhere in bucket
    /// `v` iff `v`'s bucket contains an in-scope point falsifying `ψ`,
    /// which is exactly the views-where disqualification rule. The
    /// optimize steps use this for their decision-set extractions.
    pub fn views_believing(&mut self, scope: NonRigidSet, psi: &Formula, sets: &mut StateSets) {
        let psi_bits = self.eval(psi);
        let scopes = self.scope_columns(scope);
        let store = self.system.points();
        let table = self.system.table();
        if let Some(classes) = self.classes() {
            // Orbit twist: a view is disqualified when its *class* is
            // falsified from any in-scope processor anywhere (see
            // `knowledge_like_quotient`); emission stays per-processor
            // over the occurring (nonempty) buckets, so the extracted
            // family is orbit-closed over occurring views by
            // construction.
            let class_ok = self.class_ok_scoped(&psi_bits, &scopes, classes);
            for p in ProcessorId::all(self.n) {
                let (offsets, _) = store.buckets(p);
                for (v, w) in table.ids().zip(offsets.windows(2)) {
                    if w[0] != w[1] && class_ok[classes.class(v) as usize] {
                        sets.insert(p, v);
                    }
                }
            }
            return;
        }
        let mut bad = vec![false; table.len()];
        for p in ProcessorId::all(self.n) {
            let column = store.column(p);
            let (offsets, _) = store.buckets(p);
            let mut viol = Bitset::clone(&scopes[p.index()]);
            viol.and_not(&psi_bits);
            bad.fill(false);
            for pt in viol.ones() {
                bad[column[pt].index()] = true;
            }
            for (v, w) in table.ids().zip(offsets.windows(2)) {
                if w[0] != w[1] && !bad[v.index()] {
                    sets.insert(p, v);
                }
            }
        }
    }

    /// For an *equivariant family* `(ψ_i)` — one where `ψ_{σ(i)}` holds
    /// at a relabeled point exactly when `ψ_i` holds at the original —
    /// the per-processor belief columns `B^S_i ψ_i`, indexed by `i`.
    ///
    /// On an unreduced system this is `n` independent belief
    /// evaluations. On a quotient the falsified orbit classes are
    /// collected **once** across the whole family (processor `q`'s
    /// in-scope `¬ψ_q` points mark the class of `q`'s view) and then
    /// projected per processor; by equivariance that is exactly the full
    /// system's answer restricted to representatives even though each
    /// `ψ_i` alone is asymmetric (DESIGN.md §4i). The optimality checker
    /// uses this to fold its per-processor decision conditions.
    ///
    /// # Panics
    ///
    /// Panics if `psi.len()` differs from the processor count.
    pub fn family_believes(&mut self, scope: NonRigidSet, psi: &[Formula]) -> Vec<Bitset> {
        assert_eq!(
            psi.len(),
            self.n,
            "equivariant family must have one formula per processor"
        );
        let psi_bits: Vec<Arc<Bitset>> = psi.iter().map(|f| self.eval(f)).collect();
        if let Some(classes) = self.classes() {
            let scopes = self.scope_columns(scope);
            let store = self.system.points();
            let mut class_ok = vec![true; classes.num_classes()];
            for q in ProcessorId::all(self.n) {
                let column = store.column(q);
                let mut viol = Bitset::clone(&scopes[q.index()]);
                viol.and_not(&psi_bits[q.index()]);
                for pt in viol.ones() {
                    class_ok[classes.class(column[pt]) as usize] = false;
                }
            }
            return ProcessorId::all(self.n)
                .map(|p| self.project_class_ok(p, &class_ok, classes))
                .collect();
        }
        psi_bits
            .iter()
            .zip(ProcessorId::all(self.n))
            .map(|(phi, p)| self.knowledge_like(p, phi, Some(scope)))
            .collect()
    }

    /// Whether a registered family is *orbit-closed* over the occurring
    /// views: membership `v ∈ A_p` is constant across each view orbit,
    /// restricted to views that actually occur for their owner. Families
    /// extracted by [`Evaluator::views_believing`] on a quotient are
    /// closed by construction; this check guards externally supplied
    /// families before they may scope a quotient evaluation. Memoized
    /// per id; vacuously `true` on unreduced systems.
    pub fn family_orbit_closed(&mut self, id: StateSetsId) -> bool {
        let Some(classes) = self.classes() else {
            return true;
        };
        if let Some(&ok) = self.family_closed_memo.get(&id.0) {
            return ok;
        }
        let sets = &self.state_sets[id.0 as usize];
        let store = self.system.points();
        let table = self.system.table();
        // 0 = class unseen, 1 = seen excluded, 2 = seen included.
        let mut verdict = vec![0u8; classes.num_classes()];
        let mut ok = true;
        'scan: for p in ProcessorId::all(self.n) {
            let (offsets, _) = store.buckets(p);
            for (v, w) in table.ids().zip(offsets.windows(2)) {
                if w[0] == w[1] {
                    continue;
                }
                let c = classes.class(v) as usize;
                let seen = if sets.contains(p, v) { 2 } else { 1 };
                if verdict[c] == 0 {
                    verdict[c] = seen;
                } else if verdict[c] != seen {
                    ok = false;
                    break 'scan;
                }
            }
        }
        self.family_closed_memo.insert(id.0, ok);
        ok
    }

    /// Whether the formula is *fully symmetric* — invariant under every
    /// processor relabeling — so its full-system validity can be decided
    /// on a quotiented system directly. `NonfaultyAnd` scopes
    /// additionally require the referenced family to be orbit-closed
    /// (checked via [`Evaluator::family_orbit_closed`]).
    pub fn formula_symmetric(&mut self, f: &Formula) -> bool {
        let mut family_ok = |id: StateSetsId| self.family_orbit_closed(id);
        f.symmetric_under_relabeling(&mut family_ok)
    }

    /// Whether every knowledge operator in the formula has a symmetric
    /// body and scope, so each kernel's orbit twist is pointwise-exact on
    /// representatives. Weaker than [`Evaluator::formula_symmetric`]
    /// (asymmetric leaves like `StateIn` may appear *outside* knowledge
    /// operators); such formulas evaluate correctly **at** representative
    /// points but their quotient validity is not full-system validity —
    /// the optimality checker folds the whole equivariant family for
    /// that.
    pub fn quotient_compatible(&mut self, f: &Formula) -> bool {
        let mut family_ok = |id: StateSetsId| self.family_orbit_closed(id);
        f.quotient_compatible(&mut family_ok)
    }

    fn for_each_view_where(
        &mut self,
        p: ProcessorId,
        formula: &Formula,
        mut emit: impl FnMut(ViewId),
    ) {
        let set = self.eval(formula);
        // A view qualifies iff its bucket (the points where `p` has it)
        // is nonempty and contains no point falsifying the formula, so
        // walk the falsifying points and disqualify their buckets.
        let store = self.system.points();
        let column = store.column(p);
        let (offsets, _) = store.buckets(p);
        let table = self.system.table();
        let mut bad = vec![false; table.len()];
        let mut unsat = Bitset::clone(&set);
        unsat.invert();
        for pt in unsat.ones() {
            bad[column[pt].index()] = true;
        }
        for (v, w) in table.ids().zip(offsets.windows(2)) {
            if w[0] != w[1] && !bad[v.index()] {
                emit(v);
            }
        }
    }

    pub(crate) fn broadcast_run_level<F: Fn(RunId) -> bool>(&self, f: F) -> Bitset {
        let mut out = Bitset::new_false(self.num_points);
        for run in self.system.run_ids() {
            if f(run) {
                let base = run.index() * self.times;
                out.set_range(base, base + self.times);
            }
        }
        out
    }

    fn compute(&mut self, formula: &Formula) -> Bitset {
        match formula {
            Formula::True => Bitset::new_true(self.num_points),
            Formula::False => Bitset::new_false(self.num_points),
            Formula::Exists(v) => {
                self.broadcast_run_level(|r| self.system.run(r).config.exists(*v))
            }
            Formula::Initial(p, v) => {
                self.broadcast_run_level(|r| self.system.run(r).config.value(*p) == *v)
            }
            Formula::Nonfaulty(p) => {
                self.broadcast_run_level(|r| self.system.nonfaulty(r).contains(*p))
            }
            Formula::StateIn(p, id) => {
                let sets = &self.state_sets[id.0 as usize];
                let mut out = Bitset::new_false(self.num_points);
                for run in self.system.run_ids() {
                    for time in Time::upto(self.system.horizon()) {
                        if sets.contains(*p, self.system.view(run, *p, time)) {
                            out.set(self.point_index(run, time), true);
                        }
                    }
                }
                out
            }
            Formula::RunPred(id) => {
                let pred = self.run_preds[id.0 as usize].clone();
                self.broadcast_run_level(|r| pred[r.index()])
            }
            Formula::PointPred(id) => (*self.point_preds[id.0 as usize]).clone(),
            Formula::Not(inner) => {
                let mut out = (*self.eval(inner)).clone();
                out.invert();
                out
            }
            Formula::And(fs) => {
                let mut out = Bitset::new_true(self.num_points);
                for f in fs {
                    out &= &self.eval(f);
                }
                out
            }
            Formula::Or(fs) => {
                let mut out = Bitset::new_false(self.num_points);
                for f in fs {
                    out |= &self.eval(f);
                }
                out
            }
            Formula::Knows(p, inner) => {
                let phi = self.eval(inner);
                self.knowledge_like(*p, &phi, None)
            }
            Formula::Believes(p, s, inner) => {
                let phi = self.eval(inner);
                self.knowledge_like(*p, &phi, Some(*s))
            }
            Formula::Everyone(s, inner) => {
                let believes: Vec<Bitset> = (0..self.n)
                    .map(|i| {
                        let phi = self.eval(inner);
                        self.knowledge_like(ProcessorId::new(i), &phi, Some(*s))
                    })
                    .collect();
                let mut out = Bitset::new_true(self.num_points);
                for run in self.system.run_ids() {
                    for time in Time::upto(self.system.horizon()) {
                        let idx = self.point_index(run, time);
                        let members = self.members(*s, run, time);
                        let ok = members.iter().all(|i| believes[i.index()].get(idx));
                        out.set(idx, ok);
                    }
                }
                out
            }
            Formula::Someone(s, inner) => {
                let believes: Vec<Bitset> = (0..self.n)
                    .map(|i| {
                        let phi = self.eval(inner);
                        self.knowledge_like(ProcessorId::new(i), &phi, Some(*s))
                    })
                    .collect();
                let mut out = Bitset::new_false(self.num_points);
                for run in self.system.run_ids() {
                    for time in Time::upto(self.system.horizon()) {
                        let idx = self.point_index(run, time);
                        let members = self.members(*s, run, time);
                        let ok = members.iter().any(|i| believes[i.index()].get(idx));
                        out.set(idx, ok);
                    }
                }
                out
            }
            Formula::Distributed(s, inner) => {
                let phi = self.eval(inner);
                self.distributed_knowledge(*s, &phi)
            }
            Formula::Common(s, inner) => {
                let phi = self.eval(inner);
                let reach = self.reachability(*s);
                self.common_from_reach(&phi, &reach)
            }
            Formula::ContinualCommon(s, inner) => {
                let phi = self.eval(inner);
                let reach = self.reachability(*s);
                self.continual_common_from_reach(&phi, &reach)
            }
            Formula::Always(inner) => {
                let phi = self.eval(inner);
                self.always_of(&phi)
            }
            Formula::Eventually(inner) => {
                let phi = self.eval(inner);
                self.eventually_of(&phi)
            }
            Formula::AlwaysAll(inner) => {
                let phi = self.eval(inner);
                self.always_all_of(&phi)
            }
            Formula::SometimeAll(inner) => {
                let phi = self.eval(inner);
                self.sometime_all_of(&phi)
            }
        }
    }

    /// `C_S φ` from a reachability structure: φ holds throughout the
    /// point's component (vacuously where `S` is empty). Shared between
    /// the recursive evaluator and the plan's `ReachClose` kernel.
    pub(crate) fn common_from_reach(&self, phi: &Bitset, reach: &Reachability) -> Bitset {
        // comp_sat[c] = φ holds at every point of component c. Only the
        // violations matter, so sweep φ's zero bits word-parallel.
        let mut comp_sat = vec![true; reach.num_point_comps];
        for idx in phi.zeros() {
            let c = reach.point_comp[idx];
            if c != u32::MAX {
                comp_sat[c as usize] = false;
            }
        }
        // Assemble the output a word at a time: a point qualifies where
        // S is empty (vacuous E_S^k for all k) or its component is clean.
        let mut out = Bitset::new_false(self.num_points);
        for (word, comps) in out.words_mut().iter_mut().zip(reach.point_comp.chunks(64)) {
            let mut w = 0u64;
            for (bit, &c) in comps.iter().enumerate() {
                let ok = c == u32::MAX || comp_sat[c as usize];
                w |= u64::from(ok) << bit;
            }
            *word = w;
        }
        out
    }

    /// `C□_S φ` from a reachability structure: the run-component
    /// projection of [`Evaluator::common_from_reach`].
    pub(crate) fn continual_common_from_reach(&self, phi: &Bitset, reach: &Reachability) -> Bitset {
        // run_comp_sat[rc] = φ holds at every S-nonempty point of
        // every run in run-component rc.
        let num_run_comps = self
            .system
            .run_ids()
            .map(|r| reach.run_component(r) as usize + 1)
            .max()
            .unwrap_or(0);
        let mut run_comp_sat = vec![true; num_run_comps];
        for idx in phi.zeros() {
            if reach.point_comp[idx] != u32::MAX {
                let run = idx / self.times;
                run_comp_sat[reach.run_comp[run] as usize] = false;
            }
        }
        let mut out = Bitset::new_false(self.num_points);
        for run in self.system.run_ids() {
            let ok = if reach.run_has_s_points(run) {
                run_comp_sat[reach.run_component(run) as usize]
            } else {
                true // no reachable points at all: vacuously true
            };
            if ok {
                let base = run.index() * self.times;
                out.set_range(base, base + self.times);
            }
        }
        out
    }

    /// `□φ` as a per-run suffix conjunction of the input bitset.
    pub(crate) fn always_of(&self, phi: &Bitset) -> Bitset {
        let mut out = Bitset::new_false(self.num_points);
        for run in self.system.run_ids() {
            let base = run.index() * self.times;
            let mut suffix = true;
            for time in (0..self.times).rev() {
                suffix &= phi.get(base + time);
                out.set(base + time, suffix);
            }
        }
        out
    }

    /// `◇φ` as a per-run suffix disjunction of the input bitset.
    pub(crate) fn eventually_of(&self, phi: &Bitset) -> Bitset {
        let mut out = Bitset::new_false(self.num_points);
        for run in self.system.run_ids() {
            let base = run.index() * self.times;
            let mut suffix = false;
            for time in (0..self.times).rev() {
                suffix |= phi.get(base + time);
                out.set(base + time, suffix);
            }
        }
        out
    }

    /// `□̄φ` (at all times of the run) broadcast to every point of the run.
    pub(crate) fn always_all_of(&self, phi: &Bitset) -> Bitset {
        self.broadcast_run_level(|run| {
            let base = run.index() * self.times;
            (0..self.times).all(|time| phi.get(base + time))
        })
    }

    /// `◇̄φ` (at some time of the run) broadcast to every point of the run.
    pub(crate) fn sometime_all_of(&self, phi: &Bitset) -> Bitset {
        self.broadcast_run_level(|run| {
            let base = run.index() * self.times;
            (0..self.times).any(|time| phi.get(base + time))
        })
    }

    /// Evaluates a leaf formula (no subformulas) directly; the plan's
    /// `Load` kernel.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-leaf formula — the plan compiler only
    /// emits `Load` for leaves.
    pub(crate) fn compute_leaf(&mut self, formula: &Formula) -> Bitset {
        debug_assert!(
            matches!(
                formula,
                Formula::True
                    | Formula::False
                    | Formula::Exists(_)
                    | Formula::Initial(..)
                    | Formula::Nonfaulty(_)
                    | Formula::StateIn(..)
                    | Formula::RunPred(_)
                    | Formula::PointPred(_)
            ),
            "Load kernel applied to a non-leaf formula"
        );
        self.compute(formula)
    }

    /// The view-orbit classes of a quotiented system, or `None` on an
    /// unreduced one. The reference outlives `&self` (it is computed
    /// lazily inside the system's [`SymmetryInfo`]), so callers can hold
    /// it across subsequent `&mut self` calls.
    pub(crate) fn classes(&self) -> Option<&'a ViewClasses> {
        self.symmetry
            .map(|si| si.classes(self.system.table(), self.n))
    }

    /// The surviving orbit classes for an *unscoped* knowledge kernel:
    /// class `c` stays `true` unless some processor's view at some
    /// `¬φ` point falls in `c`.
    pub(crate) fn class_ok_unscoped(&self, phi: &Bitset, classes: &ViewClasses) -> Vec<bool> {
        let store = self.system.points();
        let mut class_ok = vec![true; classes.num_classes()];
        let mut viol = phi.clone();
        viol.invert();
        for q in ProcessorId::all(self.n) {
            let column = store.column(q);
            for pt in viol.ones() {
                class_ok[classes.class(column[pt]) as usize] = false;
            }
        }
        class_ok
    }

    /// The surviving orbit classes for a *scoped* knowledge kernel:
    /// class `c` is falsified by processor `q`'s view at a `¬φ` point
    /// only where `q` is in scope there (`scopes` are the per-processor
    /// scope columns of the nonrigid set).
    pub(crate) fn class_ok_scoped(
        &self,
        phi: &Bitset,
        scopes: &[Bitset],
        classes: &ViewClasses,
    ) -> Vec<bool> {
        let store = self.system.points();
        let mut class_ok = vec![true; classes.num_classes()];
        for q in ProcessorId::all(self.n) {
            let column = store.column(q);
            let mut viol = Bitset::clone(&scopes[q.index()]);
            viol.and_not(phi);
            for pt in viol.ones() {
                class_ok[classes.class(column[pt]) as usize] = false;
            }
        }
        class_ok
    }

    /// Projects a per-class verdict onto processor `p`'s point column:
    /// bit `idx` holds the verdict of the orbit class of `p`'s view at
    /// point `idx`.
    pub(crate) fn project_class_ok(
        &self,
        p: ProcessorId,
        class_ok: &[bool],
        classes: &ViewClasses,
    ) -> Bitset {
        let column = self.system.points().column(p);
        let mut out = Bitset::new_false(self.num_points);
        for (idx, &v) in column.iter().enumerate() {
            if class_ok[classes.class(v) as usize] {
                out.set(idx, true);
            }
        }
        out
    }

    /// The orbit twist of [`Evaluator::knowledge_like`]: on a quotiented
    /// system a point is disqualified when the *orbit class* of its view
    /// equals the class of some falsifying point's view — taken over
    /// **every** processor `q` there (restricted to `q ∈ S` for `B`).
    /// Full-information views encode their owner, so cross-processor
    /// class equality already carries the witnessing relabeling, which
    /// makes the per-class marking answer the full system's question
    /// exactly for symmetric `φ` (DESIGN.md §4i).
    fn knowledge_like_quotient(
        &mut self,
        p: ProcessorId,
        phi: &Bitset,
        restrict: Option<NonRigidSet>,
        classes: &ViewClasses,
    ) -> Bitset {
        let class_ok = match restrict {
            None => self.class_ok_unscoped(phi, classes),
            Some(s) => {
                let scopes = self.scope_columns(s);
                self.class_ok_scoped(phi, &scopes, classes)
            }
        };
        self.project_class_ok(p, &class_ok, classes)
    }

    /// Shared implementation of `K_p` (with `restrict = None`) and `B^S_p`
    /// (with `restrict = Some(S)`): the result at a point depends only on
    /// `p`'s view there, and is the conjunction of `φ` over all points
    /// where `p` has that view (and, for `B`, belongs to `S`).
    pub(crate) fn knowledge_like(
        &mut self,
        p: ProcessorId,
        phi: &Bitset,
        restrict: Option<NonRigidSet>,
    ) -> Bitset {
        if let Some(classes) = self.classes() {
            return self.knowledge_like_quotient(p, phi, restrict, classes);
        }
        let table_len = self.system.table().len();
        let mut view_ok = vec![true; table_len];
        for run in self.system.run_ids() {
            for time in Time::upto(self.system.horizon()) {
                let idx = self.point_index(run, time);
                if phi.get(idx) {
                    continue;
                }
                let in_scope = match restrict {
                    None => true,
                    Some(s) => self.members(s, run, time).contains(p),
                };
                if in_scope {
                    let v = self.system.view(run, p, time);
                    view_ok[v.index()] = false;
                }
            }
        }
        let mut out = Bitset::new_false(self.num_points);
        for run in self.system.run_ids() {
            for time in Time::upto(self.system.horizon()) {
                let idx = self.point_index(run, time);
                let v = self.system.view(run, p, time);
                out.set(idx, view_ok[v.index()]);
            }
        }
        out
    }

    /// `D_S φ`: at a point `p`, φ holds at every point `q` that the
    /// members of `S(p)` *jointly* cannot distinguish from `p` — same
    /// membership-relevant views for every member. Points are bucketed by
    /// `(S(p), members' views)`; `D` holds iff φ holds throughout the
    /// bucket. With `S(p)` empty every point is indistinguishable and the
    /// operator is vacuous (matching `E_S`'s convention).
    pub(crate) fn distributed_knowledge(&mut self, s: NonRigidSet, phi: &Bitset) -> Bitset {
        use std::collections::hash_map::Entry;
        if self.symmetry.is_some() {
            return self.distributed_knowledge_quotient(s, phi);
        }
        let mut bucket_of: Vec<u32> = vec![u32::MAX; self.num_points];
        let mut sat: Vec<bool> = Vec::new();
        let mut index: FastMap<(u128, Vec<ViewId>), u32> = FastMap::default();
        let mut all_empty_ok = true;
        for run in self.system.run_ids() {
            for time in Time::upto(self.system.horizon()) {
                let idx = self.point_index(run, time);
                let members = self.members(s, run, time);
                if members.is_empty() {
                    all_empty_ok &= phi.get(idx);
                    continue;
                }
                let views: Vec<ViewId> = members
                    .iter()
                    .map(|i| self.system.view(run, i, time))
                    .collect();
                let bucket = match index.entry((members.bits(), views)) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let id = sat.len() as u32;
                        e.insert(id);
                        sat.push(true);
                        id
                    }
                };
                bucket_of[idx] = bucket;
                sat[bucket as usize] &= phi.get(idx);
            }
        }
        let mut out = Bitset::new_false(self.num_points);
        for (idx, &bucket) in bucket_of.iter().enumerate() {
            let ok = if bucket == u32::MAX {
                // S empty here: every point (with S empty) is jointly
                // indistinguishable from this one.
                all_empty_ok
            } else {
                sat[bucket as usize]
            };
            out.set(idx, ok);
        }
        out
    }

    /// The orbit twist of [`Evaluator::distributed_knowledge`]: points
    /// are bucketed by a *canonical joint key* — the minimum over all
    /// relabelings `π` of a slot-ascending mix of the members'
    /// `π`-relabeled view hashes (slot `j` holds processor `π⁻¹(j)`;
    /// non-members contribute a fixed marker). Two representative points
    /// get equal keys exactly when some relabeling maps one's
    /// membership-and-views profile onto the other's, which is joint
    /// indistinguishability in the full system, so the bucket verdicts
    /// answer the full system's `D_S` for symmetric `φ` (DESIGN.md §4i).
    fn distributed_knowledge_quotient(&mut self, s: NonRigidSet, phi: &Bitset) -> Bitset {
        use eba_sim::symmetry::{for_each_permuted_hashes, mix};
        let s_members = self.collect_s_members(s);
        let store = self.system.points();
        let n = self.n;
        let mut keys = vec![u128::MAX; self.num_points];
        for_each_permuted_hashes(self.system.table(), n, |perm, hashes| {
            let inv = perm.inverse();
            for (idx, members) in s_members.iter().enumerate() {
                if members.is_empty() {
                    continue;
                }
                let mut h = 3u128;
                for j in 0..n {
                    let q = inv.apply(ProcessorId::new(j));
                    h = if members.contains(q) {
                        mix(h, hashes[store.column(q)[idx].index()])
                    } else {
                        mix(h, u128::MAX - 2)
                    };
                }
                if h < keys[idx] {
                    keys[idx] = h;
                }
            }
        });
        let mut bucket_of: Vec<u32> = vec![u32::MAX; self.num_points];
        let mut sat: Vec<bool> = Vec::new();
        let mut index: FastMap<u128, u32> = FastMap::default();
        let mut all_empty_ok = true;
        for (idx, members) in s_members.iter().enumerate() {
            if members.is_empty() {
                all_empty_ok &= phi.get(idx);
                continue;
            }
            let bucket = *index.entry(keys[idx]).or_insert_with(|| {
                sat.push(true);
                (sat.len() - 1) as u32
            });
            bucket_of[idx] = bucket;
            sat[bucket as usize] &= phi.get(idx);
        }
        let mut out = Bitset::new_false(self.num_points);
        for (idx, &bucket) in bucket_of.iter().enumerate() {
            let ok = if bucket == u32::MAX {
                all_empty_ok
            } else {
                sat[bucket as usize]
            };
            out.set(idx, ok);
        }
        out
    }

    /// Computes (or fetches) the reachability structure of `s`.
    ///
    /// Lookup is staged: this evaluator's local memo first, then the
    /// shared [`KnowledgeCache`] (keyed by the set's *content*, so a hit
    /// can come from a different evaluator over the same system), and only
    /// then a fresh computation, which is published to both.
    pub fn reachability(&mut self, s: NonRigidSet) -> Arc<Reachability> {
        if let Some(cached) = self.reach_cache.get(&s) {
            self.shared.note_local_hit(false);
            return Arc::clone(cached);
        }
        let key = self.hashed_key(s);
        let built = match self.shared.get(&key) {
            Some(shared) => {
                debug_assert_eq!(
                    shared.num_points(),
                    self.num_points,
                    "knowledge cache shared across different systems"
                );
                shared
            }
            None => {
                let built = Arc::new(self.build_reachability(s));
                self.shared.insert(&key, Arc::clone(&built));
                built
            }
        };
        self.reach_cache.insert(s, Arc::clone(&built));
        built
    }

    /// The content key of `s`, canonicalized and hashed **once** per
    /// `(evaluator, set)` and reused across every staged lookup — the
    /// reachability get/insert pair and the scope-column get/insert pair
    /// all share one digest instead of re-hashing the (potentially large)
    /// canonical view lists.
    pub(crate) fn hashed_key(&mut self, s: NonRigidSet) -> Arc<HashedReachKey> {
        if let Some(key) = self.key_memo.get(&s) {
            return Arc::clone(key);
        }
        // Keys carry the system's exchange fingerprint: full-info and
        // digest systems have unrelated interned state spaces, so their
        // entries must never be interchangeable even when a cache handle
        // is (legally) shared across same-shape systems.
        let exchange = self.system.scenario().exchange().fingerprint();
        let key = Arc::new(HashedReachKey::new(ReachKey {
            exchange,
            // Quotiented structures answer the same *question* but over a
            // different point space, so they must never collide with
            // unreduced entries even on a legally shared cache handle.
            symmetry: self.classes().map_or(0, ViewClasses::fingerprint),
            sel: match s {
                NonRigidSet::Everyone => ReachSel::Everyone,
                NonRigidSet::Nonfaulty => ReachSel::Nonfaulty,
                NonRigidSet::NonfaultyAnd(id) => {
                    let families = self.state_sets[id.0 as usize].canonical();
                    match self.shared.node_table() {
                        // Shared backend: the registered family's
                        // membership words live (deduplicated) in the
                        // node table and the key carries only roots —
                        // content equality is root equality because the
                        // key can only ever meet the cache whose table
                        // issued the roots.
                        Some(table) => {
                            let mut table = table.lock().expect("node table poisoned");
                            ReachSel::SharedFamily(
                                families.iter().map(|w| table.intern_words(w)).collect(),
                            )
                        }
                        None => ReachSel::NonfaultyAnd(families),
                    }
                }
            },
        }));
        self.key_memo.insert(s, Arc::clone(&key));
        key
    }

    /// The per-processor scope columns of `s`: entry `p` is the bitset of
    /// points at which `p ∈ S(r, k)` (the column form of
    /// [`Evaluator::members`], used by the plan kernels).
    ///
    /// Lookup is staged like [`Evaluator::reachability`]: the local memo,
    /// then the shared [`KnowledgeCache`] under the set's content key,
    /// then a fresh columnar build over the [`eba_sim::PointStore`].
    pub fn scope_columns(&mut self, s: NonRigidSet) -> ScopeColumns {
        if let Some(cached) = self.scope_cache.get(&s) {
            self.shared.note_local_hit(true);
            return Arc::clone(cached);
        }
        let key = self.hashed_key(s);
        let built = match self.shared.get_scopes(&key) {
            Some(shared) => {
                debug_assert!(
                    shared.iter().all(|b| b.len() == self.num_points),
                    "knowledge cache shared across different systems"
                );
                shared
            }
            // `insert_scopes` interns by content: the Arc it hands back
            // may be an existing, identical column vector.
            None => self
                .shared
                .insert_scopes(&key, Arc::new(self.build_scope_columns(s))),
        };
        self.scope_cache.insert(s, Arc::clone(&built));
        built
    }

    fn build_scope_columns(&self, s: NonRigidSet) -> Vec<Bitset> {
        let store = self.system.points();
        ProcessorId::all(self.n)
            .map(|p| match s {
                NonRigidSet::Everyone => Bitset::new_true(self.num_points),
                NonRigidSet::Nonfaulty => {
                    self.broadcast_run_level(|r| self.system.nonfaulty(r).contains(p))
                }
                NonRigidSet::NonfaultyAnd(id) => {
                    let sets = &self.state_sets[id.0 as usize];
                    // Membership test per interned view, then a column
                    // scan — no hashing per point.
                    let mut in_sets = vec![false; self.system.table().len()];
                    for v in self.system.table().ids() {
                        in_sets[v.index()] = sets.contains(p, v);
                    }
                    let mut out =
                        self.broadcast_run_level(|r| self.system.nonfaulty(r).contains(p));
                    for (idx, v) in store.column(p).iter().enumerate() {
                        if !in_sets[v.index()] {
                            out.set(idx, false);
                        }
                    }
                    out
                }
            })
            .collect()
    }

    /// Collects the union edges contributed by processor `i`: one edge per
    /// `S`-containing point after the first per distinct view of `i`.
    ///
    /// Walks the precomputed CSR bucket partition of the
    /// [`eba_sim::PointStore`] rather than rescanning and hashing views.
    /// Buckets hold their points in increasing point order, so each
    /// bucket's first `S`-containing point is exactly the root a
    /// sequential point scan would pick — the edge *set* (and hence the
    /// union-find partition) is identical to the scan-based reference.
    fn collect_reach_edges(&self, i: ProcessorId, s_members: &[ProcSet]) -> Vec<(u32, u32)> {
        let store = self.system.points();
        let (offsets, items) = store.buckets(i);
        let mut edges = Vec::new();
        for b in offsets.windows(2) {
            let bucket = &items[b[0] as usize..b[1] as usize];
            let mut root = u32::MAX;
            for &idx in bucket {
                if !s_members[idx as usize].contains(i) {
                    continue;
                }
                if root == u32::MAX {
                    root = idx;
                } else {
                    edges.push((root, idx));
                }
            }
        }
        edges
    }

    /// The members of `s` at every point, indexed linearly. Shared by the
    /// per-set reachability build and the batched sweep
    /// ([`crate::reach::BatchBuilder`]).
    pub(crate) fn collect_s_members(&self, s: NonRigidSet) -> Vec<ProcSet> {
        let mut s_members = vec![ProcSet::empty(); self.num_points];
        for run in self.system.run_ids() {
            for time in Time::upto(self.system.horizon()) {
                let idx = self.point_index(run, time);
                s_members[idx] = self.members(s, run, time);
            }
        }
        s_members
    }

    /// Applies the quotient edge rule to a fresh union-find: points
    /// whose in-scope views share an *orbit class* are linked (first
    /// point seen per class acts as the class root). The resulting
    /// partition can be coarser than the full system's components
    /// restricted to representatives, but the per-component clean/dirty
    /// verdict — all that `C_S`/`C□_S` ever read — agrees for symmetric
    /// `φ`: full-system chains project onto class chains, and a class
    /// chain lifts to a full-system chain into a relabeled copy of the
    /// same component (DESIGN.md §4i). Shared with the batched sweep.
    pub(crate) fn union_quotient_reach_edges(
        &self,
        s_members: &[ProcSet],
        classes: &ViewClasses,
        uf: &mut UnionFind,
    ) {
        let store = self.system.points();
        let mut root = vec![u32::MAX; classes.num_classes()];
        for (idx, members) in s_members.iter().enumerate() {
            for q in members.iter() {
                let c = classes.class(store.column(q)[idx]) as usize;
                if root[c] == u32::MAX {
                    root[c] = idx as u32;
                } else {
                    uf.union(idx, root[c] as usize);
                }
            }
        }
    }

    fn build_reachability(&self, s: NonRigidSet) -> Reachability {
        let s_members = self.collect_s_members(s);

        if let Some(classes) = self.classes() {
            // The quotient sweep touches every (point, member) pair once
            // and is far smaller than the unreduced edge collection, so
            // it always runs sequentially.
            let mut uf = UnionFind::new(self.num_points);
            self.union_quotient_reach_edges(&s_members, classes, &mut uf);
            return self.finish_reachability(s_members, &mut uf);
        }

        // Point-level union-find: two points are linked when some i ∈ S at
        // both has the same view at both. Bucket by (i's view). Edge
        // collection is independent per processor, so it fans out across
        // the supervised worker pool of `eba_sim::chaos`; the unions are
        // applied sequentially in processor order afterwards, giving the
        // exact edge sequence of a single-threaded scan (and hence
        // identical components) for every thread count. A panicking
        // worker item is retried and then recomputed sequentially —
        // `collect_reach_edges` is pure, so recovery is transparent.
        let workers = self.threads.min(self.n);
        let per_proc_edges: Vec<Vec<(u32, u32)>> =
            if workers > 1 && self.num_points >= PARALLEL_POINTS_THRESHOLD {
                let s_members_ref = &s_members;
                let chaos = &*self.chaos;
                let supervised =
                    supervised_indexed(self.n, workers, FaultSite::ReachabilityWorker, |i| {
                        if let Err(e) = chaos.inject(FaultSite::ReachabilityWorker, i) {
                            // Reachability is infallible, so an injected
                            // capacity fault degrades to a supervised
                            // panic here rather than a typed error.
                            panic!("{e}");
                        }
                        self.collect_reach_edges(ProcessorId::new(i), s_members_ref)
                    });
                match supervised {
                    Ok((edges, _faults)) => edges,
                    // A processor that panics on the initial attempt, the
                    // retry, and the sequential fallback is a
                    // deterministic bug; surface the typed fault's
                    // rendering rather than a bare join `expect`.
                    Err(fault) => panic!("{fault}"),
                }
            } else {
                ProcessorId::all(self.n)
                    .map(|i| self.collect_reach_edges(i, &s_members))
                    .collect()
            };
        let mut uf = UnionFind::new(self.num_points);
        for edges in &per_proc_edges {
            for &(a, b) in edges {
                uf.union(a as usize, b as usize);
            }
        }
        self.finish_reachability(s_members, &mut uf)
    }

    /// Compacts a fully-unioned point partition into a [`Reachability`]:
    /// component numbering, the run projection, and the `S`-emptiness
    /// mask. Shared by the per-set build and the batched sweep; given the
    /// same union sequence, the output is bit-identical either way.
    pub(crate) fn finish_reachability(
        &self,
        s_members: Vec<ProcSet>,
        uf: &mut UnionFind,
    ) -> Reachability {
        // Compact point components, restricted to S-nonempty points, and
        // project onto runs (runs sharing a point component are merged)
        // in the same pass. Numbering is by first-seen point order, so it
        // only depends on the partition — not on the union order that
        // produced it. Roots are point indices, so a flat remap table
        // replaces hashing.
        let num_runs = self.system.num_runs();
        let mut comp_remap = vec![u32::MAX; self.num_points];
        let mut point_comp = vec![u32::MAX; self.num_points];
        let mut run_uf = UnionFind::new(num_runs);
        let mut first_run_of_comp: Vec<u32> = Vec::new();
        let mut run_has_s_points = vec![false; num_runs];
        for idx in 0..self.num_points {
            if s_members[idx].is_empty() {
                continue;
            }
            let root = uf.find(idx);
            let run = idx / self.times;
            run_has_s_points[run] = true;
            let c = comp_remap[root];
            if c == u32::MAX {
                comp_remap[root] = first_run_of_comp.len() as u32;
                point_comp[idx] = first_run_of_comp.len() as u32;
                first_run_of_comp.push(run as u32);
            } else {
                point_comp[idx] = c;
                run_uf.union(first_run_of_comp[c as usize] as usize, run);
            }
        }
        let num_point_comps = first_run_of_comp.len();
        let (run_comp, _) = run_uf.component_ids();

        Reachability {
            point_comp,
            num_point_comps,
            run_comp,
            run_has_s_points,
            s_members,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{FailureMode, Scenario, Value};

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    fn crash_system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    #[test]
    fn tautologies_are_valid() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        assert!(eval.valid(&Formula::True));
        assert!(!eval.valid(&Formula::False));
        assert!(eval.valid(&Formula::exists(Value::Zero).or(Formula::exists(Value::One))));
        let f = Formula::exists(Value::Zero);
        assert!(eval.valid(&f.clone().or(f.not())));
    }

    #[test]
    fn processors_know_their_own_value() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        for i in 0..3 {
            for v in Value::ALL {
                // init(i)=v ⇒ K_i ∃v.
                let f = Formula::Initial(p(i), v).implies(Formula::exists(v).known_by(p(i)));
                assert!(eval.valid(&f));
            }
        }
    }

    #[test]
    fn knowledge_axiom_holds() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let phi = Formula::exists(Value::Zero);
        let f = phi.clone().known_by(p(0)).implies(phi);
        assert!(eval.valid(&f));
    }

    #[test]
    fn knowledge_is_not_omniscience() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        // ∃0 ⇒ K_1 ∃0 is NOT valid at time 0 (p1 may hold 1 while p2
        // holds 0).
        let f = Formula::exists(Value::Zero).implies(Formula::exists(Value::Zero).known_by(p(0)));
        assert!(!eval.valid(&f));
        let (run, time) = eval.counterexample(&f).unwrap();
        assert_eq!(time, Time::ZERO);
        let config = &system.run(run).config;
        assert_ne!(config.value(p(0)), Value::Zero);
        assert!(config.exists(Value::Zero));
    }

    #[test]
    fn after_failure_free_round_everyone_knows() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        // In failure-free runs, by time 1 everyone knows every initial
        // value: check K_i ∃0 whenever ∃0.
        let config = eba_model::InitialConfig::from_bits(3, 0b110);
        let pattern = eba_model::FailurePattern::failure_free(3);
        let run = system.find_run(&config, &pattern).unwrap();
        for i in 0..3 {
            assert!(eval.holds_at(
                &Formula::exists(Value::Zero).known_by(p(i)),
                run,
                Time::new(1)
            ));
            assert!(
                !eval.holds_at(
                    &Formula::exists(Value::Zero).known_by(p(i)),
                    run,
                    Time::ZERO
                ) || i == 0
            );
        }
    }

    #[test]
    fn belief_is_vacuous_for_known_faulty() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        // B^N_i φ ⇒ (i ∈ N ⇒ φ) is valid (belief is knowledge guarded by
        // membership).
        let phi = Formula::exists(Value::Zero);
        let f = phi
            .clone()
            .believed_by(p(1), NonRigidSet::Nonfaulty)
            .implies(Formula::Nonfaulty(p(1)).implies(phi));
        assert!(eval.valid(&f));
    }

    #[test]
    fn common_knowledge_implies_everyone_knows() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let phi = Formula::exists(Value::One);
        let f = phi
            .clone()
            .common(NonRigidSet::Nonfaulty)
            .implies(phi.everyone(NonRigidSet::Nonfaulty));
        assert!(eval.valid(&f));
    }

    #[test]
    fn continual_common_implies_common() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        for v in Value::ALL {
            let phi = Formula::exists(v);
            let f = phi
                .clone()
                .continual_common(NonRigidSet::Nonfaulty)
                .implies(phi.common(NonRigidSet::Nonfaulty));
            assert!(eval.valid(&f), "C□ ⇒ C failed for ∃{v}");
        }
    }

    #[test]
    fn continual_common_is_constant_along_runs() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let f = Formula::exists(Value::One).continual_common(NonRigidSet::Nonfaulty);
        let set = eval.eval(&f);
        for run in system.run_ids() {
            let base = run.index() * 3;
            let v0 = set.get(base);
            for t in 1..3 {
                assert_eq!(set.get(base + t), v0);
            }
        }
    }

    #[test]
    fn temporal_operators() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        // □φ ⇒ φ and φ ⇒ ◇φ.
        let phi = Formula::exists(Value::Zero).known_by(p(0));
        assert!(eval.valid(&phi.clone().always().implies(phi.clone())));
        assert!(eval.valid(&phi.clone().implies(phi.clone().eventually())));
        // □̄φ ⇒ □φ.
        assert!(eval.valid(&phi.clone().always_all().implies(phi.clone().always())));
        // φ ⇒ ◇̄φ.
        assert!(eval.valid(&phi.clone().implies(phi.sometime_all())));
    }

    #[test]
    fn knowledge_is_monotone_over_time_for_stable_facts() {
        // With perfect recall, K_i of a run-level fact persists: K_i ∃0 ⇒
        // □ K_i ∃0.
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let k = Formula::exists(Value::Zero).known_by(p(2));
        assert!(eval.valid(&k.clone().implies(k.always())));
    }

    #[test]
    fn views_where_extracts_state_sets() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let f = Formula::exists(Value::Zero).believed_by(p(0), NonRigidSet::Nonfaulty);
        let views = eval.views_where(p(0), &f);
        // Every extracted view sees a zero (B^N implies the fact when the
        // view occurs for a nonfaulty p0 somewhere — all p0 views here).
        assert!(!views.is_empty());
        for v in &views {
            assert_eq!(system.table().proc(*v), p(0));
        }
    }

    #[test]
    fn registered_state_sets_work_as_atoms() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let sets = StateSets::with_value_seen(system.table(), 3, Value::Zero);
        let id = eval.register_state_sets(sets);
        // StateIn(p, A) ⇔ K_p ∃0 — "has seen a zero" is exactly knowing
        // ∃0 in a full-information system … at least the ⇒ direction: the
        // view contains a zero, so every compatible run has a zero.
        let f = Formula::StateIn(p(1), id).implies(Formula::exists(Value::Zero).known_by(p(1)));
        assert!(eval.valid(&f));
    }

    #[test]
    fn run_predicates_broadcast() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let pred: Vec<bool> = system
            .run_ids()
            .map(|r| system.run(r).config.all_same())
            .collect();
        let id = eval.register_run_pred(pred);
        let f = Formula::RunPred(id).implies(
            Formula::exists(Value::Zero)
                .and(Formula::exists(Value::One))
                .not(),
        );
        assert!(eval.valid(&f));
    }

    #[test]
    fn knowledge_hierarchy_c_e_k_d() {
        // The [HM90] hierarchy over the (always nonempty) nonfaulty set:
        // C ⇒ E ⇒ B_i (for members) ⇒ D ⇒ φ, and E ⇒ S.
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        for v in Value::ALL {
            let phi = Formula::exists(v);
            let n = NonRigidSet::Nonfaulty;
            let c = phi.clone().common(n);
            let e = phi.clone().everyone(n);
            let s = phi.clone().someone(n);
            let d = phi.clone().distributed(n);
            assert!(eval.valid(&c.clone().implies(e.clone())));
            assert!(eval.valid(&e.clone().implies(s.clone())));
            for i in 0..3 {
                let member = Formula::Nonfaulty(p(i));
                let b = phi.clone().believed_by(p(i), n);
                assert!(eval.valid(&member.clone().and(e.clone()).implies(b.clone())));
                assert!(eval.valid(&member.and(b).implies(d.clone())));
            }
            assert!(eval.valid(&d.implies(phi)));
        }
    }

    #[test]
    fn distributed_knowledge_pools_information() {
        // At time 0 nobody alone knows ∃0 unless it holds it, but the
        // group's pooled information always settles ∃0 one way or the
        // other: D_N(∃0) ∨ D_N(¬∃0) is valid at time 0 … and in fact
        // everywhere only if the faulty processors' values never matter.
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let phi = Formula::exists(Value::Zero);
        let d_pos = phi.clone().distributed(NonRigidSet::Nonfaulty);
        let d_neg = phi.clone().not().distributed(NonRigidSet::Nonfaulty);
        // Pooled knowledge decides ∃0 whenever every processor is
        // nonfaulty (the failure-free runs), since the group jointly sees
        // every initial value.
        let everyone_fine = Formula::conj((0..3).map(|i| Formula::Nonfaulty(p(i))));
        assert!(eval.valid(&everyone_fine.implies(d_pos.clone().or(d_neg))));
        // A *member's* knowledge feeds the pool — but only a member's: a
        // faulty processor's private knowledge does not reach D_N.
        let k = phi.known_by(p(0));
        let member = Formula::Nonfaulty(p(0));
        assert!(eval.valid(&member.and(k.clone()).implies(d_pos.clone())));
        assert!(
            !eval.valid(&k.clone().implies(d_pos.clone())),
            "unguarded K_1 ⇒ D_N must fail (the knower may be faulty)"
        );
        // And D is strictly stronger than any individual's knowledge.
        assert!(!eval.valid(&d_pos.implies(k)));
    }

    #[test]
    fn everyone_equals_conjunction_of_member_beliefs() {
        // E_S φ at a point ⟺ every member of S(point) believes φ there —
        // checked pointwise against per-processor B evaluations.
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let phi = Formula::exists(Value::Zero);
        let e = eval.eval(&phi.clone().everyone(NonRigidSet::Nonfaulty));
        let believes: Vec<_> = (0..3)
            .map(|i| eval.eval(&phi.clone().believed_by(p(i), NonRigidSet::Nonfaulty)))
            .collect();
        for run in system.run_ids() {
            for time in Time::upto(system.horizon()) {
                let idx = eval.point_index(run, time);
                let members = eval.members(NonRigidSet::Nonfaulty, run, time);
                let expected = members.iter().all(|i| believes[i.index()].get(idx));
                assert_eq!(e.get(idx), expected, "run {} {time}", run.index());
            }
        }
    }

    #[test]
    fn reachability_accessors_are_consistent() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let reach = eval.reachability(NonRigidSet::Nonfaulty);
        for idx in 0..eval.num_points() {
            let (run, time) = eval.point_of(idx);
            let members = reach.members(idx);
            assert_eq!(members, eval.members(NonRigidSet::Nonfaulty, run, time));
            // S nonempty ⟺ the point has a component.
            assert_eq!(members.is_empty(), reach.point_component(idx).is_none());
            if reach.point_component(idx).is_some() {
                assert!(reach.run_has_s_points(run));
                assert!(
                    (reach.point_component(idx).unwrap() as usize) < reach.num_point_components()
                );
            }
        }
    }

    #[test]
    fn empty_nonrigid_set_gives_vacuous_common_knowledge() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        // N ∧ ∅-states is empty everywhere: C□ of anything (even false)
        // holds.
        let empty = StateSets::empty(3);
        let id = eval.register_state_sets(empty);
        let s = NonRigidSet::NonfaultyAnd(id);
        assert!(eval.valid(&Formula::False.continual_common(s)));
        assert!(eval.valid(&Formula::False.common(s)));
    }

    #[test]
    fn knowledge_cache_is_shared_across_evaluators() {
        let system = crash_system();
        let cache = KnowledgeCache::new();
        let mut a = Evaluator::with_cache(&system, cache.clone());
        let ra = a.reachability(NonRigidSet::Nonfaulty);
        assert_eq!(cache.len(), 1);
        let mut b = Evaluator::with_cache(&system, cache.clone());
        let rb = b.reachability(NonRigidSet::Nonfaulty);
        assert!(
            Arc::ptr_eq(&ra, &rb),
            "second evaluator must reuse the cached structure"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn knowledge_cache_matches_state_sets_by_content() {
        // The same family registered under *different ids* in two
        // evaluators resolves to one cache entry: keys are canonical
        // content, not evaluator-relative ids.
        let system = crash_system();
        let cache = KnowledgeCache::new();
        let sets = StateSets::with_value_seen(system.table(), 3, Value::Zero);
        let mut a = Evaluator::with_cache(&system, cache.clone());
        let id_a = a.register_state_sets(sets.clone());
        let r1 = a.reachability(NonRigidSet::NonfaultyAnd(id_a));
        let len_after_first = cache.len();
        let mut b = Evaluator::with_cache(&system, cache.clone());
        b.register_state_sets(StateSets::empty(3)); // shift the id space
        let id_b = b.register_state_sets(sets);
        assert_ne!(id_a, id_b);
        let r2 = b.reachability(NonRigidSet::NonfaultyAnd(id_b));
        assert!(Arc::ptr_eq(&r1, &r2));
        assert_eq!(cache.len(), len_after_first);
    }

    #[test]
    fn parallel_reachability_matches_sequential() {
        // Big enough to cross PARALLEL_POINTS_THRESHOLD, so the threaded
        // edge-collection path actually runs.
        let scenario = Scenario::new(3, 2, FailureMode::Crash, 3).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        assert!(
            system.num_points() >= PARALLEL_POINTS_THRESHOLD,
            "test scenario no longer exercises the parallel path"
        );
        let mut seq = Evaluator::new(&system);
        seq.set_threads(1);
        let mut par = Evaluator::new(&system);
        par.set_threads(4);
        for s in [NonRigidSet::Everyone, NonRigidSet::Nonfaulty] {
            let a = seq.reachability(s);
            let b = par.reachability(s);
            assert_eq!(a.num_point_components(), b.num_point_components());
            for idx in 0..system.num_points() {
                assert_eq!(
                    a.point_component(idx),
                    b.point_component(idx),
                    "component of point {idx} under {s:?}"
                );
            }
        }
    }

    #[test]
    fn try_register_issues_sequential_typed_ids() {
        let system = crash_system();
        let mut eval = Evaluator::new(&system);
        let a = eval.try_register_state_sets(StateSets::empty(3)).unwrap();
        let b = eval.try_register_state_sets(StateSets::empty(3)).unwrap();
        assert_ne!(a, b);
        let r = eval
            .try_register_run_pred(vec![true; system.num_runs()])
            .unwrap();
        assert!(eval.valid(&Formula::RunPred(r)));
        let pp = eval
            .try_register_point_pred(Bitset::new_true(eval.num_points()))
            .unwrap();
        assert!(eval.valid(&Formula::PointPred(pp)));
    }

    #[test]
    fn injected_reachability_panic_degrades_to_identical_result() {
        use eba_sim::chaos::{ChaosPlan, FaultKind};
        // Big enough to cross PARALLEL_POINTS_THRESHOLD, so the
        // supervised pool actually runs and the injected panic lands in a
        // worker, not on the calling thread.
        let scenario = Scenario::new(3, 2, FailureMode::Crash, 3).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        assert!(system.num_points() >= PARALLEL_POINTS_THRESHOLD);
        let mut baseline = Evaluator::new(&system);
        baseline.set_threads(1);
        let base = baseline.reachability(NonRigidSet::Nonfaulty);

        let plan = Arc::new(ChaosPlan::new().with_fault(
            FaultSite::ReachabilityWorker,
            0,
            FaultKind::Panic,
        ));
        let mut chaotic = Evaluator::new(&system);
        chaotic.set_threads(4);
        chaotic.set_chaos(Arc::clone(&plan) as Arc<dyn FaultInjector>);
        let got = chaotic.reachability(NonRigidSet::Nonfaulty);
        assert_eq!(plan.fired(), 1, "the planned panic must have fired");
        assert_eq!(base.num_point_components(), got.num_point_components());
        for idx in 0..system.num_points() {
            assert_eq!(
                base.point_component(idx),
                got.point_component(idx),
                "component of point {idx} after worker recovery"
            );
        }
    }

    #[test]
    fn evaluator_and_cache_are_send() {
        fn require_send<T: Send>() {}
        fn require_sync<T: Sync>() {}
        require_send::<Evaluator<'static>>();
        require_send::<KnowledgeCache>();
        require_sync::<KnowledgeCache>();
    }
}
