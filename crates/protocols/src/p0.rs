//! The `P0` / `P1` relay protocols of \[LF82\] (Proposition 2.1).

use eba_model::{ProcessorId, Round, Value};
use eba_sim::Protocol;

/// The relay protocol `P_v` (Section 2.2 / Proposition 2.1): when a
/// processor first learns that some processor has the *favored* initial
/// value `v`, it decides `v`, relays `v` for one round, and halts; a
/// processor that still has not learned of any `v` by time `t + 1`
/// decides the other value and halts.
///
/// `P0 = Relay::p0(t)` favors 0 (all 0-holders decide at time 0);
/// `P1 = Relay::p1(t)` is the symmetric protocol. No protocol can
/// dominate both — this pair is the paper's proof that optimum EBA
/// protocols do not exist.
///
/// Correct as an EBA protocol in the crash failure mode.
///
/// # Example
///
/// ```
/// use eba_model::{FailurePattern, InitialConfig, ProcessorId, Time, Value};
/// use eba_protocols::Relay;
/// use eba_sim::execute;
///
/// let p0 = Relay::p0(1);
/// let config = InitialConfig::from_bits(3, 0b110); // p1 holds 0
/// let trace = execute(&p0, &config, &FailurePattern::failure_free(3), Time::new(3)).unwrap();
/// // The 0-holder decides at time 0; the others at time 1.
/// assert_eq!(trace.decision_time(ProcessorId::new(0)), Some(Time::new(0)));
/// assert_eq!(trace.decision_time(ProcessorId::new(1)), Some(Time::new(1)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Relay {
    favored: Value,
    t: u16,
}

impl Relay {
    /// The protocol `P0`: favors value 0.
    #[must_use]
    pub fn p0(t: usize) -> Self {
        Relay {
            favored: Value::Zero,
            t: t as u16,
        }
    }

    /// The protocol `P1`: favors value 1.
    #[must_use]
    pub fn p1(t: usize) -> Self {
        Relay {
            favored: Value::One,
            t: t as u16,
        }
    }

    /// The favored value.
    #[must_use]
    pub fn favored(&self) -> Value {
        self.favored
    }
}

/// The local state of [`Relay`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RelayState {
    /// Time at which the favored value was learned, if it was.
    learned_at: Option<u16>,
    /// Current time (rounds completed).
    now: u16,
    /// Latched decision.
    decided: Option<Value>,
}

impl Protocol for Relay {
    type State = RelayState;
    /// The only message is "the favored value exists".
    type Message = ();

    fn name(&self) -> &str {
        match self.favored {
            Value::Zero => "P0",
            Value::One => "P1",
        }
    }

    fn initial_state(&self, _p: ProcessorId, _n: usize, value: Value) -> RelayState {
        let learned = value == self.favored;
        RelayState {
            learned_at: learned.then_some(0),
            now: 0,
            decided: learned.then_some(self.favored),
        }
    }

    fn message(
        &self,
        state: &RelayState,
        _from: ProcessorId,
        _to: ProcessorId,
        round: Round,
    ) -> Option<()> {
        // Relay for exactly one round after learning, then halt.
        match state.learned_at {
            Some(at) if round.number() == at + 1 => Some(()),
            _ => None,
        }
    }

    fn transition(
        &self,
        state: &RelayState,
        _p: ProcessorId,
        _round: Round,
        received: &[Option<()>],
    ) -> RelayState {
        let mut next = *state;
        next.now += 1;
        if next.learned_at.is_none() && received.iter().any(Option::is_some) {
            next.learned_at = Some(next.now);
        }
        if next.decided.is_none() {
            if next.learned_at.is_some() {
                next.decided = Some(self.favored);
            } else if next.now > self.t {
                next.decided = Some(self.favored.other());
            }
        }
        next
    }

    fn output(&self, state: &RelayState, _p: ProcessorId) -> Option<Value> {
        state.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{FailurePattern, FaultyBehavior, InitialConfig, ProcSet, Time};
    use eba_sim::execute_unchecked as execute;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn all_favored_decide_at_time_zero() {
        let protocol = Relay::p0(1);
        let trace = execute(
            &protocol,
            &InitialConfig::uniform(4, Value::Zero),
            &FailurePattern::failure_free(4),
            Time::new(3),
        );
        for i in 0..4 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::ZERO));
            assert_eq!(trace.decided_value(p(i)), Some(Value::Zero));
        }
    }

    #[test]
    fn unfavored_only_decides_other_at_t_plus_one() {
        let protocol = Relay::p0(2);
        let trace = execute(
            &protocol,
            &InitialConfig::uniform(4, Value::One),
            &FailurePattern::failure_free(4),
            Time::new(4),
        );
        for i in 0..4 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::new(3)));
            assert_eq!(trace.decided_value(p(i)), Some(Value::One));
        }
    }

    #[test]
    fn relayed_zero_travels_one_hop_per_round() {
        let protocol = Relay::p0(2);
        // Only p0 holds 0; failure-free: everyone learns it in round 1.
        let trace = execute(
            &protocol,
            &InitialConfig::from_bits(3, 0b110),
            &FailurePattern::failure_free(3),
            Time::new(4),
        );
        assert_eq!(trace.decision_time(p(1)), Some(Time::new(1)));
        assert_eq!(trace.decided_value(p(1)), Some(Value::Zero));
    }

    #[test]
    fn hidden_zero_with_crash_leads_to_one_decision() {
        // p0 holds the only 0 and crashes before telling anyone: the rest
        // decide 1 at t+1; EBA properties hold (p0 is faulty).
        let protocol = Relay::p0(1);
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
        let trace = execute(
            &protocol,
            &InitialConfig::from_bits(3, 0b110),
            &pattern,
            Time::new(3),
        );
        assert_eq!(trace.decided_value(p(1)), Some(Value::One));
        assert_eq!(trace.decided_value(p(2)), Some(Value::One));
        assert!(trace.satisfies_weak_agreement());
        assert!(trace.satisfies_weak_validity());
    }

    #[test]
    fn late_partial_relay_is_still_consistent() {
        // p0 (value 0) crashes in round 1 delivering only to p1; p1
        // relays in round 2, so p2 learns at time 2 < t+1 = 3 and all
        // nonfaulty decide 0.
        let protocol = Relay::p0(2);
        let pattern = FailurePattern::failure_free(4).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::singleton(p(1)),
            },
        );
        let trace = execute(
            &protocol,
            &InitialConfig::from_bits(4, 0b1110),
            &pattern,
            Time::new(4),
        );
        assert_eq!(trace.decision_time(p(1)), Some(Time::new(1)));
        assert_eq!(trace.decision_time(p(2)), Some(Time::new(2)));
        assert_eq!(trace.decision_time(p(3)), Some(Time::new(2)));
        assert!(trace.satisfies_weak_agreement());
    }

    #[test]
    fn p1_is_the_mirror_image() {
        let protocol = Relay::p1(1);
        assert_eq!(protocol.name(), "P1");
        assert_eq!(protocol.favored(), Value::One);
        let trace = execute(
            &protocol,
            &InitialConfig::uniform(3, Value::One),
            &FailurePattern::failure_free(3),
            Time::new(2),
        );
        for i in 0..3 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::ZERO));
        }
    }
}
