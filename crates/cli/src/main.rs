//! `eba-check`: a command-line epistemic model checker.
//!
//! Builds the exhaustive (or sampled) system of full-information runs for
//! a scenario and checks a formula over every point, reporting validity
//! and counterexamples/witnesses. See `eba-check --help` for the formula
//! syntax.

use eba_core::{EngineSession, SessionScope};
use eba_kripke::explain::Timeline;
use eba_kripke::parse::parse_formula;
use eba_kripke::{Evaluator, Formula, KnowledgeCache, SetReprKind};
use eba_model::{
    BudgetHit, ExchangeKind, FailureMode, FailurePattern, FaultyBehavior, InitialConfig, ProcSet,
    ProcessorId, Round, RunBudget, Scenario, Time, Value,
};
use eba_serve::install_sigint;
use eba_sim::{BuildOutcome, GeneratedSystem, SystemBuilder};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const HELP: &str = "\
eba-check — model-check epistemic formulas over Byzantine-agreement systems

USAGE:
    eba-check [OPTIONS] FORMULA

OPTIONS:
    --n N            number of processors        (default 3)
    --t T            failure bound               (default 1)
    --mode MODE      crash | omission | general-omission   (default crash)
    --horizon H      rounds simulated            (default t + 2)
    --exchange SPEC  information exchange the processors run:
                       full          full-information views (default)
                       digest:<bits> bounded who-heard-what digests with a
                                     content fingerprint truncated to
                                     0..=64 bits; the interned state space
                                     is bounded in the horizon, unlocking
                                     scales the full-information engine
                                     cannot enumerate. digest:0 (pure
                                     summary) also supports --horizon-sweep;
                                     fingerprinted digests are rebuild-only
    --sampled R S    use R seeded random runs (seed S) instead of the
                     exhaustive system
    --symmetry on|off
                     processor-relabeling quotient (default off): simulate
                     one representative failure pattern per Sym(n) orbit
                     and evaluate knowledge through orbit-canonical view
                     classes; verdicts over the quotient equal the
                     unreduced system's for processor-symmetric formulas.
                     A formula naming a specific processor (K_i, B_i,
                     init(i), N(i)) is checked on the unreduced system
                     with a notice. Requires the full exchange; conflicts
                     with --sampled and --timeline. `off` keeps today's
                     unreduced path, the differential oracle CI diffs
                     against
    --threads N|auto worker threads for system generation, horizon
                     extension, and knowledge evaluation (default: all
                     available cores). `auto` resolves to
                     std::thread::available_parallelism() and prints the
                     resolved count on a `threads:` preamble line; an
                     explicit N never prints it, so output stays
                     byte-identical across explicit thread counts
    --plan           evaluate via compiled plans: formulas are lowered to
                     a deduplicated DAG of bitset kernels over the
                     columnar point store (default)
    --no-plan        evaluate with the recursive reference evaluator
                     instead; results are bit-identical to --plan
    --set-repr dense|shared
                     set-representation backend of the knowledge cache
                     (default dense). `dense` stores cached reachability
                     and scope columns as word-block bitsets. `shared`
                     interns them into a hash-consed node table so that
                     near-identical sets (the common case across horizon
                     sweeps and candidate families) share structure, and
                     combines interned sets through a memoized apply
                     cache. Verdicts, counterexamples, and fixpoint
                     iteration counts are bit-identical across backends —
                     the setrepr-equivalence CI job diffs them — only
                     memory residency and the --cache-stats counters
                     change. `shared` prints a `set-repr: shared`
                     preamble line
    --shards K       split exhaustive generation into K shards (default:
                     4 per thread; the result is identical for any K)
    --deadline SECS  wall-clock budget for exhaustive generation; on
                     exhaustion the verdict covers only the completed
                     prefix of shards and a PARTIAL banner is printed
    --max-runs N     cap on generated runs, honored at shard granularity;
                     exceeding it also yields a PARTIAL prefix verdict
    --horizon-sweep A..B
                     check FORMULA at every horizon A..=B out of ONE
                     incremental engine session: the exhaustive system is
                     built once at horizon A and grown append-only to each
                     larger horizon, reusing interned views and carrying
                     an epoch-scoped knowledge cache. Per-horizon output
                     is bit-identical to independent cold runs of each
                     horizon. Exhaustive only: conflicts with --horizon,
                     --sampled, --timeline, and --deadline/--max-runs
    --sweep-cold     with --horizon-sweep: rebuild every horizon from
                     scratch instead of extending — the differential
                     oracle for the incremental path; prints the same
                     output (diagnostic `cache:`/`extend:` lines under
                     --cache-stats excepted)
    --witness        also print a point where the formula holds
    --cache-stats    after the verdict, print knowledge-cache counters
                     (reachability and scope-column hits/misses, interned
                     scope dedup; under --set-repr shared also node-table
                     size, dedup ratio, and memo hits) on a `cache:`
                     line, and the work-stealing pool counters (pool
                     runs, items, steals, last run's per-worker item
                     counts and busy spans) on a `scheduler:` line
    --quiet          print only the verdict line
    --timeline       timeline mode: print per-time truth values of the
                     FORMULAs along one run, selected with --config and
                     --pattern (requires the exhaustive system)
    --config BITS    timeline run's initial values, one char per
                     processor, p1 first (e.g. 011)
    --pattern SPEC   timeline run's failure pattern; ';'-separated
                     per-processor behaviors:
                       p1:clean
                       p1:silent                  (mute from round 1)
                       p1:crash@2                 (crash round 2, deliver none)
                       p1:crash@2->p2,p3          (…deliver to p2, p3)
                       p1:omit@1->p3[@2->p2,...]  (omission rounds)
                     default: failure-free
    --help           this text

FORMULA SYNTAX (processors are 1-based):
    atoms:       true  false  E0  E1  init(i)=0  init(i)=1  N(i)
    connectives: !f   f & g   f | g   f -> g   f <-> g
    knowledge:   K_i(f)   B_i(f)   E(f)   SK(f) someone   D(f) distributed
                 C(f) common   CC(f) continual common
    temporal:    G(f) always   F(f) eventually   A(f) all times   S(f) some time

EXAMPLES:
    # Continual common knowledge is stronger than common knowledge:
    eba-check 'CC(E0) -> C(E0)'            # valid
    eba-check 'C(E0) -> CC(E0)'            # NOT valid, counterexample shown

    # The knowledge axiom for belief guarded by nonfaultiness:
    eba-check --mode omission 'B_1(E0) -> (N(1) -> E0)'

    # Watch knowledge build along a run:
    eba-check --timeline --config 011 --pattern 'p1:crash@1->p2' \
        'B_2(E0)' 'B_3(E0)' 'C(E0)'

EXIT CODE: 0 if valid (at every swept horizon, for --horizon-sweep; or
timeline printed), 1 if not valid, 2 on usage errors.

Ctrl-C is cooperative: an exhaustive build stops at the next shard
checkpoint and the verdict covers the completed prefix (the same PARTIAL
banner as --deadline); a --horizon-sweep stops before its next horizon.
";

struct Options {
    n: usize,
    t: usize,
    mode: FailureMode,
    exchange: ExchangeKind,
    horizon: Option<u16>,
    horizon_sweep: Option<(u16, u16)>,
    sweep_cold: bool,
    sampled: Option<(usize, u64)>,
    symmetry: bool,
    threads: Option<usize>,
    /// Whether `--threads auto` was given (prints the resolved count).
    threads_auto: bool,
    shards: Option<usize>,
    deadline: Option<Duration>,
    max_runs: Option<u64>,
    witness: bool,
    cache_stats: bool,
    quiet: bool,
    plan: bool,
    set_repr: SetReprKind,
    timeline: bool,
    config: Option<String>,
    pattern: Option<String>,
    formulas: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        n: 3,
        t: 1,
        mode: FailureMode::Crash,
        exchange: ExchangeKind::FullInformation,
        horizon: None,
        horizon_sweep: None,
        sweep_cold: false,
        sampled: None,
        symmetry: false,
        threads: None,
        threads_auto: false,
        shards: None,
        deadline: None,
        max_runs: None,
        witness: false,
        cache_stats: false,
        quiet: false,
        plan: true,
        set_repr: SetReprKind::Dense,
        timeline: false,
        config: None,
        pattern: None,
        formulas: Vec::new(),
    };
    let mut iter = args.iter().peekable();
    let mut positional = Vec::new();
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--n" => options.n = take("--n")?.parse().map_err(|_| "bad --n")?,
            "--t" => options.t = take("--t")?.parse().map_err(|_| "bad --t")?,
            "--horizon" => {
                options.horizon = Some(take("--horizon")?.parse().map_err(|_| "bad --horizon")?);
            }
            "--horizon-sweep" => {
                let spec = take("--horizon-sweep")?;
                let (from, to) = spec
                    .split_once("..")
                    .ok_or("--horizon-sweep needs a range like 2..5")?;
                let from: u16 = from.trim().parse().map_err(|_| "bad sweep start")?;
                let to: u16 = to.trim().parse().map_err(|_| "bad sweep end")?;
                if from == 0 {
                    return Err("sweep horizons start at 1".to_owned());
                }
                if to < from {
                    return Err(format!("--horizon-sweep range {from}..{to} is empty"));
                }
                options.horizon_sweep = Some((from, to));
            }
            "--sweep-cold" => options.sweep_cold = true,
            "--exchange" => {
                options.exchange =
                    ExchangeKind::parse(&take("--exchange")?).map_err(|e| e.to_string())?;
            }
            "--mode" => {
                options.mode = match take("--mode")?.as_str() {
                    "crash" => FailureMode::Crash,
                    "omission" => FailureMode::Omission,
                    "general-omission" => FailureMode::GeneralOmission,
                    other => return Err(format!("unknown mode `{other}`")),
                };
            }
            "--sampled" => {
                let runs: usize = take("--sampled")?.parse().map_err(|_| "bad run count")?;
                let seed = take("--sampled")?.parse().map_err(|_| "bad seed")?;
                if runs == 0 {
                    return Err("--sampled needs at least 1 run".to_owned());
                }
                options.sampled = Some((runs, seed));
            }
            "--symmetry" => {
                options.symmetry = match take("--symmetry")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--symmetry needs on|off, got `{other}`")),
                };
            }
            "--threads" => {
                let spec = take("--threads")?;
                if spec == "auto" {
                    let resolved = std::thread::available_parallelism().map_or(1, |p| p.get());
                    options.threads = Some(resolved);
                    options.threads_auto = true;
                } else {
                    let threads: usize = spec.parse().map_err(|_| "bad --threads")?;
                    if threads == 0 {
                        return Err("--threads must be at least 1".to_owned());
                    }
                    options.threads = Some(threads);
                    options.threads_auto = false;
                }
            }
            "--shards" => {
                let shards: usize = take("--shards")?.parse().map_err(|_| "bad --shards")?;
                if shards == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
                options.shards = Some(shards);
            }
            "--deadline" => {
                let secs: f64 = take("--deadline")?.parse().map_err(|_| "bad --deadline")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--deadline must be a positive number of seconds".to_owned());
                }
                options.deadline = Some(Duration::from_secs_f64(secs));
            }
            "--max-runs" => {
                let max: u64 = take("--max-runs")?.parse().map_err(|_| "bad --max-runs")?;
                if max == 0 {
                    return Err("--max-runs must be at least 1".to_owned());
                }
                options.max_runs = Some(max);
            }
            "--witness" => options.witness = true,
            "--cache-stats" => options.cache_stats = true,
            "--quiet" => options.quiet = true,
            "--plan" => options.plan = true,
            "--no-plan" => options.plan = false,
            "--set-repr" => {
                let spec = take("--set-repr")?;
                options.set_repr = SetReprKind::parse(&spec)
                    .ok_or_else(|| format!("--set-repr needs dense|shared, got `{spec}`"))?;
            }
            "--timeline" => options.timeline = true,
            "--config" => options.config = Some(take("--config")?),
            "--pattern" => options.pattern = Some(take("--pattern")?),
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            _ => positional.push(arg.clone()),
        }
    }
    if positional.is_empty() {
        return Err("missing FORMULA".to_owned());
    }
    if !options.timeline && positional.len() > 1 {
        return Err("expected exactly one FORMULA (pass --timeline for several)".to_owned());
    }
    options.formulas = positional;
    Ok(options)
}

/// Parses `--config` bit strings: one char per processor, `p1` first.
fn parse_config(spec: &str, n: usize) -> Result<InitialConfig, String> {
    if spec.len() != n {
        return Err(format!(
            "--config needs exactly {n} bits, got {}",
            spec.len()
        ));
    }
    let values = spec
        .chars()
        .map(|c| match c {
            '0' => Ok(Value::Zero),
            '1' => Ok(Value::One),
            other => Err(format!("bad config bit `{other}`")),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(InitialConfig::new(values))
}

/// Parses a `--pattern` spec; see the help text for the grammar.
fn parse_pattern(spec: &str, scenario: &Scenario) -> Result<FailurePattern, String> {
    let n = scenario.n();
    let mut pattern = FailurePattern::failure_free(n);
    let parse_proc = |s: &str| -> Result<ProcessorId, String> {
        let raw: usize = s
            .strip_prefix('p')
            .ok_or_else(|| format!("expected `pN`, got `{s}`"))?
            .parse()
            .map_err(|_| format!("bad processor `{s}`"))?;
        if raw == 0 || raw > n {
            return Err(format!("processor `{s}` out of range 1..={n}"));
        }
        Ok(ProcessorId::new(raw - 1))
    };
    let parse_receivers = |s: &str| -> Result<ProcSet, String> {
        if s.is_empty() || s == "{}" {
            return Ok(ProcSet::empty());
        }
        s.split(',').map(|part| parse_proc(part.trim())).collect()
    };
    for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
        let entry = entry.trim();
        let (proc_part, behavior_part) = entry
            .split_once(':')
            .ok_or_else(|| format!("expected `pN:behavior`, got `{entry}`"))?;
        let p = parse_proc(proc_part.trim())?;
        let behavior_part = behavior_part.trim();
        let behavior = if behavior_part == "clean" {
            FaultyBehavior::Clean
        } else if behavior_part == "silent" {
            match scenario.mode() {
                FailureMode::Crash => FaultyBehavior::Crash {
                    round: Round::new(1),
                    receivers: ProcSet::empty(),
                },
                _ => FaultyBehavior::Omission {
                    omissions: vec![
                        ProcSet::full(n) - ProcSet::singleton(p);
                        scenario.horizon().index()
                    ],
                },
            }
        } else if let Some(rest) = behavior_part.strip_prefix("crash@") {
            let (round_part, receivers) = match rest.split_once("->") {
                Some((r, recv)) => (r, parse_receivers(recv.trim())?),
                None => (rest, ProcSet::empty()),
            };
            let round: u16 = round_part
                .trim()
                .parse()
                .map_err(|_| format!("bad crash round in `{entry}`"))?;
            if round == 0 || round > scenario.horizon().ticks() {
                return Err(format!("crash round out of range in `{entry}`"));
            }
            FaultyBehavior::Crash {
                round: Round::new(round),
                receivers,
            }
        } else if let Some(rest) = behavior_part.strip_prefix("omit@") {
            let mut omissions = vec![ProcSet::empty(); scenario.horizon().index()];
            for clause in rest.split('@') {
                let (round_part, recv) = clause
                    .split_once("->")
                    .ok_or_else(|| format!("expected `R->procs` in `{entry}`"))?;
                let round: usize = round_part
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad omission round in `{entry}`"))?;
                if round == 0 || round > omissions.len() {
                    return Err(format!("omission round out of range in `{entry}`"));
                }
                omissions[round - 1] = parse_receivers(recv.trim())?;
            }
            FaultyBehavior::Omission { omissions }
        } else {
            return Err(format!("unknown behavior in `{entry}`"));
        };
        pattern.set_behavior(p, behavior);
    }
    scenario
        .validate_pattern(&pattern)
        .map_err(|e| e.to_string())?;
    Ok(pattern)
}

fn describe_point(system: &GeneratedSystem, run: eba_sim::RunId, time: Time) -> String {
    let record = system.run(run);
    format!(
        "run {} at {time}: config {} under [{}] (nonfaulty {})",
        run.index(),
        record.config,
        record.pattern,
        record.nonfaulty,
    )
}

/// Builds the exhaustive system honoring the thread/shard knobs (the
/// unbudgeted path; sweeps reject budgets up front). The build is still
/// governed by an interrupt-only budget so Ctrl-C stops it at the next
/// shard checkpoint instead of being ignored until completion.
fn build_exhaustive(
    scenario: &Scenario,
    options: &Options,
    quotient: bool,
    interrupt: &'static AtomicBool,
) -> Result<BuildOutcome, String> {
    let mut builder = SystemBuilder::new(scenario)
        .budget(RunBudget::unlimited().with_interrupt(interrupt))
        .symmetry(quotient);
    if let Some(threads) = options.threads {
        builder = builder.threads(threads);
    }
    if let Some(shards) = options.shards {
        builder = builder.shards(shards);
    }
    builder.build_governed().map_err(|e| e.to_string())
}

/// Whether `--symmetry` applies to `formula`: the quotient preserves
/// verdicts only for processor-symmetric formulas (DESIGN.md §4i), so a
/// formula naming specific processors falls back to the unreduced
/// system, with a notice unless `--quiet`.
fn quotient_eligible(options: &Options, formula: &Formula) -> bool {
    if !options.symmetry {
        return false;
    }
    // Parsed formulas cannot reference engine-registered state-set
    // families, so the family orbit-closure oracle is never consulted.
    let eligible = formula.symmetric_under_relabeling(&mut |_| true);
    if !eligible && !options.quiet {
        println!("symmetry: formula names specific processors; checking the unreduced system");
    }
    eligible
}

/// The `symmetry:` preamble line of a quotiented check.
fn print_symmetry_line(system: &GeneratedSystem, options: &Options) {
    if options.quiet {
        return;
    }
    if let Some(info) = system.symmetry() {
        println!(
            "symmetry: {} orbits cover {}/{} patterns ({:.2}x reduction)",
            info.num_orbits(),
            info.raw_patterns_covered(),
            info.raw_pattern_total(),
            info.reduction_ratio(),
        );
    }
}

/// Evaluates `formula` over every point of `system` and prints the
/// verdict block (VALID/NOT VALID, counterexample, witness, cache line) —
/// shared by the single-scenario path and each horizon of a sweep.
/// Returns whether the formula is valid.
fn check_valid(
    system: &GeneratedSystem,
    formula: &Formula,
    options: &Options,
    cache: Option<KnowledgeCache>,
) -> bool {
    let mut eval = match cache {
        Some(cache) => Evaluator::with_cache(system, cache),
        None => Evaluator::with_cache(system, KnowledgeCache::with_repr(options.set_repr)),
    };
    eval.set_plan_mode(options.plan);
    if let Some(threads) = options.threads {
        eval.set_threads(threads);
    }
    let satisfied = eval.eval(formula);
    let holding = satisfied.count_ones();
    let total = satisfied.len();
    let valid = holding == total;
    if valid {
        println!("VALID ({total} points)");
    } else {
        println!("NOT VALID: holds at {holding}/{total} points");
        if let Some((run, time)) = eval.counterexample(formula) {
            println!("counterexample: {}", describe_point(system, run, time));
        }
        if options.witness {
            match satisfied.first_one() {
                Some(idx) => {
                    let (run, time) = eval.point_of(idx);
                    println!("witness: {}", describe_point(system, run, time));
                }
                None => println!("witness: none (formula is unsatisfiable here)"),
            }
        }
    }
    if options.cache_stats {
        println!("cache: {}", eval.knowledge_cache().stats());
        println!("scheduler: {}", eba_sim::scheduler_stats());
    }
    valid
}

/// The per-horizon preamble of a sweep (always exhaustive, one formula).
fn print_sweep_preamble(system: &GeneratedSystem, options: &Options, formula: &Formula) {
    if options.quiet {
        return;
    }
    println!(
        "scenario {}: {} runs, {} points (exhaustive)",
        system.scenario(),
        system.num_runs(),
        system.num_points(),
    );
    println!("formula: {formula}");
    print_symmetry_line(system, options);
}

/// Checks one formula at every horizon `from..=to`, either out of one
/// incremental [`EngineSession`] (the default) or via independent cold
/// builds (`--sweep-cold`, the differential oracle). Both modes print
/// identical per-horizon output — CI diffs them — except for the
/// diagnostic `cache:`/`extend:` lines under `--cache-stats`.
fn run_sweep(
    options: &Options,
    from: u16,
    to: u16,
    interrupt: &'static AtomicBool,
) -> Result<ExitCode, String> {
    let formula = parse_formula(&options.formulas[0]).map_err(|e| e.to_string())?;
    let base_scenario = Scenario::new(options.n, options.t, options.mode, from)
        .and_then(|s| s.with_exchange(options.exchange))
        .map_err(|e| e.to_string())?;
    let quotient = quotient_eligible(options, &formula);
    let mut all_valid = true;
    if options.sweep_cold {
        for h in from..=to {
            if h > from && interrupt.load(Ordering::Relaxed) {
                println!("PARTIAL: interrupted; sweep stopped before horizon {h}");
                break;
            }
            let scenario = base_scenario.with_horizon(h).map_err(|e| e.to_string())?;
            let system = match build_exhaustive(&scenario, options, quotient, interrupt)? {
                BuildOutcome::Complete { system, .. } => system,
                BuildOutcome::Partial { budget_hit, .. } => {
                    println!("PARTIAL: {budget_hit}; sweep stopped before horizon {h}");
                    break;
                }
            };
            println!("== horizon {h} ==");
            print_sweep_preamble(&system, options, &formula);
            all_valid &= check_valid(&system, &formula, options, None);
        }
    } else {
        let base = match build_exhaustive(&base_scenario, options, quotient, interrupt)? {
            BuildOutcome::Complete { system, .. } => system,
            BuildOutcome::Partial { budget_hit, .. } => {
                println!("PARTIAL: {budget_hit}; sweep stopped before horizon {from}");
                return Ok(ExitCode::SUCCESS);
            }
        };
        let mut session =
            EngineSession::from_system_with_repr(base, SessionScope::FullSpace, options.set_repr);
        if let Some(threads) = options.threads {
            session.set_threads(threads);
        }
        for h in from..=to {
            if h > from {
                if interrupt.load(Ordering::Relaxed) {
                    println!("PARTIAL: interrupted; sweep stopped before horizon {h}");
                    break;
                }
                let report = session.extend_to(h).map_err(|e| e.to_string())?;
                if options.cache_stats {
                    println!("extend: {report}");
                }
            }
            println!("== horizon {h} ==");
            print_sweep_preamble(session.system(), options, &formula);
            all_valid &= check_valid(
                session.system(),
                &formula,
                options,
                Some(session.cache().clone()),
            );
        }
    }
    Ok(if all_valid {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) if message.is_empty() => {
            print!("{HELP}");
            return Ok(ExitCode::SUCCESS);
        }
        Err(message) => return Err(message),
    };
    // Ctrl-C sets a flag that every governed build polls at its shard
    // checkpoints; the run then finishes with a PARTIAL prefix verdict
    // instead of being killed mid-write.
    let interrupt = install_sigint();

    // Only `--threads auto` prints the resolution, so explicit thread
    // counts keep byte-identical output (the parallel-equivalence CI job
    // diffs runs at --threads 1/2/8).
    if options.threads_auto && !options.quiet {
        if let Some(threads) = options.threads {
            println!("threads: {threads} (auto)");
        }
    }
    // Only the non-default backend prints, so dense output stays
    // byte-identical to previous releases (and the setrepr-equivalence
    // CI job diffs dense vs shared under --quiet, where neither prints).
    if options.set_repr == SetReprKind::Shared && !options.quiet {
        println!("set-repr: {}", options.set_repr);
    }

    if options.sweep_cold && options.horizon_sweep.is_none() {
        return Err("--sweep-cold needs --horizon-sweep".into());
    }
    if options.symmetry {
        // Knob validation before any heavy work, mirroring the builder's
        // own `check_symmetry_supported` but with CLI-level phrasing.
        if options.sampled.is_some() {
            return Err("--symmetry quotients the exhaustive system; drop --sampled".into());
        }
        if options.timeline {
            return Err("--timeline pins one concrete run; drop --symmetry".into());
        }
        if !options.exchange.is_full() {
            return Err(format!(
                "--symmetry needs the full-information exchange; `{}` bakes processor \
                 labels into its bounded states",
                options.exchange
            ));
        }
    }
    if let Some((from, to)) = options.horizon_sweep {
        // Gate before any heavy work, in the PR 2 knob-validation style:
        // the session-extension path is only certified for exchanges that
        // support it (and --sweep-cold's contract is to mirror that path).
        if !options.exchange.supports_session_extension() {
            return Err(format!(
                "--horizon-sweep needs an exchange supporting session extension; \
                 `{}` is rebuild-only (use full or digest:0, or check horizons individually)",
                options.exchange
            ));
        }
        if options.horizon.is_some() {
            return Err(
                "--horizon conflicts with --horizon-sweep (the sweep sets the horizons)".into(),
            );
        }
        if options.sampled.is_some() {
            return Err("--horizon-sweep needs the exhaustive system; drop --sampled".into());
        }
        if options.timeline {
            return Err("--timeline checks one run at one horizon; drop --horizon-sweep".into());
        }
        if options.deadline.is_some() || options.max_runs.is_some() {
            return Err(
                "--deadline/--max-runs govern single builds; drop them for --horizon-sweep".into(),
            );
        }
        return run_sweep(&options, from, to, interrupt);
    }

    let horizon = options.horizon.unwrap_or(options.t as u16 + 2);
    let scenario = Scenario::new(options.n, options.t, options.mode, horizon)
        .and_then(|s| s.with_exchange(options.exchange))
        .map_err(|e| e.to_string())?;

    if options.timeline && options.sampled.is_some() {
        return Err("--timeline needs the exhaustive system; drop --sampled".into());
    }

    let formulas: Vec<(String, Formula)> = options
        .formulas
        .iter()
        .map(|text| {
            parse_formula(text)
                .map(|f| (text.clone(), f))
                .map_err(|e| e.to_string())
        })
        .collect::<Result<_, _>>()?;
    let quotient = quotient_eligible(&options, &formulas[0].1);

    // Validate the timeline run selection before doing any heavy work or
    // printing the preamble.
    let timeline_run = if options.timeline {
        let config = match &options.config {
            Some(spec) => parse_config(spec, options.n)?,
            None => InitialConfig::uniform(options.n, Value::One),
        };
        let pattern = match &options.pattern {
            Some(spec) => parse_pattern(spec, &scenario)?,
            None => FailurePattern::failure_free(options.n),
        };
        Some((config, pattern))
    } else {
        None
    };

    if options.shards.is_some() && options.sampled.is_some() {
        return Err("--shards applies to exhaustive generation; drop --sampled".into());
    }
    let budgeted = options.deadline.is_some() || options.max_runs.is_some();
    if budgeted && options.sampled.is_some() {
        return Err("--deadline/--max-runs govern exhaustive generation; drop --sampled".into());
    }
    if budgeted && options.timeline {
        return Err("--timeline needs the complete system; drop --deadline/--max-runs".into());
    }

    let system = match options.sampled {
        Some((runs, seed)) => GeneratedSystem::sampled(&scenario, runs, seed),
        None => {
            // Every exhaustive build is governed: even without
            // --deadline/--max-runs the budget carries the Ctrl-C flag,
            // so an interrupted build degrades to the same PARTIAL
            // prefix verdict a deadline would produce.
            let mut budget = RunBudget::unlimited().with_interrupt(interrupt);
            if let Some(deadline) = options.deadline {
                budget = budget.with_deadline(deadline);
            }
            if let Some(max_runs) = options.max_runs {
                budget = budget.with_max_runs(max_runs);
            }
            let mut builder = SystemBuilder::new(&scenario)
                .budget(budget)
                .symmetry(quotient);
            if let Some(threads) = options.threads {
                builder = builder.threads(threads);
            }
            if let Some(shards) = options.shards {
                builder = builder.shards(shards);
            }
            match builder.build_governed().map_err(|e| e.to_string())? {
                BuildOutcome::Complete { system, .. } => system,
                BuildOutcome::Partial {
                    system,
                    completed_shards,
                    total_shards,
                    budget_hit,
                    ..
                } => {
                    if system.num_runs() == 0 {
                        return Err(match budget_hit {
                            BudgetHit::Interrupted => {
                                "interrupted before any shard completed; no partial verdict"
                                    .to_owned()
                            }
                            _ => format!(
                                "budget exhausted before any shard completed ({budget_hit}); \
                                 raise --deadline/--max-runs"
                            ),
                        });
                    }
                    if options.timeline {
                        return Err(format!(
                            "{budget_hit} mid-build; --timeline needs the complete system"
                        ));
                    }
                    println!(
                        "PARTIAL: {budget_hit}; verdict covers {completed_shards}/{total_shards} \
                         shards ({} runs)",
                        system.num_runs(),
                    );
                    system
                }
            }
        }
    };
    if !options.quiet {
        println!(
            "scenario {scenario}: {} runs, {} points ({})",
            system.num_runs(),
            system.num_points(),
            if options.sampled.is_some() {
                "sampled"
            } else {
                "exhaustive"
            },
        );
        for (_, f) in &formulas {
            println!("formula: {f}");
        }
        print_symmetry_line(&system, &options);
    }

    if let Some((config, pattern)) = timeline_run {
        let mut eval =
            Evaluator::with_cache(&system, KnowledgeCache::with_repr(options.set_repr));
        eval.set_plan_mode(options.plan);
        if let Some(threads) = options.threads {
            eval.set_threads(threads);
        }
        let run = system
            .find_run(&config, &pattern)
            .ok_or("run not in the generated system")?;
        println!("run: {config} under [{pattern}]");
        let timeline = Timeline::build(&mut eval, run, &formulas);
        println!("{timeline}");
        if options.cache_stats {
            println!("cache: {}", eval.knowledge_cache().stats());
            println!("scheduler: {}", eba_sim::scheduler_stats());
        }
        return Ok(ExitCode::SUCCESS);
    }

    if check_valid(&system, &formulas[0].1, &options, None) {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `eba-check --help` for usage");
            ExitCode::from(2)
        }
    }
}
