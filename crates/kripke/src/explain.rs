//! Human-readable knowledge timelines: for a run, which formulas hold at
//! which times. Used by the `run_explorer` example and handy when
//! debugging protocols.

use crate::{Evaluator, Formula};
use eba_model::Time;
use eba_sim::RunId;
use std::fmt;

/// A truth-value timeline of labeled formulas along one run.
///
/// # Example
///
/// ```
/// use eba_kripke::{explain::Timeline, Evaluator, Formula, NonRigidSet};
/// use eba_model::{FailureMode, Scenario, Value};
/// use eba_sim::{GeneratedSystem, RunId};
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
/// let system = GeneratedSystem::exhaustive(&scenario);
/// let mut eval = Evaluator::new(&system);
/// let timeline = Timeline::build(
///     &mut eval,
///     RunId::new(0),
///     &[("C_N ∃0".into(), Formula::exists(Value::Zero).common(NonRigidSet::Nonfaulty))],
/// );
/// println!("{timeline}");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Timeline {
    run: RunId,
    labels: Vec<String>,
    /// `grid[row][time]`.
    grid: Vec<Vec<bool>>,
}

impl Timeline {
    /// Evaluates every labeled formula at every time of `run`.
    pub fn build(eval: &mut Evaluator<'_>, run: RunId, formulas: &[(String, Formula)]) -> Timeline {
        let horizon = eval.system().horizon();
        let mut labels = Vec::with_capacity(formulas.len());
        let mut grid = Vec::with_capacity(formulas.len());
        for (label, formula) in formulas {
            let satisfied = eval.eval(formula);
            labels.push(label.clone());
            grid.push(
                Time::upto(horizon)
                    .map(|time| satisfied.get(eval.point_index(run, time)))
                    .collect(),
            );
        }
        Timeline { run, labels, grid }
    }

    /// The run this timeline describes.
    #[must_use]
    pub fn run(&self) -> RunId {
        self.run
    }

    /// Truth value of row `row` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `time` is out of range.
    #[must_use]
    pub fn holds(&self, row: usize, time: Time) -> bool {
        self.grid[row][time.index()]
    }

    /// The first time row `row` becomes true, if ever.
    #[must_use]
    pub fn first_true(&self, row: usize) -> Option<Time> {
        self.grid[row]
            .iter()
            .position(|&b| b)
            .map(|idx| Time::new(idx as u16))
    }

    /// Whether row `row` is monotone (never goes from true back to
    /// false) — the signature of stable knowledge.
    #[must_use]
    pub fn is_monotone(&self, row: usize) -> bool {
        !self.grid[row].windows(2).any(|w| w[0] && !w[1])
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .labels
            .iter()
            .map(|l| l.chars().count())
            .max()
            .unwrap_or(0);
        let times = self.grid.first().map_or(0, Vec::len);
        write!(f, "{:>width$} ", "time")?;
        for t in 0..times {
            write!(f, "{t:>3}")?;
        }
        writeln!(f)?;
        for (label, row) in self.labels.iter().zip(&self.grid) {
            let pad = width - label.chars().count();
            write!(f, "{}{label} ", " ".repeat(pad))?;
            for &b in row {
                write!(f, "{:>3}", if b { "●" } else { "·" })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NonRigidSet;
    use eba_model::{FailureMode, ProcessorId, Scenario, Value};
    use eba_sim::GeneratedSystem;

    fn build_timeline() -> Timeline {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        let mut eval = Evaluator::new(&system);
        let run = system
            .find_run(
                &eba_model::InitialConfig::from_bits(3, 0b110),
                &eba_model::FailurePattern::failure_free(3),
            )
            .unwrap();
        Timeline::build(
            &mut eval,
            run,
            &[
                (
                    "B_2 ∃0".into(),
                    Formula::exists(Value::Zero)
                        .believed_by(ProcessorId::new(1), NonRigidSet::Nonfaulty),
                ),
                (
                    "C_N ∃0".into(),
                    Formula::exists(Value::Zero).common(NonRigidSet::Nonfaulty),
                ),
            ],
        )
    }

    #[test]
    fn knowledge_precedes_common_knowledge() {
        let timeline = build_timeline();
        let knows = timeline.first_true(0).expect("p2 learns the 0");
        let common = timeline.first_true(1).expect("C arises");
        assert!(knows < common, "{knows} vs {common}");
        assert_eq!(knows, Time::new(1));
        assert_eq!(common, Time::new(2));
    }

    #[test]
    fn stable_knowledge_is_monotone() {
        let timeline = build_timeline();
        assert!(timeline.is_monotone(0));
        assert!(timeline.is_monotone(1));
    }

    #[test]
    fn display_draws_dots_and_bullets() {
        let timeline = build_timeline();
        let rendered = timeline.to_string();
        assert!(rendered.contains("●"));
        assert!(rendered.contains("·"));
        assert!(rendered.contains("B_2 ∃0"));
    }

    #[test]
    fn holds_matches_first_true() {
        let timeline = build_timeline();
        let first = timeline.first_true(0).unwrap();
        assert!(timeline.holds(0, first));
        if let Some(prev) = first.prev() {
            assert!(!timeline.holds(0, prev));
        }
    }
}
