//! Clean-round early-stopping EBA for crash failures.

use eba_model::{ProcSet, ProcessorId, Round, Value};
use eba_sim::Protocol;

/// An early-stopping EBA protocol for the crash mode: processors flood
/// the minimum value they have seen, and a processor decides its current
/// minimum the first time it observes a *clean round* — a round in which
/// it hears from exactly the same set of processors as in the previous
/// round (so no crash hid information from it), with a `t + 1` fallback.
///
/// With `f` actual failures a clean round occurs by round `f + 2`, so
/// decisions happen by time `min(f + 2, t + 1)` — an early-stopping
/// baseline sitting strictly between `FloodMin` (always `t + 1`) and the
/// optimal `P0opt`. Used in the domination experiments as a third,
/// non-optimal-but-adaptive data point.
///
/// # Example
///
/// ```
/// use eba_model::{FailurePattern, InitialConfig, ProcessorId, Time, Value};
/// use eba_protocols::EarlyStoppingCrash;
/// use eba_sim::execute;
///
/// let protocol = EarlyStoppingCrash::new(2);
/// let config = InitialConfig::uniform(4, Value::One);
/// let trace = execute(&protocol, &config, &FailurePattern::failure_free(4), Time::new(4)).unwrap();
/// // Failure-free: round 2 is already clean, beating t+1 = 3.
/// assert_eq!(trace.decision_time(ProcessorId::new(0)), Some(Time::new(2)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct EarlyStoppingCrash {
    t: u16,
}

impl EarlyStoppingCrash {
    /// Creates the protocol for a system tolerating `t` crash failures.
    #[must_use]
    pub fn new(t: usize) -> Self {
        EarlyStoppingCrash { t: t as u16 }
    }
}

/// The local state of [`EarlyStoppingCrash`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EarlyStopState {
    /// Minimum initial value seen so far.
    pub min: Value,
    /// Who was heard from in the previous round.
    heard_prev: Option<ProcSet>,
    /// Rounds completed.
    now: u16,
    /// Latched decision and its time.
    decided: Option<(Value, u16)>,
}

impl Protocol for EarlyStoppingCrash {
    type State = EarlyStopState;
    type Message = Value;

    fn name(&self) -> &str {
        "EarlyStop"
    }

    fn initial_state(&self, _p: ProcessorId, _n: usize, value: Value) -> EarlyStopState {
        EarlyStopState {
            min: value,
            heard_prev: None,
            now: 0,
            decided: None,
        }
    }

    fn message(
        &self,
        state: &EarlyStopState,
        _from: ProcessorId,
        _to: ProcessorId,
        round: Round,
    ) -> Option<Value> {
        // Keep flooding until one round after deciding.
        match state.decided {
            Some((_, at)) if round.number() > at + 1 => None,
            _ => Some(state.min),
        }
    }

    fn transition(
        &self,
        state: &EarlyStopState,
        _p: ProcessorId,
        _round: Round,
        received: &[Option<Value>],
    ) -> EarlyStopState {
        let mut heard = ProcSet::empty();
        let mut min = state.min;
        for (j, msg) in received.iter().enumerate() {
            if let Some(v) = msg {
                heard.insert(ProcessorId::new(j));
                min = min.min(*v);
            }
        }
        let now = state.now + 1;
        let decided = state.decided.or({
            if state.heard_prev == Some(heard) || now > self.t {
                Some((min, now))
            } else {
                None
            }
        });
        EarlyStopState {
            min,
            heard_prev: Some(heard),
            now,
            decided,
        }
    }

    fn output(&self, state: &EarlyStopState, _p: ProcessorId) -> Option<Value> {
        state.decided.map(|(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{
        enumerate, FailureMode, FailurePattern, FaultyBehavior, InitialConfig, Scenario, Time,
    };
    use eba_sim::execute_unchecked as execute;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn failure_free_decides_at_time_two() {
        let protocol = EarlyStoppingCrash::new(3);
        let trace = execute(
            &protocol,
            &InitialConfig::from_bits(5, 0b11110),
            &FailurePattern::failure_free(5),
            Time::new(5),
        );
        for i in 0..5 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::new(2)));
            assert_eq!(trace.decided_value(p(i)), Some(Value::Zero));
        }
    }

    #[test]
    fn exhaustive_crash_eba_properties() {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        let protocol = EarlyStoppingCrash::new(1);
        for pattern in enumerate::patterns(&scenario) {
            for config in InitialConfig::enumerate_all(3) {
                let trace = execute(&protocol, &config, &pattern, scenario.horizon());
                assert!(trace.satisfies_decision(), "{config} {pattern}");
                assert!(trace.satisfies_weak_agreement(), "{config} {pattern}");
                assert!(trace.satisfies_weak_validity(), "{config} {pattern}");
            }
        }
    }

    #[test]
    fn crash_delays_decision_by_at_most_one_clean_round() {
        let protocol = EarlyStoppingCrash::new(2);
        let pattern = FailurePattern::failure_free(4).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
        let trace = execute(
            &protocol,
            &InitialConfig::uniform(4, Value::One),
            &pattern,
            Time::new(4),
        );
        // Round 1 loses p0, round 2 matches round 1: decide at time 2.
        for i in 1..4 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::new(2)));
        }
    }
}
