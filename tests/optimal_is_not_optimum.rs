//! Optimal ≠ optimum, at the knowledge level.
//!
//! Proposition 2.1 shows no *optimum* EBA protocol exists, via the
//! message-level pair `P0`/`P1`. The knowledge-level mirror: the
//! Theorem 5.2 construction run zero-first (`step_one ∘ step_zero`) and
//! one-first (`step_zero ∘ step_one`) from the same seed produces two
//! protocols that are **both optimal** (each passes the Theorem 5.3
//! characterization) yet **neither dominates the other** — each is
//! strictly faster on the configurations its first step favors.

use eba::prelude::*;

fn optimal_pair(
    system: &GeneratedSystem,
) -> (DecisionPair, DecisionPair, FipDecisions, FipDecisions) {
    let mut ctor = Constructor::new(system);
    let seed = DecisionPair::empty(system.n());
    let zero_first = ctor.optimize(&seed);
    let one_first = ctor.optimize_one_first(&seed);
    let d_zero = FipDecisions::compute(system, &zero_first, "F² (0-first)");
    let d_one = FipDecisions::compute(system, &one_first, "F² (1-first)");
    (zero_first, one_first, d_zero, d_one)
}

#[test]
fn both_constructions_are_optimal_but_incomparable_crash() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    let system = GeneratedSystem::exhaustive(&scenario);
    let (zero_first, one_first, d_zero, d_one) = optimal_pair(&system);

    let mut ctor = Constructor::new(&system);
    assert!(check_optimality(&mut ctor, &zero_first).is_optimal());
    assert!(check_optimality(&mut ctor, &one_first).is_optimal());

    let fwd = dominates(&system, &d_zero, &d_one);
    let bwd = dominates(&system, &d_one, &d_zero);
    assert!(
        !fwd.dominates,
        "zero-first should not dominate one-first: {fwd}"
    );
    assert!(
        !bwd.dominates,
        "one-first should not dominate zero-first: {bwd}"
    );
    // Each is strictly faster somewhere.
    assert!(fwd.earlier > 0 && bwd.earlier > 0);
}

#[test]
fn both_constructions_are_optimal_but_incomparable_omission() {
    let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
    let system = GeneratedSystem::exhaustive(&scenario);
    let (zero_first, one_first, d_zero, d_one) = optimal_pair(&system);

    let mut ctor = Constructor::new(&system);
    assert!(check_optimality(&mut ctor, &zero_first).is_optimal());
    assert!(check_optimality(&mut ctor, &one_first).is_optimal());

    let fwd = dominates(&system, &d_zero, &d_one);
    let bwd = dominates(&system, &d_one, &d_zero);
    assert!(!fwd.dominates && !bwd.dominates);
}

/// The two optima disagree exactly where Prop 2.1 predicts: the
/// zero-first protocol decides earlier on 0-heavy runs, the one-first on
/// 1-heavy runs.
#[test]
fn disagreements_follow_the_favored_value() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    let system = GeneratedSystem::exhaustive(&scenario);
    let (_, _, d_zero, d_one) = optimal_pair(&system);

    let all_zero = system
        .find_run(
            &InitialConfig::uniform(3, Value::Zero),
            &FailurePattern::failure_free(3),
        )
        .unwrap();
    let all_one = system
        .find_run(
            &InitialConfig::uniform(3, Value::One),
            &FailurePattern::failure_free(3),
        )
        .unwrap();
    for p in ProcessorId::all(3) {
        // All-zeros: the zero-first optimum decides at time 0; the
        // one-first must wait to rule out a decision of 1.
        assert_eq!(d_zero.decision_time(all_zero, p), Some(Time::ZERO));
        assert!(d_one.decision_time(all_zero, p).unwrap() > Time::ZERO);
        // All-ones: symmetric.
        assert_eq!(d_one.decision_time(all_one, p), Some(Time::ZERO));
        assert!(d_zero.decision_time(all_one, p).unwrap() > Time::ZERO);
    }
}
