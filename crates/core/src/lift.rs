//! Lifting arbitrary protocols to full-information decision pairs
//! (Proposition 2.2 / Corollary 2.3, made executable).
//!
//! Proposition 2.2: for any protocol `P` there is a function `f_i` from
//! `i`'s full-information view to its `P`-state, commuting with
//! corresponding points. Corollary 2.3: therefore the full-information
//! protocol that decides wherever `P` would is well defined and dominates
//! `P` (here: decides at *exactly* `P`'s times — the head start a FIP
//! could gain over `P` comes from *changing* the decision rule, which is
//! Section 5's job).
//!
//! [`lift_protocol`] computes that decision pair by executing `P` over
//! every run of the generated system and attributing its decisions to the
//! corresponding views; the `f_i` well-definedness of Proposition 2.2
//! guarantees (and [`lift_protocol`] asserts) that a view is never
//! attributed conflicting decisions.

use crate::DecisionPair;
use eba_kripke::StateSets;
use eba_model::{ProcessorId, Time, Value};
use eba_sim::{execute_unchecked, GeneratedSystem, Protocol};
use std::collections::HashMap;

/// Lifts a message-level protocol to the decision pair of the
/// full-information protocol that makes the same decisions
/// (Corollary 2.3). The result can then be optimized with
/// [`crate::Constructor::optimize`] — the complete pipeline of the paper:
/// *any* protocol → full-information protocol → optimal protocol.
/// (Theorem 5.2's domination guarantee presumes the lifted protocol is a
/// *nontrivial agreement* protocol, like every protocol the construction
/// is meant for; check with [`crate::verify_properties`] first when in
/// doubt.)
///
/// # Panics
///
/// Panics if `P` violates Proposition 2.2 over this system — i.e. two
/// corresponding points give `i` the same view but different `P`
/// decisions (impossible for a deterministic protocol; a failure here
/// indicates nondeterminism or hidden inputs).
///
/// # Example
///
/// ```
/// use eba_core::{dominates, lift_protocol, Constructor, FipDecisions};
/// use eba_model::{FailureMode, Scenario};
/// use eba_sim::GeneratedSystem;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 3)?;
/// let system = GeneratedSystem::exhaustive(&scenario);
/// let lifted = lift_protocol(&system, &eba_protocols_doc_stub());
/// let mut ctor = Constructor::new(&system);
/// let optimal = ctor.optimize(&lifted);
/// let d_lifted = FipDecisions::compute(&system, &lifted, "lifted");
/// let d_optimal = FipDecisions::compute(&system, &optimal, "optimized");
/// assert!(dominates(&system, &d_optimal, &d_lifted).dominates);
/// # Ok(())
/// # }
/// # // A minimal stand-in for the doctest: a (vacuously correct)
/// # // nontrivial agreement protocol that never decides, like F^Λ.
/// # fn eba_protocols_doc_stub() -> impl eba_sim::Protocol<State = (), Message = ()> {
/// #     struct Never;
/// #     impl eba_sim::Protocol for Never {
/// #         type State = ();
/// #         type Message = ();
/// #         fn name(&self) -> &str { "never" }
/// #         fn initial_state(&self, _: eba_model::ProcessorId, _: usize, _: eba_model::Value) {}
/// #         fn message(&self, (): &(), _: eba_model::ProcessorId, _: eba_model::ProcessorId, _: eba_model::Round) -> Option<()> { None }
/// #         fn transition(&self, (): &(), _: eba_model::ProcessorId, _: eba_model::Round, _: &[Option<()>]) {}
/// #         fn output(&self, (): &(), _: eba_model::ProcessorId) -> Option<eba_model::Value> { None }
/// #     }
/// #     Never
/// # }
/// ```
#[must_use]
pub fn lift_protocol<P: Protocol>(system: &GeneratedSystem, protocol: &P) -> DecisionPair {
    let n = system.n();
    let mut zero = StateSets::empty(n);
    let mut one = StateSets::empty(n);
    // Well-definedness check (Prop 2.2): view → decided-value must be a
    // function.
    let mut seen: Vec<HashMap<eba_sim::ViewId, Option<Value>>> = vec![HashMap::new(); n];

    for run in system.run_ids() {
        let record = system.run(run);
        let trace = execute_unchecked(protocol, &record.config, &record.pattern, system.horizon());
        for p in ProcessorId::all(n) {
            for time in Time::upto(system.horizon()) {
                // A crashed processor's trace state freezes exactly like
                // its view; keep the attribution aligned regardless.
                let view = system.view(run, p, time);
                let decided = trace
                    .decision(p)
                    .filter(|d| d.time <= time)
                    .map(|d| d.value);
                match seen[p.index()].insert(view, decided) {
                    Some(prior) => assert_eq!(
                        prior,
                        decided,
                        "Proposition 2.2 violated: view of {p} maps to two \
                         different {} decisions",
                        protocol.name(),
                    ),
                    None => match decided {
                        Some(Value::Zero) => {
                            zero.insert(p, view);
                        }
                        Some(Value::One) => {
                            one.insert(p, view);
                        }
                        None => {}
                    },
                }
            }
        }
    }
    DecisionPair::new(zero, one)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dominates, verify_properties, Constructor, FipDecisions};
    use eba_model::{FailureMode, Scenario};
    use eba_protocols::{P0Opt, Relay};

    fn crash_system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    #[test]
    fn lifted_p0_decides_exactly_like_p0() {
        let system = crash_system();
        let lifted = lift_protocol(&system, &Relay::p0(1));
        let d = FipDecisions::compute(&system, &lifted, "FIP(P0)");
        for run in system.run_ids() {
            let record = system.run(run);
            let trace = execute_unchecked(
                &Relay::p0(1),
                &record.config,
                &record.pattern,
                system.horizon(),
            );
            for p in record.nonfaulty {
                assert_eq!(d.decision(run, p), trace.decision(p), "run {}", run.index());
            }
        }
        // Corollary 2.3: the lifted FIP is (at least weakly) a nontrivial
        // agreement protocol because P0 is.
        assert!(verify_properties(&system, &d).is_eba());
    }

    #[test]
    fn the_full_pipeline_any_protocol_to_optimal() {
        // Lift P0 and optimize: the result must dominate P0 strictly and
        // pass the Theorem 5.3 characterization — the complete story of
        // the paper in four lines of API.
        let system = crash_system();
        let lifted = lift_protocol(&system, &Relay::p0(1));
        let mut ctor = Constructor::new(&system);
        let optimal = ctor.optimize(&lifted);
        let d_lifted = FipDecisions::compute(&system, &lifted, "FIP(P0)");
        let d_optimal = FipDecisions::compute(&system, &optimal, "optimize(FIP(P0))");
        let dom = dominates(&system, &d_optimal, &d_lifted);
        assert!(dom.dominates && dom.strict, "{dom}");
        assert!(crate::check_optimality(&mut ctor, &optimal).is_optimal());
        assert!(verify_properties(&system, &d_optimal).is_eba());
    }

    #[test]
    fn optimizing_lifted_p0_reproduces_f_lambda_2_decisions() {
        // Theorem 5.2's construction from FIP(P0) and from F^Λ both land
        // on optimal protocols; starting from P0 (whose decide-0 rule is
        // already maximal) the zero-first optimization reproduces exactly
        // the F^{Λ,2} decisions.
        let system = crash_system();
        let lifted = lift_protocol(&system, &Relay::p0(1));
        let mut ctor = Constructor::new(&system);
        let from_p0 = ctor.optimize(&lifted);
        let from_nothing = crate::protocols::f_lambda_2(&mut ctor);
        let a = FipDecisions::compute(&system, &from_p0, "optimize(FIP(P0))");
        let b = FipDecisions::compute(&system, &from_nothing, "F^{Λ,2}");
        let fwd = dominates(&system, &a, &b);
        let bwd = dominates(&system, &b, &a);
        assert!(
            fwd.equivalent_times() && bwd.equivalent_times(),
            "{fwd} / {bwd}"
        );
    }

    #[test]
    fn lifted_p0opt_is_already_optimal() {
        let system = crash_system();
        let lifted = lift_protocol(&system, &P0Opt::new(1));
        let mut ctor = Constructor::new(&system);
        assert!(crate::check_optimality(&mut ctor, &lifted).is_optimal());
    }
}
