//! Hand-rolled line-protocol JSON: a minimal value type, a deterministic
//! writer, and a hardened parser.
//!
//! The workspace is offline (no serde), and the daemon's chaos contract
//! requires **byte-identical** responses between the concurrent server
//! and the single-threaded oracle, so the representation is deliberately
//! simple and fully ordered:
//!
//! * objects are insertion-ordered `Vec<(String, Json)>` — writing a
//!   value twice produces the same bytes, and two code paths that build
//!   the same frame field-by-field produce the same bytes;
//! * the writer emits no insignificant whitespace and escapes exactly
//!   the characters JSON requires;
//! * the parser is a recursive-descent reader with an explicit depth
//!   limit, so a malicious frame of ten thousand `[` cannot blow the
//!   stack of a connection thread.

use std::fmt;

/// Nesting depth past which [`parse`] rejects the input. Protocol frames
/// are at most three levels deep; 64 leaves generous headroom while
/// keeping adversarial recursion bounded.
const MAX_DEPTH: usize = 64;

/// A JSON value. Numbers keep their syntactic class (`Int` vs `Float`)
/// so integer round-trips are exact and byte-stable.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and significant for
    /// output bytes (never for lookups).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn obj<I>(fields: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Object field lookup (first match; `None` for non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as an unsigned value.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to the canonical compact form (no whitespace).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

fn write_value(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(x) => {
            if x.is_finite() {
                let text = format!("{x}");
                // `1.0f64` displays as "1"; keep a float marker so the
                // syntactic class round-trips.
                if text.contains('.') || text.contains('e') || text.contains('E') {
                    out.push_str(&text);
                } else {
                    out.push_str(&text);
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; the protocol never produces them,
                // but the writer must stay total.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: a message and the byte offset it refers to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed input, nesting deeper than
/// [`MAX_DEPTH`], or trailing garbage.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: accept, combining when the
                            // low half follows; lone surrogates become
                            // U+FFFD rather than panicking.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined).unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(code).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_are_byte_stable() {
        let frame = Json::obj([
            ("op", Json::Str("check".into())),
            ("n", Json::Int(3)),
            ("ok", Json::Bool(true)),
            ("items", Json::Arr(vec![Json::Null, Json::Int(-7)])),
        ]);
        let line = frame.to_line();
        assert_eq!(line, r#"{"op":"check","n":3,"ok":true,"items":[null,-7]}"#);
        assert_eq!(parse(&line).unwrap(), frame);
        assert_eq!(parse(&line).unwrap().to_line(), line);
    }

    #[test]
    fn parses_strings_with_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\ndA".into()));
        // And the writer re-escapes them canonically.
        assert_eq!(v.to_line(), r#""a\"b\\c\ndA""#);
    }

    #[test]
    fn rejects_malformed_frames() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\u{1}",
            "1 2",
            "{\"a\" 1}",
            "\"unterminated",
            "nulll",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // …while protocol-depth frames parse fine.
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn numbers_keep_their_syntactic_class() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-9").unwrap(), Json::Int(-9));
        assert_eq!(parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::Float(2.0).to_line(), "2.0");
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse(r#"{"op":"ping","n":3,"deep":{"x":true}}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("ping"));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("deep")
                .and_then(|d| d.get("x"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert!(v.get("missing").is_none());
    }
}
