//! The scenario space: deterministic sharding of a scenario's work.
//!
//! A generated system enumerates the cross product of a scenario's initial
//! configurations and failure patterns. [`ScenarioSpace`] describes that
//! product abstractly and splits the pattern axis into `K` deterministic,
//! contiguous [`Shard`]s so independent workers can each enumerate a slice
//! without materializing (or even counting through) the slices of the
//! others. Shards follow the exact order of [`enumerate::patterns`], so
//! concatenating the shards' output reproduces the sequential enumeration
//! bit for bit — the property the parallel system builder relies on to
//! assign identical ids regardless of worker count.

use crate::enumerate::{self, Patterns};
use crate::symmetry;
use crate::{FailurePattern, InitialConfig, ModelError, Scenario};

/// The enumeration space of a scenario: all `(config, pattern)` pairs.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioSpace {
    scenario: Scenario,
    num_patterns: u128,
}

impl ScenarioSpace {
    /// The space of the given scenario.
    ///
    /// # Panics
    ///
    /// Panics with the rendered [`ModelError::CapacityExceeded`] when the
    /// scenario's pattern count overflows `u128`; see
    /// [`ScenarioSpace::try_new`] for the typed-error form.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        match ScenarioSpace::try_new(scenario) {
            Ok(space) => space,
            Err(e) => panic!("{e}"),
        }
    }

    /// The space of the given scenario, surfacing a typed
    /// [`ModelError::CapacityExceeded`] when the pattern count overflows
    /// the `u128` index arithmetic the space's sharding is built on.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExceeded`] on overflow.
    pub fn try_new(scenario: Scenario) -> Result<Self, ModelError> {
        Ok(ScenarioSpace {
            scenario,
            num_patterns: enumerate::try_count_patterns(&scenario)?,
        })
    }

    /// The underlying scenario.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The number of failure patterns ([`enumerate::count_patterns`]).
    #[must_use]
    pub fn num_patterns(&self) -> u128 {
        self.num_patterns
    }

    /// The number of initial configurations (`2^n`: every assignment of a
    /// binary initial value to each processor).
    #[must_use]
    pub fn num_configs(&self) -> u128 {
        1u128 << self.scenario.n()
    }

    /// The number of runs an exhaustive system over this space contains.
    #[must_use]
    pub fn total_runs(&self) -> u128 {
        self.num_patterns * self.num_configs()
    }

    /// All initial configurations, in enumeration order.
    pub fn configs(&self) -> impl Iterator<Item = InitialConfig> {
        InitialConfig::enumerate_all(self.scenario.n())
    }

    /// Splits the pattern axis into at most `requested` contiguous shards.
    ///
    /// Shard sizes differ by at most one pattern, empty shards are never
    /// produced (so fewer than `requested` shards come back when there are
    /// fewer patterns than workers), and the division depends only on
    /// `(scenario, requested)` — the same inputs always produce the same
    /// shards. `requested` is clamped to at least 1.
    #[must_use]
    pub fn shards(&self, requested: usize) -> Vec<Shard> {
        let requested = (requested.max(1) as u128).min(self.num_patterns).max(1);
        let base = self.num_patterns / requested;
        let extra = self.num_patterns % requested;
        let mut out = Vec::with_capacity(requested as usize);
        let mut start = 0u128;
        for index in 0..requested {
            let len = if index < extra { base + 1 } else { base };
            if len == 0 {
                break;
            }
            out.push(Shard {
                index: index as usize,
                start,
                end: start + len,
            });
            start += len;
        }
        out
    }

    /// The patterns of one shard, in global enumeration order.
    #[must_use]
    pub fn shard_patterns(&self, shard: Shard) -> ShardPatterns {
        let mut inner = enumerate::patterns(&self.scenario);
        inner.seek(shard.start);
        ShardPatterns {
            inner,
            remaining: shard.len(),
        }
    }

    /// One representative per `Sym(n)` orbit of the pattern axis, with its
    /// multiplicity (orbit size), in enumeration order of the
    /// representatives — the pattern stream the symmetry-quotiented
    /// builder simulates. Every representative is its own canonical form
    /// (`symmetry::is_canonical`), and the multiplicities sum back to
    /// [`ScenarioSpace::num_patterns`] because the enumeration's canonical
    /// behavior conventions are themselves permutation-invariant.
    pub fn orbit_representatives(&self) -> impl Iterator<Item = (FailurePattern, u64)> + '_ {
        enumerate::patterns(&self.scenario).filter_map(|pattern| {
            let canon = symmetry::canonicalize(&pattern);
            (canon.canonical == pattern).then_some((pattern, canon.orbit_size))
        })
    }

    /// The number of pattern orbits under `Sym(n)` (the quotiented
    /// engine's pattern-axis size). Enumerates the space once; intended
    /// for reporting, not hot paths.
    #[must_use]
    pub fn count_orbits(&self) -> u128 {
        self.orbit_representatives().count() as u128
    }
}

/// A contiguous slice `[start, end)` of a scenario's pattern enumeration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Shard {
    index: usize,
    start: u128,
    end: u128,
}

impl Shard {
    /// This shard's position among its siblings (0-based).
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The global index of the shard's first pattern.
    #[must_use]
    pub fn start(&self) -> u128 {
        self.start
    }

    /// One past the global index of the shard's last pattern.
    #[must_use]
    pub fn end(&self) -> u128 {
        self.end
    }

    /// The number of patterns in the shard.
    #[must_use]
    pub fn len(&self) -> u128 {
        self.end - self.start
    }

    /// Whether the shard holds no patterns (never true for shards built by
    /// [`ScenarioSpace::shards`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Iterator over one shard's failure patterns; see
/// [`ScenarioSpace::shard_patterns`].
#[derive(Clone, Debug)]
pub struct ShardPatterns {
    inner: Patterns,
    remaining: u128,
}

impl Iterator for ShardPatterns {
    type Item = crate::FailurePattern;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).ok();
        (n.unwrap_or(usize::MAX), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureMode, FailurePattern};

    fn space(n: usize, t: usize, mode: FailureMode, horizon: u16) -> ScenarioSpace {
        ScenarioSpace::new(Scenario::new(n, t, mode, horizon).unwrap())
    }

    fn sequential(space: &ScenarioSpace) -> Vec<FailurePattern> {
        enumerate::patterns(&space.scenario()).collect()
    }

    #[test]
    fn shards_partition_the_pattern_axis() {
        let space = space(3, 2, FailureMode::Crash, 2);
        for k in [1, 2, 3, 5, 8, 1000] {
            let shards = space.shards(k);
            assert!(!shards.is_empty());
            assert!(shards.len() <= k.max(1));
            assert_eq!(shards[0].start(), 0);
            assert_eq!(shards.last().unwrap().end(), space.num_patterns());
            for pair in shards.windows(2) {
                assert_eq!(pair[0].end(), pair[1].start());
                // Balanced: sizes differ by at most one.
                assert!(pair[0].len().abs_diff(pair[1].len()) <= 1);
            }
            for (i, shard) in shards.iter().enumerate() {
                assert_eq!(shard.index(), i);
                assert!(!shard.is_empty());
            }
        }
    }

    #[test]
    fn shard_patterns_concatenate_to_sequential_order() {
        for mode in [FailureMode::Crash, FailureMode::Omission] {
            let space = space(3, 1, mode, 2);
            let expected = sequential(&space);
            for k in [1, 2, 3, 4, 7] {
                let mut got = Vec::new();
                for shard in space.shards(k) {
                    let chunk: Vec<_> = space.shard_patterns(shard).collect();
                    assert_eq!(chunk.len() as u128, shard.len());
                    got.extend(chunk);
                }
                assert_eq!(got, expected, "mode {mode:?}, {k} shards");
            }
        }
    }

    #[test]
    fn seek_matches_skip() {
        let space = space(3, 2, FailureMode::Crash, 2);
        let expected = sequential(&space);
        for index in [0u128, 1, 7, 24, 25, 100, expected.len() as u128 - 1] {
            let mut iter = enumerate::patterns(&space.scenario());
            iter.seek(index);
            assert_eq!(iter.next().as_ref(), expected.get(index as usize));
        }
        // Seeking to the end (or past it) exhausts the iterator.
        let mut iter = enumerate::patterns(&space.scenario());
        iter.seek(expected.len() as u128);
        assert_eq!(iter.next(), None);
        let mut iter = enumerate::patterns(&space.scenario());
        iter.seek(u128::from(u64::MAX));
        assert_eq!(iter.next(), None);
    }

    #[test]
    fn more_workers_than_patterns_collapses_gracefully() {
        let space = space(3, 0, FailureMode::Crash, 1);
        assert_eq!(space.num_patterns(), 1);
        let shards = space.shards(16);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), 1);
    }

    #[test]
    fn totals_are_consistent() {
        let space = space(3, 1, FailureMode::Crash, 2);
        assert_eq!(space.num_configs(), 8);
        assert_eq!(space.num_patterns(), 25);
        assert_eq!(space.total_runs(), 200);
        assert_eq!(space.configs().count() as u128, space.num_configs());
    }
}
