//! Decision sets and decision pairs (Section 4).

use eba_kripke::StateSets;
use std::fmt;

/// A decision pair `(Z, O)`: the local states at which each processor
/// decides (or has decided) 0, and those at which it decides 1
/// (Section 4 of the paper).
///
/// Together with the generated full-information system, a decision pair
/// completely determines the full-information protocol `FIP(Z, O)` —
/// full-information protocols differ only in their output functions
/// (Section 2.4).
///
/// # Example
///
/// ```
/// use eba_core::DecisionPair;
///
/// let pair = DecisionPair::empty(4); // the never-deciding protocol F^Λ
/// assert!(pair.zero().is_empty() && pair.one().is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecisionPair {
    zero: StateSets,
    one: StateSets,
}

impl DecisionPair {
    /// Creates a pair from explicit decision sets.
    ///
    /// # Panics
    ///
    /// Panics if the two families disagree on the number of processors.
    #[must_use]
    pub fn new(zero: StateSets, one: StateSets) -> Self {
        assert_eq!(
            zero.n(),
            one.n(),
            "decision sets must cover the same processors"
        );
        DecisionPair { zero, one }
    }

    /// The decision pair of the never-deciding protocol `F^Λ`
    /// (Section 6.1): `Z_i = O_i = ∅`.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        DecisionPair {
            zero: StateSets::empty(n),
            one: StateSets::empty(n),
        }
    }

    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.zero.n()
    }

    /// The decide-0 sets `Z`.
    #[must_use]
    pub fn zero(&self) -> &StateSets {
        &self.zero
    }

    /// The decide-1 sets `O`.
    #[must_use]
    pub fn one(&self) -> &StateSets {
        &self.one
    }

    /// Consumes the pair, returning `(Z, O)`.
    #[must_use]
    pub fn into_parts(self) -> (StateSets, StateSets) {
        (self.zero, self.one)
    }

    /// Whether both components are empty (the `F^Λ` pair).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.zero.is_empty() && self.one.is_empty()
    }

    /// Total number of views across both components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.zero.len() + self.one.len()
    }
}

impl fmt::Display for DecisionPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DecisionPair(|Z|={}, |O|={}, n={})",
            self.zero.len(),
            self.one.len(),
            self.n()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{ProcessorId, Value};
    use eba_sim::ViewTable;

    #[test]
    fn empty_pair() {
        let pair = DecisionPair::empty(3);
        assert!(pair.is_empty());
        assert_eq!(pair.len(), 0);
        assert_eq!(pair.n(), 3);
    }

    #[test]
    fn new_and_accessors() {
        let mut table = ViewTable::new();
        let v = table.leaf(ProcessorId::new(0), Value::Zero);
        let mut z = StateSets::empty(2);
        z.insert(ProcessorId::new(0), v);
        let pair = DecisionPair::new(z.clone(), StateSets::empty(2));
        assert_eq!(pair.zero(), &z);
        assert!(!pair.is_empty());
        assert_eq!(pair.len(), 1);
        let (z2, o2) = pair.into_parts();
        assert_eq!(z2, z);
        assert!(o2.is_empty());
    }

    #[test]
    #[should_panic(expected = "same processors")]
    fn mismatched_n_rejected() {
        let _ = DecisionPair::new(StateSets::empty(2), StateSets::empty(3));
    }

    #[test]
    fn display_reports_sizes() {
        let pair = DecisionPair::empty(2);
        assert_eq!(pair.to_string(), "DecisionPair(|Z|=0, |O|=0, n=2)");
    }
}
