//! The limited-information exchange versus the full-information wall.
//!
//! Two workloads, both on the omission family where full-information
//! view growth is steepest:
//!
//! * `exchange_build` — exhaustive system generation under each
//!   exchange, inside the shared contact window (T=4, identical state
//!   partitions) and past it (T=5, where the digest's forgetting starts
//!   collapsing states);
//! * `exchange_gfp` — the continual-common-knowledge fixpoint over a
//!   digest system versus the full-information system of the same
//!   scenario, confirming the kripke layer is exchange-agnostic in cost
//!   when the partitions coincide.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_kripke::{Evaluator, Formula, NonRigidSet};
use eba_model::{ExchangeKind, FailureMode, Scenario, Value};
use eba_sim::{GeneratedSystem, SystemBuilder};
use std::hint::black_box;

fn digest_of(scenario: &Scenario) -> Scenario {
    scenario
        .with_exchange(ExchangeKind::Digest { bits: 0 })
        .expect("digest:0 is always a valid exchange")
}

fn exchange_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_build");
    group.sample_size(10);
    for horizon in [4u16, 5] {
        let full = Scenario::new(3, 1, FailureMode::Omission, horizon).expect("valid scenario");
        for scenario in [full, digest_of(&full)] {
            group.bench_with_input(
                BenchmarkId::new(scenario.exchange().to_string(), format!("T={horizon}")),
                &scenario,
                |b, scenario| {
                    b.iter(|| {
                        black_box(
                            SystemBuilder::new(scenario)
                                .build()
                                .expect("bench scenarios fit the run capacity"),
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

fn exchange_gfp(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_gfp");
    let base = Scenario::new(3, 1, FailureMode::Omission, 3).expect("valid scenario");
    let phi = Formula::exists(Value::Zero).continual_common(NonRigidSet::Nonfaulty);
    for scenario in [base, digest_of(&base)] {
        let system = GeneratedSystem::exhaustive(&scenario);
        group.bench_with_input(
            BenchmarkId::new(scenario.exchange().to_string(), scenario),
            &system,
            |b, system| {
                b.iter(|| {
                    let mut eval = Evaluator::new(system);
                    black_box(eval.eval(&phi).count_ones())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, exchange_build, exchange_gfp);
criterion_main!(benches);
