//! `P0opt`: the optimal crash-mode EBA protocol of Section 2.2.

use eba_model::{ProcSet, ProcessorId, Round, Value};
use eba_sim::Protocol;

/// The optimal crash-mode EBA protocol `P0opt` (Section 2.2).
///
/// Every processor maintains its information about the initial values of
/// all processors and sends this list to everyone in every round. The
/// decision rules:
///
/// * **decide 0** the first time the processor knows some initial value
///   was 0 (the same rule as `P0` — no correct protocol can decide 0
///   faster);
/// * **decide 1** the first time either
///   (a) it knows *all* initial values are 1, or
///   (b) it hears from the same set of processors in two consecutive
///   rounds and still does not know of any 0.
///
/// Theorem 6.2 proves nonfaulty processors decide at *corresponding
/// points* of `P0opt` and the knowledge-level optimum `F^{Λ,2}` — i.e.
/// `P0opt` is an optimal EBA protocol for the crash mode, implementable
/// with linear-size messages. The reproduction checks the correspondence
/// exhaustively (experiment EXP3).
///
/// By default processors keep sending in every round — the proof of
/// Theorem 6.2 relies on this ("in `P0opt` every processor sends a message
/// to all other processors in every round"). The Section 2.2 prose also
/// notes a processor may halt one round after deciding;
/// [`P0Opt::with_halting`] enables that variant (it stays a correct EBA
/// protocol, but heard-from sets — and hence rule (b) firing times — can
/// shift, so it no longer corresponds point-for-point to `F^{Λ,2}`).
///
/// # Example
///
/// ```
/// use eba_model::{FailurePattern, InitialConfig, ProcessorId, Time, Value};
/// use eba_protocols::P0Opt;
/// use eba_sim::execute;
///
/// let protocol = P0Opt::new(1);
/// let config = InitialConfig::uniform(3, Value::One);
/// let trace = execute(&protocol, &config, &FailurePattern::failure_free(3), Time::new(3)).unwrap();
/// // Rule (a): after one failure-free round everyone knows all values
/// // are 1 and decides — two rounds faster than P0's t+1 timeout.
/// assert_eq!(trace.decision_time(ProcessorId::new(0)), Some(Time::new(1)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct P0Opt {
    t: u16,
    halting: bool,
}

impl P0Opt {
    /// Creates the protocol for a system tolerating `t` crash failures
    /// (`t` is used only for reporting; the rules are failure-adaptive).
    /// Processors send in every round (the variant analyzed by
    /// Theorem 6.2).
    #[must_use]
    pub fn new(t: usize) -> Self {
        P0Opt {
            t: t as u16,
            halting: false,
        }
    }

    /// The Section 2.2 halting variant: processors communicate for one
    /// more round after deciding, then send nothing.
    #[must_use]
    pub fn with_halting(t: usize) -> Self {
        P0Opt {
            t: t as u16,
            halting: true,
        }
    }

    /// The failure bound the protocol was instantiated with.
    #[must_use]
    pub fn t(&self) -> u16 {
        self.t
    }

    /// Whether this instance halts one round after deciding.
    #[must_use]
    pub fn halting(&self) -> bool {
        self.halting
    }
}

/// A `P0opt` message: the sender's current knowledge of initial values.
///
/// `values[j] = Some(v)` when the sender knows processor `j` started with
/// `v`. Linear in `n`, as the paper notes ("messages of linear size").
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct P0OptMessage {
    /// Per-processor knowledge of initial values.
    pub values: Vec<Option<Value>>,
}

/// The local state of [`P0Opt`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct P0OptState {
    me: ProcessorId,
    /// Current knowledge of initial values, indexed by processor.
    known: Vec<Option<Value>>,
    /// Who was heard from in the previous round (`None` before round 1).
    heard_prev: Option<ProcSet>,
    /// Rounds completed.
    now: u16,
    /// Latched decision and the time it was made.
    decided: Option<(Value, u16)>,
}

impl P0OptState {
    /// Whether this state knows some initial value was 0.
    #[must_use]
    pub fn knows_zero(&self) -> bool {
        self.known.contains(&Some(Value::Zero))
    }

    /// Whether this state knows every initial value (and all are 1).
    #[must_use]
    pub fn knows_all_one(&self) -> bool {
        self.known.iter().all(|v| *v == Some(Value::One))
    }
}

impl Protocol for P0Opt {
    type State = P0OptState;
    type Message = P0OptMessage;

    fn name(&self) -> &str {
        "P0opt"
    }

    fn initial_state(&self, p: ProcessorId, n: usize, value: Value) -> P0OptState {
        let mut known = vec![None; n];
        known[p.index()] = Some(value);
        // A 0-holder already knows ∃0 and decides at time 0 (the P0 rule).
        let decided = (value == Value::Zero).then_some((Value::Zero, 0));
        P0OptState {
            me: p,
            known,
            heard_prev: None,
            now: 0,
            decided,
        }
    }

    fn message(
        &self,
        state: &P0OptState,
        _from: ProcessorId,
        _to: ProcessorId,
        round: Round,
    ) -> Option<P0OptMessage> {
        match state.decided {
            Some((_, at)) if self.halting && round.number() > at + 1 => None,
            _ => Some(P0OptMessage {
                values: state.known.clone(),
            }),
        }
    }

    fn transition(
        &self,
        state: &P0OptState,
        _p: ProcessorId,
        _round: Round,
        received: &[Option<P0OptMessage>],
    ) -> P0OptState {
        let mut next = state.clone();
        next.now += 1;
        let mut heard = ProcSet::empty();
        for (j, msg) in received.iter().enumerate() {
            let Some(msg) = msg else { continue };
            heard.insert(ProcessorId::new(j));
            for (k, v) in msg.values.iter().enumerate() {
                if let Some(v) = v {
                    debug_assert!(next.known[k].is_none() || next.known[k] == Some(*v));
                    next.known[k] = Some(*v);
                }
            }
        }

        if next.decided.is_none() {
            if next.knows_zero() {
                next.decided = Some((Value::Zero, next.now));
            } else if next.knows_all_one() || state.heard_prev == Some(heard) {
                // Rule (a): all initial values are known to be 1.
                // Rule (b): heard from the same set of processors in two
                // consecutive rounds without learning of a 0.
                next.decided = Some((Value::One, next.now));
            }
        }

        next.heard_prev = Some(heard);
        next
    }

    fn output(&self, state: &P0OptState, _p: ProcessorId) -> Option<Value> {
        state.decided.map(|(v, _)| v)
    }

    fn message_units(&self, message: &P0OptMessage) -> u64 {
        // One word per processor slot: the "linear size" the paper notes.
        message.values.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{FailurePattern, FaultyBehavior, InitialConfig, Time};
    use eba_sim::execute_unchecked as execute;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn zero_holders_decide_immediately() {
        let protocol = P0Opt::new(2);
        let trace = execute(
            &protocol,
            &InitialConfig::from_bits(4, 0b1110),
            &FailurePattern::failure_free(4),
            Time::new(4),
        );
        assert_eq!(trace.decision_time(p(0)), Some(Time::ZERO));
        assert_eq!(trace.decided_value(p(0)), Some(Value::Zero));
        // Everyone else learns the 0 in round 1.
        for i in 1..4 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::new(1)));
            assert_eq!(trace.decided_value(p(i)), Some(Value::Zero));
        }
    }

    #[test]
    fn all_ones_failure_free_decides_at_time_one() {
        let protocol = P0Opt::new(2);
        let trace = execute(
            &protocol,
            &InitialConfig::uniform(4, Value::One),
            &FailurePattern::failure_free(4),
            Time::new(4),
        );
        for i in 0..4 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::new(1)));
            assert_eq!(trace.decided_value(p(i)), Some(Value::One));
        }
    }

    #[test]
    fn quiet_round_rule_fires_after_silent_crash() {
        // p0 holds 1 like everyone, but crashes silently in round 1: the
        // others hear from {p1, p2} in rounds 1 and 2 — by rule (b) they
        // decide 1 at time 2 without ever knowing p0's value.
        let protocol = P0Opt::new(2);
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
        let trace = execute(
            &protocol,
            &InitialConfig::uniform(3, Value::One),
            &pattern,
            Time::new(4),
        );
        for i in 1..3 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::new(2)));
            assert_eq!(trace.decided_value(p(i)), Some(Value::One));
        }
    }

    #[test]
    fn hidden_zero_crash_decides_one_consistently() {
        let protocol = P0Opt::new(1);
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
        let trace = execute(
            &protocol,
            &InitialConfig::from_bits(3, 0b110),
            &pattern,
            Time::new(3),
        );
        assert_eq!(trace.decided_value(p(1)), Some(Value::One));
        assert_eq!(trace.decided_value(p(2)), Some(Value::One));
        assert!(trace.satisfies_weak_agreement());
        assert!(trace.satisfies_weak_validity());
    }

    #[test]
    fn staggered_crash_delays_but_preserves_agreement() {
        // p0 (value 0) delivers round-1 only to p1; p1 relays the 0 in
        // round 2; p2 must not decide 1 at time 2 via the quiet-round
        // rule before it sees the 0 in the same round.
        let protocol = P0Opt::new(2);
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::singleton(p(1)),
            },
        );
        let trace = execute(
            &protocol,
            &InitialConfig::from_bits(3, 0b110),
            &pattern,
            Time::new(4),
        );
        assert_eq!(trace.decided_value(p(1)), Some(Value::Zero));
        assert_eq!(trace.decided_value(p(2)), Some(Value::Zero));
        assert!(trace.satisfies_weak_agreement());
    }

    #[test]
    fn halting_variant_is_still_a_safe_eba_protocol() {
        use eba_model::{enumerate, FailureMode, Scenario};
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 4).unwrap();
        let protocol = P0Opt::with_halting(1);
        assert!(protocol.halting());
        for pattern in enumerate::patterns(&scenario) {
            for config in InitialConfig::enumerate_all(3) {
                let trace = execute(&protocol, &config, &pattern, scenario.horizon());
                assert!(trace.satisfies_decision(), "{config} {pattern}");
                assert!(trace.satisfies_weak_agreement(), "{config} {pattern}");
                assert!(trace.satisfies_weak_validity(), "{config} {pattern}");
            }
        }
    }

    #[test]
    fn decisions_by_t_plus_one() {
        // Exhaustive over n=3, t=1 crash scenarios: every nonfaulty
        // processor decides by time t+1 = 2.
        use eba_model::{enumerate, FailureMode, Scenario};
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 4).unwrap();
        let protocol = P0Opt::new(1);
        for pattern in enumerate::patterns(&scenario) {
            for config in InitialConfig::enumerate_all(3) {
                let trace = execute(&protocol, &config, &pattern, scenario.horizon());
                for q in trace.nonfaulty() {
                    let t = trace
                        .decision_time(q)
                        .unwrap_or_else(|| panic!("{q} undecided: {config} {pattern}"));
                    assert!(t <= Time::new(2), "{q} decided at {t}: {config} {pattern}");
                }
                assert!(trace.satisfies_weak_agreement(), "{config} {pattern}");
                assert!(trace.satisfies_weak_validity(), "{config} {pattern}");
            }
        }
    }
}
