//! Proposition 6.3: for `t > 1` and `n ≥ t + 2`, the omission failure
//! mode has runs of `F^{Λ,2}` in which the nonfaulty processors never
//! decide — `F^{Λ,2}` is an optimal nontrivial agreement protocol in both
//! modes, but an EBA protocol only in the crash mode.
//!
//! Witness (the paper's): all processors start with 1; one processor is
//! faulty and never sends anything. Every nonfaulty processor forever
//! considers it possible that the silent processor held a 0 and will
//! reveal it, so `C□_{N∧Z^{Λ,1}} ∃1` never holds and nobody can decide 1.
//!
//! Checked on the exhaustively generated system at `n = 4`, `t = 2`
//! (~400k runs).

use eba::prelude::*;
use eba_core::protocols::f_lambda_2;

#[test]
fn omission_witness_run_never_decides() {
    let scenario = Scenario::new(4, 2, FailureMode::Omission, 2).unwrap();
    let system = GeneratedSystem::exhaustive(&scenario);
    let mut ctor = Constructor::new(&system);
    let pair = f_lambda_2(&mut ctor);
    let d = FipDecisions::compute(&system, &pair, "F^{Λ,2}");

    // The paper's witness: all ones, p1 silent-faulty.
    let config = InitialConfig::uniform(4, Value::One);
    let pattern = eba_model::sample::silent_processor(&scenario, ProcessorId::new(0));
    let run = system.find_run(&config, &pattern).unwrap();
    for p in system.nonfaulty(run) {
        assert_eq!(
            d.decision(run, p),
            None,
            "{p} decided in the Proposition 6.3 witness run"
        );
    }

    // Contrast with the crash mode, where the same adversary cannot stop
    // decisions (Theorem 6.2): F^{Λ,2} decides everywhere there.
    let crash = Scenario::new(4, 2, FailureMode::Crash, 4).unwrap();
    let crash_system = GeneratedSystem::exhaustive(&crash);
    let mut crash_ctor = Constructor::new(&crash_system);
    let crash_pair = f_lambda_2(&mut crash_ctor);
    let crash_d = FipDecisions::compute(&crash_system, &crash_pair, "F^{Λ,2}");
    let report = verify_properties(&crash_system, &crash_d);
    assert!(
        report.is_eba(),
        "crash-mode F^{{Λ,2}} must be EBA: {report}"
    );

    // And F^{Λ,2} is still a nontrivial agreement protocol in the
    // omission mode — it just fails the decision property.
    let report = verify_properties(&system, &d);
    assert!(report.is_nontrivial_agreement(), "{report}");
    assert!(!report.is_eba());
    assert!(!report.decision_violations.is_empty());
}
