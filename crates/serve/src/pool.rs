//! The warm-session pool: the daemon's working set of engine sessions.
//!
//! Every unbudgeted query resolves its scenario to a [`PoolKey`] and
//! checks out an immutable `Arc<EngineSession>`; queries never mutate a
//! pooled session (evaluation and optimization only need `&self`), so
//! one session serves any number of concurrent queries, all sharing its
//! epoch-scoped [`eba_kripke::KnowledgeCache`].
//!
//! Robustness properties:
//!
//! * **single-flight builds** — the first request for a missing key
//!   builds it while later requests wait on a condvar, so a thundering
//!   herd of identical queries costs one build, not N;
//! * **LRU eviction under a memory budget** — every entry carries the
//!   approximate resident bytes of its system + cache (the PR's new
//!   `approx_resident_bytes`/`resident_bytes` accounting); inserting
//!   past the budget evicts least-recently-used entries. Eviction only
//!   removes the pool's reference: queries holding the `Arc` finish on
//!   the evicted session untouched — mid-query eviction is safe by
//!   construction (the chaos suite exercises it);
//! * **retry with exponential backoff** — transient
//!   [`EngineFault::WorkerPanicked`] build faults are retried
//!   (1ms·2^k backoff) up to a bounded budget, then surface as a typed
//!   `engine-fault` frame. Injected chaos plans have bounded fire
//!   counts, so retries make progress against them;
//! * **poison recovery** — a panicking query thread cannot wedge the
//!   pool: all lock acquisitions recover from poisoning, and an
//!   in-flight build mark is removed by a drop guard even if the build
//!   panics.

use crate::protocol::{ScenarioSpec, ServeError};
use eba_core::{EngineSession, SessionScope};
use eba_kripke::CacheStats;
use eba_model::RunBudget;
use eba_sim::chaos::{EngineFault, FaultInjector};
use eba_sim::{BuildOutcome, GeneratedSystem, SystemBuilder};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How transient build faults are retried.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 0 is treated as 1.
    pub attempts: u32,
    /// Backoff before retry `k` (0-based) is `base << k`.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(1),
        }
    }
}

/// Pool identity of a session: the full scenario (n, t, mode, exchange,
/// horizon) plus the sampling selector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PoolKey {
    /// The scenario, including exchange and horizon.
    pub spec: ScenarioSpec,
}

/// Aggregate pool counters, snapshotted under one lock acquisition.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct PoolStats {
    /// Live pooled sessions.
    pub sessions: usize,
    /// Sum of the entries' approximate resident bytes.
    pub resident_bytes: u64,
    /// Checkouts served from the pool.
    pub hits: u64,
    /// Checkouts that had to build.
    pub misses: u64,
    /// Entries evicted by the memory budget or an explicit `evict`.
    pub evictions: u64,
    /// Build attempts that failed with a transient fault and were
    /// retried.
    pub retries: u64,
}

struct Entry {
    session: Arc<EngineSession>,
    bytes: u64,
    stamp: u64,
}

/// One pooled session's identity and symmetry accounting, as reported
/// by the `stats` frame.
#[derive(Clone, Debug)]
pub struct SessionInfo {
    /// The session's pool key.
    pub key: PoolKey,
    /// Runs in the (possibly quotiented) system.
    pub runs: usize,
    /// Orbit accounting for quotiented sessions, `None` for unreduced.
    pub symmetry: Option<SymmetrySnapshot>,
    /// The session cache's counters at snapshot time — includes the
    /// set-representation backend and, for shared sessions, the
    /// node-table size, dedup, and memo-hit figures.
    pub cache: CacheStats,
}

/// Orbit accounting of one quotiented session.
#[derive(Clone, Copy, Debug)]
pub struct SymmetrySnapshot {
    /// Failure-pattern orbits (= representative patterns simulated).
    pub orbits: usize,
    /// Raw patterns those orbits stand for.
    pub raw_patterns: u128,
    /// `raw_patterns / orbits`, the pattern-axis reduction.
    pub reduction: f64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<PoolKey, Entry>,
    building: HashSet<PoolKey>,
    stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    retries: u64,
}

/// The warm-session pool; see the module docs.
pub struct SessionPool {
    inner: Mutex<Inner>,
    cv: Condvar,
    mem_budget: u64,
    retry: RetryPolicy,
    chaos: Option<Arc<dyn FaultInjector>>,
}

impl std::fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPool")
            .field("mem_budget", &self.mem_budget)
            .finish_non_exhaustive()
    }
}

/// Removes the in-flight build mark even if the build panics, so
/// waiters blocked on the condvar are always released.
struct BuildGuard<'a> {
    pool: &'a SessionPool,
    key: PoolKey,
    done: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.pool.lock().building.remove(&self.key);
            self.pool.cv.notify_all();
        }
    }
}

/// Approximate resident footprint of a session: generated system
/// (runs, interned views, columnar point store) plus live knowledge
/// cache artifacts.
#[must_use]
pub fn session_resident_bytes(session: &EngineSession) -> u64 {
    session.system().approx_resident_bytes() as u64 + session.cache().resident_bytes() as u64
}

impl SessionPool {
    /// Creates a pool bounded by `mem_budget` approximate resident
    /// bytes, with `retry` governing transient build faults and `chaos`
    /// optionally injected into every exhaustive build (the self-chaos
    /// hook).
    #[must_use]
    pub fn new(mem_budget: u64, retry: RetryPolicy, chaos: Option<Arc<dyn FaultInjector>>) -> Self {
        SessionPool {
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            mem_budget,
            retry,
            chaos,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A query thread that panics while holding the lock leaves
        // consistent state behind (all mutations are single-step), so
        // recovering from poisoning is safe and keeps the daemon alive.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Checks out the session for `key`, building (single-flight) on a
    /// miss. Returns the session and whether it was a pool hit.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidScenario`] when the scenario is rejected,
    /// [`ServeError::EngineFault`] when a build fault survives the
    /// retry budget.
    pub fn checkout(&self, key: PoolKey) -> Result<(Arc<EngineSession>, bool), ServeError> {
        {
            let mut inner = self.lock();
            loop {
                if inner.map.contains_key(&key) {
                    inner.stamp += 1;
                    inner.hits += 1;
                    let stamp = inner.stamp;
                    let entry = inner.map.get_mut(&key).expect("entry just found");
                    entry.stamp = stamp;
                    // Refresh the footprint: the shared cache grows as
                    // queries warm it, and eviction decisions should see
                    // the current figure, not the insert-time one.
                    entry.bytes = session_resident_bytes(&entry.session);
                    return Ok((Arc::clone(&entry.session), true));
                }
                if inner.building.contains(&key) {
                    inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
                    continue;
                }
                inner.building.insert(key);
                inner.misses += 1;
                break;
            }
        }
        let mut guard = BuildGuard {
            pool: self,
            key,
            done: false,
        };
        let session = self.build_session(&key)?;
        let session = Arc::new(session);
        let bytes = session_resident_bytes(&session);
        {
            let mut inner = self.lock();
            inner.building.remove(&key);
            inner.stamp += 1;
            let stamp = inner.stamp;
            inner.map.insert(
                key,
                Entry {
                    session: Arc::clone(&session),
                    bytes,
                    stamp,
                },
            );
            Self::evict_to_budget(&mut inner, self.mem_budget, Some(key));
        }
        guard.done = true;
        self.cv.notify_all();
        Ok((session, false))
    }

    /// Evicts least-recently-used entries until the total footprint
    /// fits the budget; `keep` (the entry just inserted) is never
    /// evicted, so a single oversized session still serves its query
    /// and is reclaimed by the next insert.
    fn evict_to_budget(inner: &mut Inner, budget: u64, keep: Option<PoolKey>) {
        loop {
            let total: u64 = inner.map.values().map(|e| e.bytes).sum();
            if total <= budget {
                return;
            }
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| Some(**k) != keep)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                    inner.evictions += 1;
                }
                None => return,
            }
        }
    }

    /// Evicts one scenario's session (`Some`) or every session
    /// (`None`); in-flight queries holding the `Arc` are unaffected.
    /// Returns how many entries were dropped.
    pub fn evict(&self, key: Option<PoolKey>) -> usize {
        let mut inner = self.lock();
        let dropped = match key {
            Some(k) => usize::from(inner.map.remove(&k).is_some()),
            None => {
                let n = inner.map.len();
                inner.map.clear();
                n
            }
        };
        inner.evictions += dropped as u64;
        dropped
    }

    /// Snapshots every pooled session's identity and symmetry
    /// accounting, in deterministic (scenario-rendered) order.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionInfo> {
        let inner = self.lock();
        let mut infos: Vec<SessionInfo> = inner
            .map
            .iter()
            .map(|(key, entry)| {
                let system = entry.session.system();
                SessionInfo {
                    key: *key,
                    runs: system.num_runs(),
                    symmetry: system.symmetry().map(|info| SymmetrySnapshot {
                        orbits: info.num_orbits(),
                        raw_patterns: info.raw_patterns_covered(),
                        reduction: info.reduction_ratio(),
                    }),
                    cache: entry.session.cache().stats(),
                }
            })
            .collect();
        infos.sort_by_key(|info| {
            (
                format!(
                    "{}",
                    info.key.spec.scenario().expect("pooled specs are valid")
                ),
                info.key.spec.sampled,
                info.key.spec.symmetry,
            )
        });
        infos
    }

    /// Current counters and footprint.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let inner = self.lock();
        PoolStats {
            sessions: inner.map.len(),
            resident_bytes: inner.map.values().map(|e| e.bytes).sum(),
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            retries: inner.retries,
        }
    }

    /// Builds a session for `key` cold, applying chaos injection and
    /// the transient-fault retry policy.
    fn build_session(&self, key: &PoolKey) -> Result<EngineSession, ServeError> {
        let scenario = key.spec.scenario()?;
        if let Some((runs, seed)) = key.spec.sampled {
            // The sampled generator is deterministic in (runs, seed) and
            // not chaos-instrumented; no retry loop needed.
            let system = GeneratedSystem::sampled(&scenario, runs, seed);
            return Ok(EngineSession::from_system_with_repr(
                system,
                SessionScope::PinnedRuns,
                key.spec.set_repr,
            ));
        }
        let attempts = self.retry.attempts.max(1);
        let mut last_fault = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.lock().retries += 1;
                std::thread::sleep(self.retry.base_backoff * (1u32 << (attempt - 1)));
            }
            let mut builder = SystemBuilder::new(&scenario).symmetry(key.spec.symmetry);
            if let Some(chaos) = &self.chaos {
                builder = builder.chaos(Arc::clone(chaos));
            }
            match builder.build_governed() {
                Ok(outcome) => {
                    // With an unlimited budget the outcome is always
                    // Complete; into_system also covers Partial soundly.
                    let BuildOutcome::Complete { system, .. } = outcome else {
                        unreachable!("unbudgeted build cannot be partial");
                    };
                    return Ok(EngineSession::from_system_with_repr(
                        system,
                        SessionScope::FullSpace,
                        key.spec.set_repr,
                    ));
                }
                Err(EngineFault::Model(e)) => {
                    // Model errors are deterministic — unless chaos is
                    // injecting synthetic capacity faults, in which case
                    // they are transient like panics.
                    if self.chaos.is_none() {
                        return Err(ServeError::InvalidScenario(e.to_string()));
                    }
                    last_fault = Some(EngineFault::Model(e));
                }
                Err(fault) => last_fault = Some(fault),
            }
        }
        Err(ServeError::EngineFault(format!(
            "build failed after {attempts} attempts: {}",
            last_fault.map_or_else(|| "unknown fault".to_owned(), |f| f.to_string())
        )))
    }

    /// Builds a **governed** system for a budgeted query: bypasses the
    /// pool entirely (partial systems must never be pooled) but applies
    /// the same chaos injection and retry policy.
    ///
    /// # Errors
    ///
    /// As [`SessionPool::checkout`], plus whatever the budget does.
    pub fn build_budgeted(
        &self,
        spec: &ScenarioSpec,
        budget: RunBudget,
        interrupt: Option<&'static AtomicBool>,
        shards: Option<usize>,
        threads: Option<usize>,
    ) -> Result<BuildOutcome, ServeError> {
        let scenario = spec.scenario()?;
        let budget = match interrupt {
            Some(flag) => budget.with_interrupt(flag),
            None => budget,
        };
        let attempts = self.retry.attempts.max(1);
        let mut last_fault = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.lock().retries += 1;
                std::thread::sleep(self.retry.base_backoff * (1u32 << (attempt - 1)));
            }
            let mut builder = SystemBuilder::new(&scenario)
                .budget(budget)
                .symmetry(spec.symmetry);
            if let Some(shards) = shards {
                builder = builder.shards(shards);
            }
            if let Some(threads) = threads {
                builder = builder.threads(threads);
            }
            if let Some(chaos) = &self.chaos {
                builder = builder.chaos(Arc::clone(chaos));
            }
            match builder.build_governed() {
                Ok(outcome) => return Ok(outcome),
                Err(EngineFault::Model(e)) if self.chaos.is_none() => {
                    return Err(ServeError::InvalidScenario(e.to_string()));
                }
                Err(fault) => last_fault = Some(fault),
            }
        }
        Err(ServeError::EngineFault(format!(
            "build failed after {attempts} attempts: {}",
            last_fault.map_or_else(|| "unknown fault".to_owned(), |f| f.to_string())
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{ExchangeKind, FailureMode};
    use eba_sim::chaos::{ChaosPlan, FaultKind, FaultSite};

    fn spec(horizon: u16) -> ScenarioSpec {
        ScenarioSpec {
            n: 3,
            t: 1,
            mode: FailureMode::Crash,
            exchange: ExchangeKind::FullInformation,
            horizon,
            sampled: None,
            symmetry: false,
            set_repr: eba_kripke::SetReprKind::Dense,
        }
    }

    fn unbounded_pool() -> SessionPool {
        SessionPool::new(u64::MAX, RetryPolicy::default(), None)
    }

    #[test]
    fn checkout_hits_after_a_miss_and_shares_the_session() {
        let pool = unbounded_pool();
        let key = PoolKey { spec: spec(2) };
        let (a, hit_a) = pool.checkout(key).unwrap();
        let (b, hit_b) = pool.checkout(key).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.sessions), (1, 1, 1));
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn memory_budget_evicts_least_recently_used() {
        // Budget of one byte: every insert evicts everything else.
        let pool = SessionPool::new(1, RetryPolicy::default(), None);
        let k2 = PoolKey { spec: spec(2) };
        let k3 = PoolKey { spec: spec(3) };
        let (s2, _) = pool.checkout(k2).unwrap();
        pool.checkout(k3).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.sessions, 1, "k2 must have been evicted");
        assert!(stats.evictions >= 1);
        // The in-flight Arc still answers queries after eviction.
        assert!(s2.system().num_runs() > 0);
        let mut eval = s2.evaluator();
        let f = eba_kripke::parse::parse_formula("CC(E0) -> C(E0)").unwrap();
        let sat = eval.eval(&f);
        assert_eq!(sat.count_ones(), sat.len());
    }

    #[test]
    fn shared_node_table_growth_counts_against_the_memory_budget() {
        let shared_spec = |horizon| {
            let mut s = spec(horizon);
            s.set_repr = eba_kripke::SetReprKind::Shared;
            s
        };
        // Probe the insert-time footprint of a cold shared session.
        let probe = unbounded_pool();
        let k2 = PoolKey {
            spec: shared_spec(2),
        };
        let (cold, _) = probe.checkout(k2).unwrap();
        let cold_bytes = session_resident_bytes(&cold);
        drop((cold, probe));

        // A pool budgeted at exactly that footprint admits the cold
        // session. Warming its cache grows the node table, and the
        // checkout-time footprint refresh must see that growth so the
        // next insert pushes the warmed entry out.
        let pool = SessionPool::new(cold_bytes, RetryPolicy::default(), None);
        let (warm, _) = pool.checkout(k2).unwrap();
        let mut eval = warm.evaluator();
        let f = eba_kripke::parse::parse_formula("CC(E0) -> C(E0)").unwrap();
        let sat = eval.eval(&f);
        assert_eq!(sat.count_ones(), sat.len());
        let warm_bytes = session_resident_bytes(&warm);
        assert!(
            warm_bytes > cold_bytes,
            "warming must grow the node-table residency: {warm_bytes} vs {cold_bytes}"
        );
        let (_, hit) = pool.checkout(k2).unwrap(); // refreshes entry.bytes
        assert!(hit);
        pool.checkout(PoolKey {
            spec: shared_spec(3),
        })
        .unwrap();
        let stats = pool.stats();
        assert!(
            stats.evictions >= 1,
            "node-table growth crossed the budget but nothing was evicted: {stats:?}"
        );
    }

    #[test]
    fn explicit_evict_and_full_clear() {
        let pool = unbounded_pool();
        let k2 = PoolKey { spec: spec(2) };
        let k3 = PoolKey { spec: spec(3) };
        pool.checkout(k2).unwrap();
        pool.checkout(k3).unwrap();
        assert_eq!(pool.evict(Some(k2)), 1);
        assert_eq!(pool.evict(Some(k2)), 0, "double evict is a no-op");
        assert_eq!(pool.evict(None), 1);
        assert_eq!(pool.stats().sessions, 0);
    }

    #[test]
    fn transient_build_faults_are_retried_until_the_plan_is_spent() {
        // A panic at shard 0 that fires twice: the supervised builder
        // absorbs per-worker panics itself, so to see pool-level retries
        // we inject a *capacity* fault, which the builder surfaces as a
        // typed EngineFault::Model.
        let plan = Arc::new(
            ChaosPlan::new()
                .with_fault(FaultSite::BuilderShard, 0, FaultKind::CapacityExhaustion)
                .with_fault(FaultSite::BuilderShard, 0, FaultKind::CapacityExhaustion),
        );
        let pool = SessionPool::new(u64::MAX, RetryPolicy::default(), Some(plan.clone()));
        let key = PoolKey { spec: spec(2) };
        let (session, hit) = pool.checkout(key).unwrap();
        assert!(!hit);
        assert!(session.system().num_runs() > 0);
        assert!(plan.fired() >= 1, "the chaos plan must actually fire");
        assert!(pool.stats().retries >= 1);
    }

    #[test]
    fn persistent_faults_exhaust_the_retry_budget_and_surface_typed() {
        let plan = Arc::new(ChaosPlan::new().with_recurring_fault(
            FaultSite::BuilderShard,
            0,
            FaultKind::CapacityExhaustion,
            u32::MAX,
        ));
        let retry = RetryPolicy {
            attempts: 2,
            base_backoff: Duration::from_micros(100),
        };
        let pool = SessionPool::new(u64::MAX, retry, Some(plan));
        let err = pool.checkout(PoolKey { spec: spec(2) }).unwrap_err();
        assert_eq!(err.kind(), "engine-fault");
        assert!(err.to_frame().to_line().contains("2 attempts"), "{err}");
        // The build mark must be gone: a later checkout with a clean
        // pool path (no fault left) would rebuild rather than hang —
        // recurring plans keep firing, so just assert the typed error
        // again rather than a hang.
        let err2 = pool.checkout(PoolKey { spec: spec(2) }).unwrap_err();
        assert_eq!(err2.kind(), "engine-fault");
    }

    #[test]
    fn sampled_sessions_are_pinned_and_pooled_separately() {
        let pool = unbounded_pool();
        let mut sampled = spec(2);
        sampled.sampled = Some((5, 42));
        let full = PoolKey { spec: spec(2) };
        let samp = PoolKey { spec: sampled };
        let (a, _) = pool.checkout(full).unwrap();
        let (b, _) = pool.checkout(samp).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        let sampled_runs = b.system().num_runs();
        assert!(
            sampled_runs > 0 && sampled_runs < a.system().num_runs(),
            "sampled {sampled_runs} vs exhaustive {}",
            a.system().num_runs()
        );
        assert_eq!(b.scope(), SessionScope::PinnedRuns);
        assert_eq!(pool.stats().sessions, 2);
    }
}
