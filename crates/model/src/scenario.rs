//! Finite system scenarios.

use crate::{ExchangeKind, FailureMode, FailurePattern, ModelError, Time};
use std::fmt;

/// A fully-specified finite instance of the paper's model: `n` processors,
/// at most `t` of which may be faulty, a [`FailureMode`], and a finite
/// *horizon* (the number of rounds a generated system simulates).
///
/// # Horizon
///
/// The paper's systems contain runs of unbounded length; the reproduction
/// works with a finite horizon `T`. Every protocol studied in the paper
/// decides by time `t + 1` (crash) or `f + 1 ≤ t + 1` (the omission-mode
/// 0-chain protocol), so a horizon of `t + 2`
/// ([`Scenario::recommended_horizon`]) captures every decision and makes
/// the knowledge tests the protocols use stable; see DESIGN.md §2 and the
/// horizon ablation in EXP10.
///
/// # Example
///
/// ```
/// use eba_model::{FailureMode, Scenario};
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let s = Scenario::new(4, 1, FailureMode::Crash, 3)?;
/// assert_eq!(s.n(), 4);
/// assert_eq!(s.t(), 1);
/// assert_eq!(s.horizon().ticks(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Scenario {
    n: usize,
    t: usize,
    mode: FailureMode,
    horizon: Time,
    exchange: ExchangeKind,
}

impl Scenario {
    /// Creates a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScenario`] if `n < 2`, `n > 128`,
    /// `t ≥ n`, or `horizon < 1`.
    pub fn new(n: usize, t: usize, mode: FailureMode, horizon: u16) -> Result<Self, ModelError> {
        if n < 2 {
            return Err(ModelError::invalid_scenario("need at least two processors"));
        }
        if n > crate::ProcessorId::MAX_PROCESSORS {
            return Err(ModelError::invalid_scenario(format!(
                "n = {n} exceeds the supported maximum of {}",
                crate::ProcessorId::MAX_PROCESSORS
            )));
        }
        if t >= n {
            return Err(ModelError::invalid_scenario(format!(
                "t = {t} must be smaller than n = {n}"
            )));
        }
        if horizon == 0 {
            return Err(ModelError::invalid_scenario(
                "horizon must cover at least one round",
            ));
        }
        Ok(Scenario {
            n,
            t,
            mode,
            horizon: Time::new(horizon),
            exchange: ExchangeKind::FullInformation,
        })
    }

    /// Creates a scenario with the recommended horizon `t + 2`.
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::new`].
    pub fn with_recommended_horizon(
        n: usize,
        t: usize,
        mode: FailureMode,
    ) -> Result<Self, ModelError> {
        Scenario::new(n, t, mode, t as u16 + 2)
    }

    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Upper bound on the number of faulty processors.
    #[must_use]
    pub fn t(&self) -> usize {
        self.t
    }

    /// The failure mode.
    #[must_use]
    pub fn mode(&self) -> FailureMode {
        self.mode
    }

    /// The information exchange the scenario's processors run
    /// ([`ExchangeKind::FullInformation`] unless overridden by
    /// [`Scenario::with_exchange`]).
    #[must_use]
    pub fn exchange(&self) -> ExchangeKind {
        self.exchange
    }

    /// The horizon: generated runs cover times `0..=horizon`.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// The recommended horizon for this `(n, t)`: `t + 2` rounds.
    #[must_use]
    pub fn recommended_horizon(&self) -> Time {
        Time::new(self.t as u16 + 2)
    }

    /// Returns a copy of this scenario with a different horizon (the
    /// exchange and every other parameter are preserved).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScenario`] if `horizon < 1`.
    pub fn with_horizon(self, horizon: u16) -> Result<Self, ModelError> {
        Scenario::new(self.n, self.t, self.mode, horizon).map(|s| Scenario {
            exchange: self.exchange,
            ..s
        })
    }

    /// Returns a copy of this scenario running a different information
    /// exchange.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScenario`] for a digest fingerprint
    /// width above 64 bits.
    pub fn with_exchange(self, exchange: ExchangeKind) -> Result<Self, ModelError> {
        if let ExchangeKind::Digest { bits } = exchange {
            // Re-validate: the enum's fields are public, so a width that
            // bypassed `ExchangeKind::digest` is caught here before it
            // can reach a generated system.
            ExchangeKind::digest(bits)?;
        }
        Ok(Scenario { exchange, ..self })
    }

    /// Produces the delta spec of an **append-only horizon extension**:
    /// the same `(n, t, mode)` simulated for more rounds. The returned
    /// [`HorizonDelta`] is what the incremental engine consumes — it
    /// carries both scenarios plus the pattern translation helpers
    /// (truncate a pattern of the extended space to the base space, pad a
    /// base pattern into the extended space) that let
    /// `SystemBuilder::extend` reuse base-horizon view prefixes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScenario`] if `horizon` does not
    /// strictly exceed the current one.
    pub fn extend_horizon(&self, horizon: u16) -> Result<HorizonDelta, ModelError> {
        if !self.exchange.supports_session_extension() {
            return Err(ModelError::invalid_scenario(format!(
                "exchange `{}` does not support session extension \
                 (see ExchangeKind::supports_session_extension); rebuild at the target horizon",
                self.exchange
            )));
        }
        if Time::new(horizon) <= self.horizon {
            return Err(ModelError::invalid_scenario(format!(
                "extended horizon {horizon} must exceed the current horizon {}",
                self.horizon.ticks()
            )));
        }
        Ok(HorizonDelta {
            base: *self,
            extended: self.with_horizon(horizon)?,
        })
    }

    /// Like [`Scenario::extend_horizon`], but validated against a full
    /// target scenario — the form the incremental builder uses.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScenario`] unless `target` has the
    /// same `n`, `t`, mode, and exchange and a strictly larger horizon.
    pub fn extend_into(&self, target: &Scenario) -> Result<HorizonDelta, ModelError> {
        if self.n != target.n
            || self.t != target.t
            || self.mode != target.mode
            || self.exchange != target.exchange
        {
            return Err(ModelError::invalid_scenario(format!(
                "cannot extend {self} into {target}: only the horizon may change"
            )));
        }
        self.extend_horizon(target.horizon.ticks())
    }

    /// Validates a failure pattern against this scenario.
    ///
    /// # Errors
    ///
    /// See [`FailurePattern::validate`]; additionally rejects patterns
    /// whose processor count differs from `n`.
    pub fn validate_pattern(&self, pattern: &FailurePattern) -> Result<(), ModelError> {
        if pattern.n() != self.n {
            return Err(ModelError::invalid_pattern(format!(
                "pattern is over {} processors, scenario has {}",
                pattern.n(),
                self.n
            )));
        }
        pattern.validate(self.mode, self.t, self.horizon)
    }
}

/// The delta spec of an append-only horizon extension: a base scenario
/// and the same scenario with a strictly larger horizon (see
/// [`Scenario::extend_horizon`]).
///
/// Growing the horizon grows a scenario along **two** axes at once: every
/// existing run gains `added_rounds` new time steps, and the pattern
/// space itself grows (new crash rounds, longer omission vectors). The
/// translation helpers below relate the two spaces: a pattern of the
/// extended space whose truncation is found in the base space shares its
/// entire base-horizon view prefix with that base run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HorizonDelta {
    base: Scenario,
    extended: Scenario,
}

impl HorizonDelta {
    /// The scenario being extended.
    #[must_use]
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// The scenario after extension (same `n`, `t`, mode; larger horizon).
    #[must_use]
    pub fn extended(&self) -> &Scenario {
        &self.extended
    }

    /// How many rounds the extension appends.
    #[must_use]
    pub fn added_rounds(&self) -> u16 {
        self.extended.horizon().ticks() - self.base.horizon().ticks()
    }

    /// Truncates a pattern of the extended space to the base space; see
    /// [`FailurePattern::truncated_to`]. `None` means the pattern's
    /// base-horizon prefix matches no canonical base pattern and must be
    /// simulated from scratch.
    #[must_use]
    pub fn truncate_pattern(&self, pattern: &FailurePattern) -> Option<FailurePattern> {
        pattern.truncated_to(self.base.horizon())
    }

    /// Pads a pattern of the base space into the extended space; see
    /// [`FailurePattern::padded_to`].
    #[must_use]
    pub fn pad_pattern(&self, pattern: &FailurePattern) -> FailurePattern {
        pattern.padded_to(self.extended.horizon())
    }
}

impl fmt::Display for HorizonDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} extended to T={}",
            self.base,
            self.extended.horizon().ticks()
        )
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} t={} mode={} T={}",
            self.n,
            self.t,
            self.mode,
            self.horizon.ticks()
        )?;
        // Full information is the paper's default and stays implicit, so
        // every pre-exchange rendering (and test expectation) is stable.
        if !self.exchange.is_full() {
            write!(f, " exchange={}", self.exchange)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultyBehavior, ProcessorId};

    #[test]
    fn valid_scenario() {
        let s = Scenario::new(4, 2, FailureMode::Omission, 4).unwrap();
        assert_eq!(s.n(), 4);
        assert_eq!(s.t(), 2);
        assert_eq!(s.mode(), FailureMode::Omission);
        assert_eq!(s.horizon(), Time::new(4));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Scenario::new(1, 0, FailureMode::Crash, 2).is_err());
        assert!(Scenario::new(3, 3, FailureMode::Crash, 2).is_err());
        assert!(Scenario::new(3, 1, FailureMode::Crash, 0).is_err());
        assert!(Scenario::new(129, 1, FailureMode::Crash, 2).is_err());
    }

    #[test]
    fn recommended_horizon_is_t_plus_two() {
        let s = Scenario::with_recommended_horizon(5, 2, FailureMode::Crash).unwrap();
        assert_eq!(s.horizon(), Time::new(4));
        assert_eq!(s.recommended_horizon(), Time::new(4));
    }

    #[test]
    fn with_horizon_changes_only_horizon() {
        let s = Scenario::new(4, 1, FailureMode::Crash, 3).unwrap();
        let s2 = s.with_horizon(5).unwrap();
        assert_eq!(s2.horizon(), Time::new(5));
        assert_eq!(s2.n(), 4);
    }

    #[test]
    fn validate_pattern_checks_size_and_content() {
        let s = Scenario::new(3, 1, FailureMode::Crash, 2).unwrap();
        assert!(s
            .validate_pattern(&FailurePattern::failure_free(4))
            .is_err());
        assert!(s.validate_pattern(&FailurePattern::failure_free(3)).is_ok());
        let bad = FailurePattern::failure_free(3).with_behavior(
            ProcessorId::new(0),
            FaultyBehavior::Omission { omissions: vec![] },
        );
        assert!(s.validate_pattern(&bad).is_err());
    }

    #[test]
    fn display() {
        let s = Scenario::new(4, 1, FailureMode::Crash, 3).unwrap();
        assert_eq!(s.to_string(), "n=4 t=1 mode=crash T=3");
    }

    #[test]
    fn with_exchange_threads_through_horizon_changes() {
        let s = Scenario::new(4, 1, FailureMode::Crash, 3)
            .unwrap()
            .with_exchange(ExchangeKind::Digest { bits: 0 })
            .unwrap();
        assert_eq!(s.exchange(), ExchangeKind::Digest { bits: 0 });
        assert_eq!(s.to_string(), "n=4 t=1 mode=crash T=3 exchange=digest:0");
        // `with_horizon` routes through `Scenario::new`; the exchange must
        // survive the round trip.
        let s2 = s.with_horizon(5).unwrap();
        assert_eq!(s2.exchange(), ExchangeKind::Digest { bits: 0 });
        // Out-of-range widths are rejected even when the enum is built
        // directly (its fields are public).
        assert!(Scenario::new(4, 1, FailureMode::Crash, 3)
            .unwrap()
            .with_exchange(ExchangeKind::Digest { bits: 65 })
            .is_err());
    }

    #[test]
    fn extension_respects_exchange_policy() {
        let full = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        // digest:0 extends like full information…
        let d0 = full
            .with_exchange(ExchangeKind::Digest { bits: 0 })
            .unwrap();
        let delta = d0.extend_horizon(4).unwrap();
        assert_eq!(
            delta.extended().exchange(),
            ExchangeKind::Digest { bits: 0 }
        );
        // …fingerprinted digests are rebuild-only…
        let d32 = full
            .with_exchange(ExchangeKind::Digest { bits: 32 })
            .unwrap();
        let err = d32.extend_horizon(4).unwrap_err();
        assert!(err.to_string().contains("session extension"), "{err}");
        // …and a base never extends into a target with a different
        // exchange, even when both support extension on their own.
        let full_t4 = full.with_horizon(4).unwrap();
        assert!(d0.extend_into(&full_t4).is_err());
        assert!(full.extend_into(&full_t4).is_ok());
    }

    #[test]
    fn extend_horizon_requires_strict_growth() {
        let s = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        assert!(s.extend_horizon(3).is_err());
        assert!(s.extend_horizon(2).is_err());
        let delta = s.extend_horizon(5).unwrap();
        assert_eq!(delta.base(), &s);
        assert_eq!(delta.extended().horizon(), Time::new(5));
        assert_eq!(delta.extended().n(), 3);
        assert_eq!(delta.added_rounds(), 2);
        assert_eq!(delta.to_string(), "n=3 t=1 mode=crash T=3 extended to T=5");
    }

    #[test]
    fn delta_pattern_helpers_translate_both_ways() {
        let s = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        let delta = s.extend_horizon(3).unwrap();
        let base_pattern = FailurePattern::failure_free(3).with_behavior(
            ProcessorId::new(1),
            FaultyBehavior::Omission {
                omissions: vec![crate::ProcSet::singleton(ProcessorId::new(0)); 2],
            },
        );
        let padded = delta.pad_pattern(&base_pattern);
        delta.extended().validate_pattern(&padded).unwrap();
        assert_eq!(delta.truncate_pattern(&padded), Some(base_pattern));
    }
}
