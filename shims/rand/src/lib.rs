//! Offline deterministic stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched. This shim provides the small API surface the
//! workspace actually uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}`, and `seq::SliceRandom::shuffle` — backed
//! by a xoshiro256** generator seeded through SplitMix64.
//!
//! The streams differ from upstream `rand`'s `StdRng` (which is ChaCha12),
//! but every use in this workspace only relies on *reproducibility given a
//! seed*, never on specific stream values, so the substitution is
//! behavior-preserving for all tests and experiments.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker for types that can be sampled uniformly from a range by this
/// shim (integers only; that is all the workspace needs).
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`. `high > low` is required.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                let offset = uniform_below(rng, span);
                ((low as i128).wrapping_add(offset as i128)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = ((high as i128).wrapping_sub(low as i128) as u128) + 1;
                let offset = uniform_below(rng, span);
                ((low as i128).wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform sample in `[0, span)` (span ≤ 2^64 here); unbiased via
/// rejection sampling on the top of the multiply-shift range.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == 1u128 << 64 {
        return rng.next_u64();
    }
    let span = span as u64;
    // Lemire's method with rejection for exact uniformity.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let raw = rng.next_u64();
        let (hi, lo) = {
            let wide = u128::from(raw) * u128::from(span);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        // Compare 53 uniform mantissa bits against p.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let run = |r: &mut StdRng| (0..32).map(|_| r.gen_range(0..100u32)).collect::<Vec<_>>();
        assert_ne!(run(&mut a), run(&mut c));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u16 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let z: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
