//! Experiment EXP9; see `eba_bench::experiments::exp9`.
fn main() {
    for table in eba_bench::experiments::exp9() {
        table.print();
    }
}
