//! Horizon-substitution validation (DESIGN.md §2): the paper's systems
//! have unbounded runs; the reproduction truncates at a finite horizon
//! `T`. This test checks the substitution is behavior-preserving for the
//! protocols under study: decisions of nonfaulty processors on runs whose
//! failure patterns fit the *smaller* horizon are identical when the
//! system is regenerated with a larger horizon (which both extends runs
//! and enriches the pattern space).

use eba::prelude::*;
use eba_core::protocols::{f_lambda_2, zero_chain_pair};

/// Computes F^{Λ,2} decisions at two horizons and compares them on the
/// shared runs.
fn compare_horizons(
    n: usize,
    t: usize,
    mode: FailureMode,
    small: u16,
    large: u16,
    build: fn(&mut Constructor<'_>) -> DecisionPair,
    name: &str,
) {
    let scenario_small = Scenario::new(n, t, mode, small).unwrap();
    let scenario_large = Scenario::new(n, t, mode, large).unwrap();
    let sys_small = GeneratedSystem::exhaustive(&scenario_small);
    let sys_large = GeneratedSystem::exhaustive(&scenario_large);

    let mut ctor_small = Constructor::new(&sys_small);
    let mut ctor_large = Constructor::new(&sys_large);
    let d_small = FipDecisions::compute(&sys_small, &build(&mut ctor_small), name);
    let d_large = FipDecisions::compute(&sys_large, &build(&mut ctor_large), name);

    let mut compared = 0u64;
    for run_small in sys_small.run_ids() {
        let record = sys_small.run(run_small);
        // Patterns valid at the small horizon are valid at the large one
        // except for the re-encoding of omission vectors, which must be
        // padded with empty rounds.
        let padded = record.pattern.padded_to(Time::new(large));
        let Some(run_large) = sys_large.find_run(&record.config, &padded) else {
            continue;
        };
        for p in record.nonfaulty {
            assert_eq!(
                d_small.decision(run_small, p),
                d_large.decision(run_large, p),
                "{name}: horizon {small} vs {large} diverges at {p} \
                 ({} / {})",
                record.config,
                record.pattern,
            );
            compared += 1;
        }
    }
    assert!(compared > 0, "no shared runs compared");
}

#[test]
fn f_lambda_2_crash_is_horizon_stable() {
    compare_horizons(3, 1, FailureMode::Crash, 3, 4, f_lambda_2, "F^{Λ,2}");
}

#[test]
fn f_lambda_2_crash_is_horizon_stable_above_recommended() {
    compare_horizons(3, 1, FailureMode::Crash, 4, 5, f_lambda_2, "F^{Λ,2}");
}

#[test]
fn zero_chain_omission_is_horizon_stable() {
    compare_horizons(
        3,
        1,
        FailureMode::Omission,
        2,
        3,
        zero_chain_pair,
        "FIP(Z⁰,O⁰)",
    );
}
