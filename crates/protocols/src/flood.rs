//! `FloodMin`: the classic `t + 1`-round simultaneous baseline.

use eba_model::{ProcessorId, Round, Value};
use eba_sim::Protocol;

/// The classic flooding protocol for crash failures: every processor
/// relays the minimum value it has seen for `t + 1` rounds and decides it
/// at time `t + 1`.
///
/// All (alive) processors decide at the same round, so this doubles as
/// the naive *simultaneous* BA protocol — the scale-level stand-in for
/// the SBA baseline in the EBA-vs-SBA comparison (the exact
/// common-knowledge SBA rule lives in `eba-core`). Correct in the crash
/// failure mode only (a sending-omission adversary can split the minimum
/// in the last round).
///
/// # Example
///
/// ```
/// use eba_model::{FailurePattern, InitialConfig, ProcessorId, Time, Value};
/// use eba_protocols::FloodMin;
/// use eba_sim::execute;
///
/// let protocol = FloodMin::new(1);
/// let config = InitialConfig::from_bits(3, 0b101);
/// let trace = execute(&protocol, &config, &FailurePattern::failure_free(3), Time::new(3)).unwrap();
/// // Everyone decides min = 0, simultaneously at t+1 = 2.
/// assert_eq!(trace.decision_time(ProcessorId::new(0)), Some(Time::new(2)));
/// assert!(trace.satisfies_simultaneity());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FloodMin {
    t: u16,
}

impl FloodMin {
    /// Creates the protocol for a system tolerating `t` crash failures.
    #[must_use]
    pub fn new(t: usize) -> Self {
        FloodMin { t: t as u16 }
    }
}

/// The local state of [`FloodMin`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FloodState {
    /// Minimum initial value seen so far.
    pub min: Value,
    /// Rounds completed.
    pub now: u16,
    /// Latched decision.
    pub decided: Option<Value>,
}

impl Protocol for FloodMin {
    type State = FloodState;
    type Message = Value;

    fn name(&self) -> &str {
        "FloodMin"
    }

    fn initial_state(&self, _p: ProcessorId, _n: usize, value: Value) -> FloodState {
        FloodState {
            min: value,
            now: 0,
            decided: None,
        }
    }

    fn message(
        &self,
        state: &FloodState,
        _from: ProcessorId,
        _to: ProcessorId,
        round: Round,
    ) -> Option<Value> {
        (round.number() <= self.t + 1).then_some(state.min)
    }

    fn transition(
        &self,
        state: &FloodState,
        _p: ProcessorId,
        _round: Round,
        received: &[Option<Value>],
    ) -> FloodState {
        let min = received
            .iter()
            .flatten()
            .fold(state.min, |acc, &v| acc.min(v));
        let now = state.now + 1;
        let decided = state.decided.or_else(|| (now > self.t).then_some(min));
        FloodState { min, now, decided }
    }

    fn output(&self, state: &FloodState, _p: ProcessorId) -> Option<Value> {
        state.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{enumerate, FailureMode, FailurePattern, InitialConfig, Scenario, Time};
    use eba_sim::execute_unchecked as execute;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn decides_min_simultaneously() {
        let protocol = FloodMin::new(2);
        let trace = execute(
            &protocol,
            &InitialConfig::from_bits(4, 0b0111),
            &FailurePattern::failure_free(4),
            Time::new(4),
        );
        for i in 0..4 {
            assert_eq!(trace.decision_time(p(i)), Some(Time::new(3)));
            assert_eq!(trace.decided_value(p(i)), Some(Value::Zero));
        }
        assert!(trace.satisfies_simultaneity());
    }

    #[test]
    fn exhaustive_crash_sba_properties() {
        // FloodMin is a correct SBA protocol under crash failures:
        // exhaustively check n=3, t=1.
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        let protocol = FloodMin::new(1);
        for pattern in enumerate::patterns(&scenario) {
            for config in InitialConfig::enumerate_all(3) {
                let trace = execute(&protocol, &config, &pattern, scenario.horizon());
                assert!(trace.satisfies_decision(), "{config} {pattern}");
                assert!(trace.satisfies_weak_agreement(), "{config} {pattern}");
                assert!(trace.satisfies_weak_validity(), "{config} {pattern}");
                assert!(trace.satisfies_simultaneity(), "{config} {pattern}");
            }
        }
    }

    #[test]
    fn omission_mode_can_break_flooding() {
        // The documented counterexample: with sending omissions the
        // faulty 0-holder can reveal its value to one processor in the
        // final round.
        let protocol = FloodMin::new(1);
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            eba_model::FaultyBehavior::Omission {
                omissions: vec![
                    eba_model::ProcSet::full(3) - eba_model::ProcSet::singleton(p(0)),
                    eba_model::ProcSet::singleton(p(2)),
                ],
            },
        );
        let trace = execute(
            &protocol,
            &InitialConfig::from_bits(3, 0b110),
            &pattern,
            Time::new(2),
        );
        assert!(!trace.satisfies_weak_agreement());
    }
}
