//! Acceptance tests for the engine's fault tolerance (DESIGN.md §4c):
//! an injected panic in any single worker must leave results
//! bit-identical, and an exceeded `RunBudget` must terminate promptly
//! with a typed `Partial` outcome — across the builder, the knowledge
//! engine, and the campaign runner together.

use eba_kripke::{Evaluator, Formula, NonRigidSet};
use eba_model::{FailureMode, RunBudget, Scenario, ScenarioSpace};
use eba_protocols::runner::{run_exhaustive, run_exhaustive_supervised};
use eba_protocols::Relay;
use eba_sim::chaos::{ChaosPlan, FaultInjector, FaultKind, FaultSite};
use eba_sim::{BuildOutcome, SystemBuilder};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scenario() -> Scenario {
    Scenario::new(3, 1, FailureMode::Omission, 2).unwrap()
}

/// End-to-end: a panicked builder shard *and* a panicked campaign shard
/// are both absorbed by supervision, and every downstream artifact — the
/// generated system, a knowledge verdict, and the campaign report — is
/// identical to a fault-free execution.
#[test]
fn single_worker_panics_leave_all_results_bit_identical() {
    let scenario = scenario();
    let baseline = SystemBuilder::new(&scenario).threads(1).build().unwrap();
    let baseline_report = run_exhaustive(&Relay::p0(1), &scenario);
    let formula = Formula::exists(eba_model::Value::Zero).common(NonRigidSet::Nonfaulty);
    let baseline_verdict = {
        let mut eval = Evaluator::new(&baseline);
        Arc::unwrap_or_clone(eval.eval(&formula))
    };

    for victim in 0..4 {
        let plan = Arc::new(ChaosPlan::new().with_fault(
            FaultSite::BuilderShard,
            victim,
            FaultKind::Panic,
        ));
        let outcome = SystemBuilder::new(&scenario)
            .threads(4)
            .shards(4)
            .chaos(Arc::clone(&plan) as Arc<dyn FaultInjector>)
            .build_governed()
            .unwrap();
        assert_eq!(plan.fired(), 1, "shard {victim}: fault must fire");
        let report = outcome.report();
        assert_eq!(report.worker_faults.len(), 1, "shard {victim}");
        assert_eq!(report.worker_faults[0].index, victim);
        let system = outcome.into_system();
        assert_eq!(system.num_runs(), baseline.num_runs(), "shard {victim}");
        assert_eq!(
            system.table().len(),
            baseline.table().len(),
            "shard {victim}: view tables must be bit-identical"
        );
        let mut eval = Evaluator::new(&system);
        let verdict = Arc::unwrap_or_clone(eval.eval(&formula));
        assert_eq!(verdict, baseline_verdict, "shard {victim}");
    }

    let plan = Arc::new(ChaosPlan::new().with_fault(FaultSite::CampaignShard, 3, FaultKind::Panic));
    let chaos: Arc<dyn FaultInjector> = Arc::clone(&plan) as _;
    let report = run_exhaustive_supervised(&Relay::p0(1), &scenario, 4, &chaos).unwrap();
    assert_eq!(plan.fired(), 1);
    assert_eq!(report.runs, baseline_report.runs);
    assert_eq!(report.stats.histogram(), baseline_report.stats.histogram());
    assert_eq!(
        report.messages_delivered,
        baseline_report.messages_delivered
    );
}

/// An exceeded run budget yields `Partial` with the statically planned
/// shard prefix, and the prefix is the one a complete build would have
/// produced.
#[test]
fn exceeded_run_budget_is_a_typed_deterministic_partial() {
    let scenario = scenario();
    let space = ScenarioSpace::new(scenario);
    let shards = space.shards(4);
    let num_configs = space.num_configs();
    let first_two: u64 = shards[..2]
        .iter()
        .map(|s| u64::try_from(s.len() * num_configs).unwrap())
        .sum();
    let outcome = SystemBuilder::new(&scenario)
        .shards(4)
        .budget(RunBudget::unlimited().with_max_runs(first_two))
        .build_governed()
        .unwrap();
    match outcome {
        BuildOutcome::Partial {
            system,
            completed_shards,
            total_shards,
            budget_hit,
            ..
        } => {
            assert_eq!(completed_shards, 2);
            assert_eq!(total_shards, 4);
            assert_eq!(system.num_runs() as u64, first_two);
            assert_eq!(
                budget_hit,
                eba_model::BudgetHit::MaxRuns { limit: first_two }
            );
            let full = SystemBuilder::new(&scenario).shards(4).build().unwrap();
            for (run, full_run) in system.run_ids().zip(full.run_ids()) {
                assert_eq!(system.run(run).pattern, full.run(full_run).pattern);
                assert_eq!(system.run(run).config, full.run(full_run).config);
            }
        }
        BuildOutcome::Complete { .. } => panic!("budget should have been exceeded"),
    }
}

/// A deadline budget terminates well within 2× the deadline even on a
/// scenario whose complete build is much larger, and reports the hit.
#[test]
fn deadline_budget_terminates_within_twice_the_deadline() {
    // A deliberately heavy scenario so an unbudgeted build would dwarf
    // the deadline.
    let scenario = Scenario::new(4, 2, FailureMode::Omission, 3).unwrap();
    let deadline = Duration::from_millis(500);
    let start = Instant::now();
    let outcome = SystemBuilder::new(&scenario)
        .budget(RunBudget::unlimited().with_deadline(deadline))
        .build_governed()
        .unwrap();
    let elapsed = start.elapsed();
    match outcome {
        BuildOutcome::Partial { budget_hit, .. } => {
            assert_eq!(
                budget_hit,
                eba_model::BudgetHit::Deadline { limit: deadline }
            );
        }
        BuildOutcome::Complete { .. } => {
            // The machine finished the whole build inside the deadline;
            // nothing to assert about truncation, and the time bound
            // below still holds trivially.
        }
    }
    // The per-pattern deadline checks bound the overshoot to one
    // pattern's work plus the merge of the already-built prefix, both
    // well under one deadline's worth.
    assert!(
        elapsed < deadline * 2,
        "build ran {elapsed:?} against a {deadline:?} deadline"
    );
}
