//! Experiment EXP11; see `eba_bench::experiments::exp11`.
fn main() {
    for table in eba_bench::experiments::exp11() {
        table.print();
    }
}
