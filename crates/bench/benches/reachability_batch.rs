//! PR 4 companion: per-set reachability construction vs the batched
//! one-sweep engine of [`eba_kripke::BatchBuilder`].
//!
//! Three workloads, each over the standard spaces (two exhaustive, one
//! sampled at n=5 t=2):
//!
//! * **multi_set / cold** — a four-set family (`Everyone`, `Nonfaulty`,
//!   and two `N ∧ A` candidate families) registered against an empty
//!   [`KnowledgeCache`]: the per-set side pays one CSR traversal per set,
//!   the batched side shares a single membership pass + traversal.
//! * **multi_set / warm** — the same family against a pre-populated
//!   shared cache: both sides reduce to staged lookups, measuring the
//!   overhead of the hash-once keys and the batch's stage-1 drain.
//! * **optimize / cold** — the full two-step optimality sweep from a
//!   cold evaluator (the acceptance workload), where the batch prefetch
//!   in `step_zero`/`step_one` folds the per-step `C□_{N∧A}` and `B^N_i`
//!   set resolutions into one sweep each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_core::{Constructor, DecisionPair};
use eba_kripke::{Evaluator, KnowledgeCache, NonRigidSet, StateSets};
use eba_model::{FailureMode, Scenario, Value};
use eba_sim::GeneratedSystem;
use std::hint::black_box;

/// The scenario spaces under test: two exhaustive spaces and the n=5,
/// t=2 sampled space from the acceptance criteria.
fn systems() -> Vec<(String, GeneratedSystem)> {
    let mut out = Vec::new();
    for scenario in [
        Scenario::new(3, 1, FailureMode::Crash, 3).expect("valid scenario"),
        Scenario::new(3, 1, FailureMode::Omission, 2).expect("valid scenario"),
    ] {
        out.push((scenario.to_string(), GeneratedSystem::exhaustive(&scenario)));
    }
    let big = Scenario::new(5, 2, FailureMode::Crash, 3).expect("valid scenario");
    out.push((
        format!("{big} (sampled)"),
        GeneratedSystem::sampled(&big, 400, 0xEBA),
    ));
    out
}

/// The two value-seen candidate families of the benchmark workload
/// (the decision-set shapes an optimize step resolves). Built once per
/// system — the timed loops only clone and register them.
fn candidate_families(system: &GeneratedSystem) -> (StateSets, StateSets) {
    (
        StateSets::with_value_seen(system.table(), system.n(), Value::Zero),
        StateSets::with_value_seen(system.table(), system.n(), Value::One),
    )
}

/// A fresh evaluator with the four-set benchmark family registered:
/// `Everyone`, `Nonfaulty`, and `N ∧ A` for the two candidate families.
fn family<'a>(
    system: &'a GeneratedSystem,
    families: &(StateSets, StateSets),
    cache: &KnowledgeCache,
) -> (Evaluator<'a>, Vec<NonRigidSet>) {
    let mut eval = Evaluator::with_cache(system, cache.clone());
    let z = eval.register_state_sets(families.0.clone());
    let o = eval.register_state_sets(families.1.clone());
    let sets = vec![
        NonRigidSet::Everyone,
        NonRigidSet::Nonfaulty,
        NonRigidSet::NonfaultyAnd(z),
        NonRigidSet::NonfaultyAnd(o),
    ];
    (eval, sets)
}

/// Registers the family on `eval`, via the requested path.
fn register(eval: &mut Evaluator<'_>, sets: &[NonRigidSet], batched: bool) {
    if batched {
        black_box(eval.reachability_batch(sets));
    } else {
        eval.set_batch_mode(false);
        for &s in sets {
            black_box(eval.reachability(s));
        }
    }
}

fn multi_set_registration(c: &mut Criterion) {
    for warm in [false, true] {
        let temp = if warm { "warm" } else { "cold" };
        let mut group = c.benchmark_group(format!("reachability_batch_{temp}"));
        for (label, system) in systems() {
            let families = candidate_families(&system);
            let warm_cache = KnowledgeCache::new();
            if warm {
                let (mut eval, sets) = family(&system, &families, &warm_cache);
                register(&mut eval, &sets, true);
            }
            for (mode, batched) in [("per-set", false), ("batched", true)] {
                group.bench_with_input(BenchmarkId::new(mode, &label), &system, |b, system| {
                    b.iter(|| {
                        // A cold run pays the full construction each
                        // iteration (fresh cache); a warm run drains the
                        // shared cache through a fresh evaluator's memos.
                        let cache = if warm {
                            warm_cache.clone()
                        } else {
                            KnowledgeCache::new()
                        };
                        let (mut eval, sets) = family(system, &families, &cache);
                        register(&mut eval, &sets, batched);
                    });
                });
            }
        }
        group.finish();
    }
}

fn cold_optimality_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability_batch_optimize");
    group.sample_size(10);
    for (label, system) in systems() {
        for (mode, batched) in [("per-set", false), ("batched", true)] {
            group.bench_with_input(BenchmarkId::new(mode, &label), &system, |b, system| {
                b.iter(|| {
                    let mut ctor = Constructor::new(system);
                    ctor.evaluator().set_batch_mode(batched);
                    black_box(ctor.optimize(&DecisionPair::empty(system.n())));
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = multi_set_registration, cold_optimality_sweep
}
criterion_main!(benches);
