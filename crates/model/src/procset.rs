//! Compact sets of processors.

use crate::ProcessorId;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not, Sub};

/// A set of processors, represented as a 128-bit mask.
///
/// `ProcSet` is the workhorse set type of the workspace: failure patterns,
/// heard-from sets, nonfaulty sets, and nonrigid-set snapshots are all
/// `ProcSet`s. Supports systems of up to 128 processors.
///
/// # Example
///
/// ```
/// use eba_model::{ProcSet, ProcessorId};
///
/// let mut s = ProcSet::empty();
/// s.insert(ProcessorId::new(0));
/// s.insert(ProcessorId::new(2));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(ProcessorId::new(2)));
/// let all = ProcSet::full(4);
/// assert_eq!((all - s).len(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcSet(u128);

impl ProcSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> Self {
        ProcSet(0)
    }

    /// The set of all `n` processors `{0, …, n−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 128`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        assert!(n <= 128, "ProcSet supports at most 128 processors");
        if n == 128 {
            ProcSet(u128::MAX)
        } else {
            ProcSet((1u128 << n) - 1)
        }
    }

    /// The singleton set `{p}`.
    #[must_use]
    pub fn singleton(p: ProcessorId) -> Self {
        ProcSet(1u128 << p.index())
    }

    /// Builds a set from a raw bit mask. Bit `i` corresponds to processor `i`.
    #[must_use]
    pub const fn from_bits(bits: u128) -> Self {
        ProcSet(bits)
    }

    /// Returns the raw bit mask.
    #[must_use]
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// Tests whether `p` is a member.
    #[must_use]
    pub fn contains(self, p: ProcessorId) -> bool {
        self.0 & (1u128 << p.index()) != 0
    }

    /// Inserts `p`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, p: ProcessorId) -> bool {
        let bit = 1u128 << p.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes `p`; returns `true` if it was present.
    pub fn remove(&mut self, p: ProcessorId) -> bool {
        let bit = 1u128 << p.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Number of members.
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub const fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether the two sets share no members.
    #[must_use]
    pub const fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// Set intersection.
    #[must_use]
    pub const fn intersection(self, other: Self) -> Self {
        ProcSet(self.0 & other.0)
    }

    /// Set union.
    #[must_use]
    pub const fn union(self, other: Self) -> Self {
        ProcSet(self.0 | other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub const fn difference(self, other: Self) -> Self {
        ProcSet(self.0 & !other.0)
    }

    /// Complement relative to the full set of `n` processors.
    #[must_use]
    pub fn complement(self, n: usize) -> Self {
        ProcSet(!self.0 & Self::full(n).0)
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// The member with the smallest index, if any.
    #[must_use]
    pub fn first(self) -> Option<ProcessorId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessorId::new(self.0.trailing_zeros() as usize))
        }
    }
}

/// Iterator over the members of a [`ProcSet`], in increasing index order.
#[derive(Clone, Debug)]
pub struct Iter(u128);

impl Iterator for Iter {
    type Item = ProcessorId;

    fn next(&mut self) -> Option<ProcessorId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(ProcessorId::new(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let k = self.0.count_ones() as usize;
        (k, Some(k))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for ProcSet {
    type Item = ProcessorId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<ProcessorId> for ProcSet {
    fn from_iter<I: IntoIterator<Item = ProcessorId>>(iter: I) -> Self {
        let mut s = ProcSet::empty();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcessorId> for ProcSet {
    fn extend<I: IntoIterator<Item = ProcessorId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl BitAnd for ProcSet {
    type Output = ProcSet;
    fn bitand(self, rhs: Self) -> Self {
        self.intersection(rhs)
    }
}

impl BitOr for ProcSet {
    type Output = ProcSet;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl BitXor for ProcSet {
    type Output = ProcSet;
    fn bitxor(self, rhs: Self) -> Self {
        ProcSet(self.0 ^ rhs.0)
    }
}

impl Sub for ProcSet {
    type Output = ProcSet;
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl Not for ProcSet {
    type Output = ProcSet;
    /// Bitwise complement over all 128 potential processors; prefer
    /// [`ProcSet::complement`] when the system size is known.
    fn not(self) -> Self {
        ProcSet(!self.0)
    }
}

impl fmt::Debug for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|p| p.index()))
            .finish()
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, p) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// Iterates over all subsets of `base`, including the empty set and `base`
/// itself, in an unspecified but deterministic order.
///
/// # Example
///
/// ```
/// use eba_model::{ProcSet, procset_subsets};
///
/// let base = ProcSet::full(3);
/// let subsets: Vec<_> = procset_subsets(base).collect();
/// assert_eq!(subsets.len(), 8);
/// ```
pub fn subsets(base: ProcSet) -> Subsets {
    Subsets {
        base: base.bits(),
        current: 0,
        done: false,
    }
}

/// Iterator over all subsets of a [`ProcSet`]; see [`subsets`].
#[derive(Clone, Debug)]
pub struct Subsets {
    base: u128,
    current: u128,
    done: bool,
}

impl Iterator for Subsets {
    type Item = ProcSet;

    fn next(&mut self) -> Option<ProcSet> {
        if self.done {
            return None;
        }
        let result = ProcSet::from_bits(self.current);
        if self.current == self.base {
            self.done = true;
        } else {
            // Standard trick: enumerate sub-masks of `base` in increasing
            // numeric order.
            self.current = (self.current.wrapping_sub(self.base)) & self.base;
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn empty_and_full() {
        assert!(ProcSet::empty().is_empty());
        assert_eq!(ProcSet::full(5).len(), 5);
        assert_eq!(ProcSet::full(128).len(), 128);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcSet::empty();
        assert!(s.insert(p(3)));
        assert!(!s.insert(p(3)));
        assert!(s.contains(p(3)));
        assert!(s.remove(p(3)));
        assert!(!s.remove(p(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a: ProcSet = [p(0), p(1)].into_iter().collect();
        let b: ProcSet = [p(1), p(2)].into_iter().collect();
        assert_eq!((a | b).len(), 3);
        assert_eq!((a & b).len(), 1);
        assert_eq!((a - b).len(), 1);
        assert_eq!((a ^ b).len(), 2);
        assert!(a.intersection(b).contains(p(1)));
        assert!((a - b).contains(p(0)));
    }

    #[test]
    fn subset_and_disjoint() {
        let a: ProcSet = [p(0)].into_iter().collect();
        let b: ProcSet = [p(0), p(1)].into_iter().collect();
        let c: ProcSet = [p(2)].into_iter().collect();
        assert!(a.is_subset(b));
        assert!(!b.is_subset(a));
        assert!(a.is_disjoint(c));
        assert!(!a.is_disjoint(b));
    }

    #[test]
    fn complement_respects_n() {
        let a: ProcSet = [p(0)].into_iter().collect();
        let comp = a.complement(3);
        assert_eq!(comp, [p(1), p(2)].into_iter().collect());
    }

    #[test]
    fn iter_in_order() {
        let s: ProcSet = [p(5), p(1), p(9)].into_iter().collect();
        let v: Vec<_> = s.iter().map(ProcessorId::index).collect();
        assert_eq!(v, vec![1, 5, 9]);
        assert_eq!(s.first(), Some(p(1)));
        assert_eq!(ProcSet::empty().first(), None);
    }

    #[test]
    fn subsets_enumerates_power_set() {
        let base = ProcSet::full(4);
        let all: Vec<_> = subsets(base).collect();
        assert_eq!(all.len(), 16);
        // All distinct.
        let mut sorted: Vec<u128> = all.iter().map(|s| s.bits()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
        // Every element is a subset of base.
        assert!(all.iter().all(|s| s.is_subset(base)));
    }

    #[test]
    fn subsets_of_empty_is_just_empty() {
        let all: Vec<_> = subsets(ProcSet::empty()).collect();
        assert_eq!(all, vec![ProcSet::empty()]);
    }

    #[test]
    fn display_formats() {
        let s: ProcSet = [p(0), p(2)].into_iter().collect();
        assert_eq!(s.to_string(), "{p1, p3}");
        assert_eq!(format!("{s:?}"), "{0, 2}");
    }
}
