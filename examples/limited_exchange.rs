//! Limited-information exchange: past the full-information wall.
//!
//! The paper's constructions run over the full-information protocol,
//! whose distinct-view count grows ~4× per appended round on the
//! omission spaces. The `digest:0` exchange (DESIGN.md §4g) replaces the
//! view tree with a bounded who-heard-what summary whose recent-timing
//! window forgets old delivery schedules — state growth turns linear in
//! the horizon, at the price of being lossy past the window.
//!
//! This example first cross-checks the digest against the
//! full-information oracle on a small lossless space, then gives both
//! engines the same view budget at a horizon only the digest can
//! enumerate exhaustively, and runs the knowledge machinery on the
//! digest system that the full-information engine could not build.
//!
//! ```text
//! cargo run --release --example limited_exchange
//! ```

use eba::prelude::*;
use eba_core::protocols::zero_chain_pair;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. On a small space the digest is lossless: same state partition,
    //    same decisions, same optimality verdict as full information.
    let small = Scenario::new(3, 1, FailureMode::Omission, 2)?;
    let full = GeneratedSystem::exhaustive(&small);
    let digest = GeneratedSystem::exhaustive(&small.with_exchange(ExchangeKind::digest(0)?)?);
    let (pair_full, pair_digest) = (
        Constructor::new(&full).optimize(&DecisionPair::empty(3)),
        Constructor::new(&digest).optimize(&DecisionPair::empty(3)),
    );
    let d_full = FipDecisions::compute(&full, &pair_full, "full");
    let d_digest = FipDecisions::compute(&digest, &pair_digest, "digest:0");
    let agree = full
        .run_ids()
        .all(|r| ProcessorId::all(3).all(|p| d_full.decision(r, p) == d_digest.decision(r, p)));
    println!("— lossless cross-check on {small}");
    println!(
        "  states: full {} vs digest {}   optimized decisions identical: {agree}",
        full.table().len(),
        digest.table().len(),
    );
    assert!(agree, "digest must match the oracle on the small space");

    // 2. Same scenario family, horizon 6, and a shared view budget. The
    //    full-information engine needs ~163k distinct views here and
    //    stops at a prefix; the digest needs ~26k and completes.
    let budget = RunBudget::unlimited().with_max_views(100_000);
    let tall = Scenario::new(3, 1, FailureMode::Omission, 6)?;
    println!("— shared view budget (max 100k interned states) at {tall}");
    for scenario in [tall, tall.with_exchange(ExchangeKind::digest(0)?)?] {
        let outcome = SystemBuilder::new(&scenario)
            .budget(budget)
            .build_governed()
            .unwrap_or_else(|fault| panic!("{fault}"));
        let exchange = scenario.exchange();
        match outcome.budget_hit() {
            None => println!(
                "  {exchange}: complete — {} runs, {} states",
                outcome.system().num_runs(),
                outcome.system().table().len(),
            ),
            Some(hit) => println!(
                "  {exchange}: PARTIAL ({hit}) — prefix of {} runs",
                outcome.system().num_runs(),
            ),
        }
        if !outcome.is_complete() {
            continue;
        }

        // 3. The knowledge engine runs unchanged over the digest system:
        //    the paper's zero-chain protocol FIP(Z⁰,O⁰) at a horizon the
        //    full-information build above could not reach.
        let system = outcome.into_system();
        let mut ctor = Constructor::new(&system);
        let chain = zero_chain_pair(&mut ctor);
        let decisions = FipDecisions::compute(&system, &chain, "FIP(Z⁰,O⁰)");
        let report = verify_properties(&system, &decisions);
        println!(
            "  {exchange}: FIP(Z⁰,O⁰) over the exhaustive horizon-6 space: EBA = {}",
            report.is_eba(),
        );
    }
    Ok(())
}
