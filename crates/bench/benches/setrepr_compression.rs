//! Set-representation backends under the optimize-sweep workload: what
//! the hash-consed node table costs in time and buys in residency.
//!
//! Workload shape is the acceptance scenario, n=5 t=2 omission (sampled
//! at 400 runs so the sweep fits a bench iteration): a two-step
//! optimality sweep plus a 16-step candidate-family trajectory — each
//! family differing from its predecessor by one view, the shape an
//! optimize step's decision sets actually walk. The trajectory is where
//! compression lives: dense scope columns for near-identical families
//! are distinct word vectors, while the shared backend's node table
//! collapses their common subtrees.
//!
//! The `setrepr_residency:` line printed at the end is the source of the
//! BENCH_engine.json `set-repr` record (dense vs shared resident bytes
//! for the registered families, node dedup ratio, memo hits).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_core::{Constructor, DecisionPair};
use eba_kripke::{Evaluator, KnowledgeCache, NonRigidSet, SetReprKind, StateSets};
use eba_model::{FailureMode, ProcessorId, Scenario, Value};
use eba_sim::GeneratedSystem;
use std::hint::black_box;

fn bench_system() -> (String, GeneratedSystem) {
    let scenario = Scenario::new(5, 2, FailureMode::Omission, 2).expect("valid scenario");
    (
        format!("{scenario} (sampled)"),
        GeneratedSystem::sampled(&scenario, 400, 0xEBA),
    )
}

/// A 16-step candidate-family trajectory: start from the value-seen
/// family and grow it by one `(processor, view)` membership per step,
/// mirroring how an optimize sweep's decision sets evolve by small
/// deltas. Deterministic, so both backends intern the same sequence.
fn family_trajectory(system: &GeneratedSystem) -> Vec<StateSets> {
    let n = system.n();
    let views: Vec<_> = system.table().ids().collect();
    let mut family = StateSets::with_value_seen(system.table(), n, Value::Zero);
    let mut out = vec![family.clone()];
    let mut x = 0xEBAu64;
    for _ in 0..15 {
        // Draw candidates until one actually grows the family, so every
        // trajectory step is a distinct near-identical set.
        loop {
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            let p = ProcessorId::new((x % n as u64) as usize);
            let v = views[(x >> 8) as usize % views.len()];
            if family.insert(p, v) {
                break;
            }
        }
        out.push(family.clone());
    }
    out
}

/// Registers every trajectory family on a fresh evaluator over `cache`
/// and materializes its `N ∧ A` scope columns, populating the cache's
/// scope store (dense columns or node-table roots, per the backend).
fn intern_trajectory(
    system: &GeneratedSystem,
    trajectory: &[StateSets],
    cache: &KnowledgeCache,
) {
    let mut eval = Evaluator::with_cache(system, cache.clone());
    for family in trajectory {
        let id = eval.register_state_sets(family.clone());
        black_box(eval.scope_columns(NonRigidSet::NonfaultyAnd(id)));
    }
}

fn scope_interning(c: &mut Criterion) {
    let (label, system) = bench_system();
    let trajectory = family_trajectory(&system);
    let mut group = c.benchmark_group("setrepr_scope_interning");
    for repr in [SetReprKind::Dense, SetReprKind::Shared] {
        group.bench_with_input(BenchmarkId::new(repr.as_str(), &label), &system, |b, system| {
            b.iter(|| {
                let cache = KnowledgeCache::with_repr(repr);
                intern_trajectory(system, &trajectory, &cache);
                black_box(cache.resident_bytes());
            });
        });
    }
    group.finish();
}

fn optimize_sweep(c: &mut Criterion) {
    let (label, system) = bench_system();
    let mut group = c.benchmark_group("setrepr_optimize");
    group.sample_size(10);
    for repr in [SetReprKind::Dense, SetReprKind::Shared] {
        group.bench_with_input(BenchmarkId::new(repr.as_str(), &label), &system, |b, system| {
            b.iter(|| {
                let mut ctor =
                    Constructor::with_cache(system, KnowledgeCache::with_repr(repr));
                black_box(ctor.optimize(&DecisionPair::empty(system.n())));
            });
        });
    }
    group.finish();
}

/// Not a timing: measures the resident footprint of the registered
/// family store under each backend for the same trajectory workload and
/// prints the comparison consumed by BENCH_engine.json.
fn residency_report(c: &mut Criterion) {
    // Touch the harness so the bench registers even if filtered.
    let _ = c;
    let (label, system) = bench_system();
    let trajectory = family_trajectory(&system);
    let mut figures = Vec::new();
    for repr in [SetReprKind::Dense, SetReprKind::Shared] {
        let cache = KnowledgeCache::with_repr(repr);
        intern_trajectory(&system, &trajectory, &cache);
        figures.push((cache.resident_bytes(), cache.stats()));
    }
    let (dense_bytes, _) = &figures[0];
    let (shared_bytes, shared_stats) = &figures[1];
    println!(
        "setrepr_residency: {label}: {} families; dense {dense_bytes} bytes, shared \
         {shared_bytes} bytes ({:.2}x reduction); {} nodes, {:.2} dedup ratio, {} memo hits",
        trajectory.len(),
        *dense_bytes as f64 / (*shared_bytes).max(1) as f64,
        shared_stats.nodes,
        shared_stats.node_dedup_ratio(),
        shared_stats.node_memo_hits,
    );
}

criterion_group!(benches, scope_interning, optimize_sweep, residency_report);
criterion_main!(benches);
