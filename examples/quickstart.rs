//! Quickstart: derive the optimal crash-mode EBA protocol from nothing.
//!
//! Builds the full-information system for a small scenario, applies the
//! paper's two-step optimization (Theorem 5.2) to the never-deciding
//! protocol `F^Λ`, verifies the result is an optimal EBA protocol
//! (Theorem 5.3), and prints what it decides on a few interesting runs.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use eba::prelude::*;
use eba_model::sample;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A system of 4 processors, at most 1 crash failure, simulated for
    //    t + 2 = 3 rounds.
    let scenario = Scenario::with_recommended_horizon(4, 1, FailureMode::Crash)?;
    println!("scenario: {scenario}");

    // 2. Generate *every* run of the full-information protocol.
    let system = GeneratedSystem::exhaustive(&scenario);
    println!(
        "generated system: {} runs, {} points, {} distinct views",
        system.num_runs(),
        system.num_points(),
        system.table().len()
    );

    // 3. Optimize the never-deciding protocol F^Λ. Two steps suffice
    //    (Theorem 5.2); the result is the paper's F^{Λ,2}.
    let mut ctor = Constructor::new(&system);
    let f_lambda_2 = ctor.optimize(&DecisionPair::empty(scenario.n()));
    let decisions = FipDecisions::compute(&system, &f_lambda_2, "F^{Λ,2}");

    // 4. Verify: it is an EBA protocol, and it is optimal.
    let properties = verify_properties(&system, &decisions);
    println!("properties: {properties}");
    assert!(properties.is_eba());
    let optimality = check_optimality(&mut ctor, &f_lambda_2);
    println!("optimality (Theorem 5.3): {optimality}");
    assert!(optimality.is_optimal());

    // 5. Watch it decide. Failure-free all-ones: decide 1 at time 1.
    let show = |config: &InitialConfig, pattern: &FailurePattern| {
        let run = system.find_run(config, pattern).expect("run exists");
        print!("  {config} under [{pattern}]:");
        for p in ProcessorId::all(scenario.n()) {
            match decisions.decision(run, p) {
                Some(d) => print!("  {p}→{} @{}", d.value, d.time),
                None => print!("  {p}→⊥"),
            }
        }
        println!();
    };

    println!("\ndecisions of F^{{Λ,2}}:");
    let failure_free = FailurePattern::failure_free(scenario.n());
    show(&InitialConfig::uniform(4, Value::One), &failure_free);
    show(&InitialConfig::uniform(4, Value::Zero), &failure_free);
    show(&InitialConfig::from_bits(4, 0b1110), &failure_free);
    // A 0-holder crashing before revealing its value: the survivors
    // settle on 1 as soon as knowledge permits.
    let silent = sample::silent_processor(&scenario, ProcessorId::new(0));
    show(&InitialConfig::from_bits(4, 0b1110), &silent);

    Ok(())
}
