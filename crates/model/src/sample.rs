//! Seeded random and adversarial failure-pattern generation.
//!
//! Exhaustive enumeration ([`crate::enumerate`]) is exact but limited to
//! small scenarios; the samplers here generate reproducible random runs for
//! larger ones. All sampling is driven by an explicit [`rand::Rng`], so
//! experiments are deterministic given a seed.

use crate::{
    FailureMode, FailurePattern, FaultyBehavior, InitialConfig, ProcSet, ProcessorId, Round,
    Scenario, Value,
};
use rand::seq::SliceRandom;
use rand::Rng;

/// A configurable random failure-pattern sampler.
///
/// # Example
///
/// ```
/// use eba_model::{sample::PatternSampler, FailureMode, Scenario};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(16, 4, FailureMode::Omission, 6)?;
/// let sampler = PatternSampler::new(scenario).omission_density(0.25);
/// let mut rng = StdRng::seed_from_u64(7);
/// let pattern = sampler.sample(&mut rng);
/// assert!(scenario.validate_pattern(&pattern).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PatternSampler {
    scenario: Scenario,
    clean_probability: f64,
    omission_density: f64,
    exact_faulty: Option<usize>,
}

impl PatternSampler {
    /// Creates a sampler with default parameters: faulty count uniform in
    /// `0..=t`, clean probability 0.1, omission density 0.3.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        PatternSampler {
            scenario,
            clean_probability: 0.1,
            omission_density: 0.3,
            exact_faulty: None,
        }
    }

    /// Sets the probability that a faulty processor is clean within the
    /// horizon (fails only later).
    #[must_use]
    pub fn clean_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.clean_probability = p;
        self
    }

    /// Sets the per-(round, receiver) omission probability used in
    /// omission mode.
    #[must_use]
    pub fn omission_density(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.omission_density = p;
        self
    }

    /// Forces every sampled pattern to have exactly `f` faulty processors.
    ///
    /// # Panics
    ///
    /// Panics if `f > t`.
    #[must_use]
    pub fn exact_faulty(mut self, f: usize) -> Self {
        assert!(
            f <= self.scenario.t(),
            "f = {f} exceeds t = {}",
            self.scenario.t()
        );
        self.exact_faulty = Some(f);
        self
    }

    /// Samples one failure pattern.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> FailurePattern {
        let n = self.scenario.n();
        let f = self
            .exact_faulty
            .unwrap_or_else(|| rng.gen_range(0..=self.scenario.t()));
        let mut ids: Vec<ProcessorId> = ProcessorId::all(n).collect();
        ids.shuffle(rng);
        let mut pattern = FailurePattern::failure_free(n);
        for &p in ids.iter().take(f) {
            pattern.set_behavior(p, self.sample_behavior(p, rng));
        }
        pattern
    }

    /// Samples one faulty behavior for processor `p`.
    pub fn sample_behavior<R: Rng + ?Sized>(&self, p: ProcessorId, rng: &mut R) -> FaultyBehavior {
        let n = self.scenario.n();
        let horizon = self.scenario.horizon();
        let others = ProcSet::full(n) - ProcSet::singleton(p);
        match self.scenario.mode() {
            FailureMode::Crash => {
                if rng.gen_bool(self.clean_probability) {
                    return FaultyBehavior::Clean;
                }
                let round = Round::new(rng.gen_range(1..=horizon.ticks()));
                let receivers: ProcSet = others.iter().filter(|_| rng.gen_bool(0.5)).collect();
                FaultyBehavior::Crash { round, receivers }
            }
            FailureMode::Omission => {
                let omissions: Vec<ProcSet> = (0..horizon.index())
                    .map(|_| {
                        others
                            .iter()
                            .filter(|_| rng.gen_bool(self.omission_density))
                            .collect()
                    })
                    .collect();
                FaultyBehavior::Omission { omissions }
            }
            FailureMode::GeneralOmission => {
                let vector = |rng: &mut R| -> Vec<ProcSet> {
                    (0..horizon.index())
                        .map(|_| {
                            others
                                .iter()
                                .filter(|_| rng.gen_bool(self.omission_density))
                                .collect()
                        })
                        .collect()
                };
                FaultyBehavior::GeneralOmission {
                    send: vector(rng),
                    receive: vector(rng),
                }
            }
        }
    }
}

/// Samples a uniformly random initial configuration of `n` processors.
pub fn random_config<R: Rng + ?Sized>(n: usize, rng: &mut R) -> InitialConfig {
    InitialConfig::new((0..n).map(|_| Value::from_bit(rng.gen_bool(0.5))).collect())
}

/// Samples a configuration in which each processor independently holds 0
/// with probability `zero_probability`.
///
/// With uniform sampling a large system almost surely contains a 0 and
/// every interesting protocol decides 0 immediately; biasing the zeros
/// sparse (or away entirely) exercises the decide-1 rules that the
/// paper's optimization is about.
///
/// # Panics
///
/// Panics if `zero_probability` is outside `[0, 1]`.
pub fn random_config_biased<R: Rng + ?Sized>(
    n: usize,
    zero_probability: f64,
    rng: &mut R,
) -> InitialConfig {
    InitialConfig::new(
        (0..n)
            .map(|_| Value::from_bit(!rng.gen_bool(zero_probability)))
            .collect(),
    )
}

/// The classic lower-bound adversary: a *silence chain*.
///
/// Processor `chain[k]` crashes in round `k + 1`, delivering its
/// crash-round message only to `chain[k + 1]` (the last chain member
/// delivers to nobody). This is the pattern family behind the `t + 1`
/// round lower bound (\[DS82\]) and behind the runs used in the proofs of
/// Theorem 6.2: information about an initial value travels along a single
/// thread that dies with the chain.
///
/// # Panics
///
/// Panics if the chain is empty, longer than the horizon, longer than `t`,
/// or contains duplicates.
#[must_use]
pub fn silence_chain(scenario: &Scenario, chain: &[ProcessorId]) -> FailurePattern {
    assert!(
        !chain.is_empty(),
        "a silence chain needs at least one processor"
    );
    assert!(
        chain.len() <= scenario.t(),
        "chain exceeds the failure bound t"
    );
    assert!(
        chain.len() <= scenario.horizon().index(),
        "chain exceeds the horizon"
    );
    let distinct: ProcSet = chain.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        chain.len(),
        "chain members must be distinct"
    );

    let mut pattern = FailurePattern::failure_free(scenario.n());
    for (k, &p) in chain.iter().enumerate() {
        let round = Round::new(k as u16 + 1);
        let receivers = match chain.get(k + 1) {
            Some(&next) => ProcSet::singleton(next),
            None => ProcSet::empty(),
        };
        let behavior = match scenario.mode() {
            FailureMode::Crash => FaultyBehavior::Crash { round, receivers },
            FailureMode::Omission | FailureMode::GeneralOmission => {
                let others = ProcSet::full(scenario.n()) - ProcSet::singleton(p);
                let omissions = (1..=scenario.horizon().ticks())
                    .map(|r| {
                        if r < round.number() {
                            ProcSet::empty()
                        } else if r == round.number() {
                            others - receivers
                        } else {
                            others
                        }
                    })
                    .collect();
                FaultyBehavior::Omission { omissions }
            }
        };
        pattern.set_behavior(p, behavior);
    }
    pattern
}

/// A pattern in which `p` is silent from the very first round (crashes in
/// round 1 delivering nothing, or omits everything in omission mode) —
/// the adversary of Proposition 6.3's witness run.
#[must_use]
pub fn silent_processor(scenario: &Scenario, p: ProcessorId) -> FailurePattern {
    silence_chain(scenario, &[p])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn sampled_patterns_validate() {
        for mode in FailureMode::ALL {
            let scenario = Scenario::new(8, 3, mode, 5).unwrap();
            let sampler = PatternSampler::new(scenario);
            let mut rng = StdRng::seed_from_u64(42);
            for _ in 0..200 {
                let pat = sampler.sample(&mut rng);
                scenario.validate_pattern(&pat).unwrap();
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let scenario = Scenario::new(8, 3, FailureMode::Crash, 5).unwrap();
        let sampler = PatternSampler::new(scenario);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20)
                .map(|_| sampler.sample(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn exact_faulty_is_respected() {
        let scenario = Scenario::new(8, 4, FailureMode::Omission, 4).unwrap();
        let sampler = PatternSampler::new(scenario).exact_faulty(4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(sampler.sample(&mut rng).num_faulty(), 4);
        }
    }

    #[test]
    fn random_config_covers_both_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen_zero = false;
        let mut seen_one = false;
        for _ in 0..50 {
            let c = random_config(6, &mut rng);
            seen_zero |= c.exists(Value::Zero);
            seen_one |= c.exists(Value::One);
        }
        assert!(seen_zero && seen_one);
    }

    #[test]
    fn silence_chain_crash_structure() {
        let scenario = Scenario::new(5, 2, FailureMode::Crash, 4).unwrap();
        let pattern = silence_chain(&scenario, &[p(0), p(1)]);
        scenario.validate_pattern(&pattern).unwrap();
        // p0 delivers its round-1 message only to p1.
        assert!(pattern.delivers(p(0), p(1), Round::new(1)));
        assert!(!pattern.delivers(p(0), p(2), Round::new(1)));
        assert!(!pattern.delivers(p(0), p(1), Round::new(2)));
        // p1 delivers its round-2 message to nobody.
        assert!(pattern.delivers(p(1), p(2), Round::new(1)));
        assert!(!pattern.delivers(p(1), p(2), Round::new(2)));
    }

    #[test]
    fn silence_chain_omission_structure() {
        let scenario = Scenario::new(5, 2, FailureMode::Omission, 4).unwrap();
        let pattern = silence_chain(&scenario, &[p(0), p(1)]);
        scenario.validate_pattern(&pattern).unwrap();
        assert!(pattern.delivers(p(0), p(1), Round::new(1)));
        assert!(!pattern.delivers(p(0), p(2), Round::new(1)));
        assert!(!pattern.delivers(p(0), p(3), Round::new(3)));
    }

    #[test]
    fn silent_processor_is_silent() {
        let scenario = Scenario::new(4, 1, FailureMode::Crash, 3).unwrap();
        let pattern = silent_processor(&scenario, p(2));
        for r in 1..=3 {
            for q in [0, 1, 3] {
                assert!(!pattern.delivers(p(2), p(q), Round::new(r)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn silence_chain_rejects_duplicates() {
        let scenario = Scenario::new(5, 2, FailureMode::Crash, 4).unwrap();
        let _ = silence_chain(&scenario, &[p(0), p(0)]);
    }
}
