//! The `eba-serve` binary: bind, serve, drain on SIGINT, flush stats.

use eba_serve::{install_sigint, render_stats_line, RetryPolicy, ServeConfig, Server};
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

const HELP: &str = "\
eba-serve — persistent agreement-checking daemon (line-delimited JSON over TCP)

USAGE:
    eba-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT   bind address                  (default 127.0.0.1:7878)
    --max-active N     concurrent queries            (default 8)
    --max-waiting N    queued queries before load    (default 32)
                       shedding with `overloaded` frames
    --mem-budget MB    session-pool memory budget    (default 256)
    --read-timeout S   per-connection read timeout   (default 30)
    --retries N        build retry attempts          (default 3)
    --threads N        worker threads per query      (default: all cores)
    --help             this text

PROTOCOL (one JSON object per line; see README for the full grammar):
    {\"op\":\"check\",\"formula\":\"CC(E0) -> C(E0)\",\"n\":3,\"t\":1,\"mode\":\"crash\"}
    {\"op\":\"optimize\",\"n\":3,\"t\":1,\"mode\":\"crash\",\"horizon\":3}
    {\"op\":\"sweep\",\"formula\":\"CC(E0) -> C(E0)\",\"from\":2,\"to\":4}
    {\"op\":\"stats\"}   {\"op\":\"evict\"}   {\"op\":\"ping\"}

SIGINT drains gracefully: stop accepting, finish or interrupt in-flight
queries at their next cooperative budget checkpoint, flush a stats line.
";

fn parse_config(args: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7878".to_owned(),
        ..ServeConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--addr" => config.addr = take("--addr")?,
            "--max-active" => {
                config.max_active = take("--max-active")?
                    .parse()
                    .map_err(|_| "bad --max-active")?;
                if config.max_active == 0 {
                    return Err("--max-active must be at least 1".to_owned());
                }
            }
            "--max-waiting" => {
                config.max_waiting = take("--max-waiting")?
                    .parse()
                    .map_err(|_| "bad --max-waiting")?;
            }
            "--mem-budget" => {
                let mb: u64 = take("--mem-budget")?
                    .parse()
                    .map_err(|_| "bad --mem-budget")?;
                config.mem_budget_bytes = mb.saturating_mul(1024 * 1024);
            }
            "--read-timeout" => {
                let secs: f64 = take("--read-timeout")?
                    .parse()
                    .map_err(|_| "bad --read-timeout")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--read-timeout must be positive seconds".to_owned());
                }
                config.read_timeout = Duration::from_secs_f64(secs);
            }
            "--retries" => {
                let attempts: u32 = take("--retries")?.parse().map_err(|_| "bad --retries")?;
                config.retry = RetryPolicy {
                    attempts: attempts.max(1),
                    ..RetryPolicy::default()
                };
            }
            "--threads" => {
                let threads: usize = take("--threads")?.parse().map_err(|_| "bad --threads")?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
                config.threads_per_query = Some(threads);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_config(&args) {
        Ok(config) => config,
        Err(message) if message.is_empty() => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `eba-serve --help` for usage");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return ExitCode::from(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!("eba-serve listening on {addr}"),
        Err(_) => eprintln!("eba-serve listening"),
    }

    // Bridge SIGINT to the server's drain flag: the handler sets the
    // process-global flag, a watcher thread forwards it.
    let sigint = install_sigint();
    let drain = server.drain_flag();
    std::thread::spawn(move || loop {
        if sigint.load(Ordering::Relaxed) {
            drain.store(true, Ordering::Relaxed);
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    let snapshot = server.run();
    eprintln!("{}", render_stats_line(&snapshot));
    ExitCode::SUCCESS
}
