//! A knowledge cache shared across evaluators over the same system.
//!
//! Computing the [`Reachability`] structure of a nonrigid set is the
//! dominant cost of evaluating `C_S`/`C□_S` formulas. Within one
//! [`Evaluator`](crate::Evaluator) it is memoized per [`NonRigidSet`], but
//! the ids inside a `NonRigidSet::NonfaultyAnd` are evaluator-relative, so
//! that memo cannot be handed to another evaluator. [`KnowledgeCache`]
//! closes the gap: it keys reachability by the *content* of the nonrigid
//! set ([`ReachKey`]) and can therefore be shared — cheaply cloned — among
//! any number of evaluators, including the fresh evaluators the
//! construction pipeline spins up per optimization step. Lookups take a
//! mutex, but only on the first request per `(evaluator, set)` pair; after
//! that the evaluator's local memo answers. The compiled evaluation plans
//! (`plan` module) share their per-processor *scope columns* here too,
//! under the same content keys.
//!
//! A cache is only meaningful for evaluators over the **same generated
//! system**: reachability indexes the system's points. Sharing one across
//! systems is caught in debug builds (the point counts disagree) but is
//! undefined behaviorally in release builds — make a new cache per system.

use crate::bitset::Bitset;
use crate::eval::Reachability;
use eba_sim::ViewId;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Per-processor scope columns of a nonrigid set: entry `p` is the set of
/// points at which processor `p` belongs to `S(r, k)`. Built once per
/// `(system, set)` by the compiled-plan kernels and shared here alongside
/// reachability, under the same content key.
pub(crate) type ScopeColumns = Arc<Vec<Bitset>>;

/// The content of a nonrigid set, independent of any evaluator's id
/// numbering: the `NonfaultyAnd` variant carries the sorted per-processor
/// view lists of the state-set family.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum ReachKey {
    Everyone,
    Nonfaulty,
    NonfaultyAnd(Vec<Box<[ViewId]>>),
}

/// A shareable, thread-safe memo of [`Reachability`] structures; see the
/// module docs. Cloning is cheap and clones share the same storage.
///
/// # Example
///
/// ```
/// use eba_kripke::{Evaluator, KnowledgeCache, NonRigidSet};
/// use eba_model::{FailureMode, Scenario};
/// use eba_sim::GeneratedSystem;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
/// let system = GeneratedSystem::exhaustive(&scenario);
/// let cache = KnowledgeCache::new();
/// let mut first = Evaluator::with_cache(&system, cache.clone());
/// first.reachability(NonRigidSet::Nonfaulty); // computed
/// let mut second = Evaluator::with_cache(&system, cache.clone());
/// second.reachability(NonRigidSet::Nonfaulty); // served from the cache
/// assert_eq!(cache.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct KnowledgeCache {
    reach: Arc<Mutex<HashMap<ReachKey, Arc<Reachability>>>>,
    scopes: Arc<Mutex<HashMap<ReachKey, ScopeColumns>>>,
}

impl KnowledgeCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        KnowledgeCache::default()
    }

    /// Number of reachability structures currently cached.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reach.lock().expect("knowledge cache poisoned").len()
    }

    /// Whether nothing is cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached structure (e.g. to bound memory between
    /// scenarios when reusing one cache handle).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex is poisoned.
    pub fn clear(&self) {
        self.reach.lock().expect("knowledge cache poisoned").clear();
        self.scopes
            .lock()
            .expect("knowledge cache poisoned")
            .clear();
    }

    pub(crate) fn get(&self, key: &ReachKey) -> Option<Arc<Reachability>> {
        self.reach
            .lock()
            .expect("knowledge cache poisoned")
            .get(key)
            .cloned()
    }

    pub(crate) fn insert(&self, key: ReachKey, value: Arc<Reachability>) {
        self.reach
            .lock()
            .expect("knowledge cache poisoned")
            .insert(key, value);
    }

    pub(crate) fn get_scopes(&self, key: &ReachKey) -> Option<ScopeColumns> {
        self.scopes
            .lock()
            .expect("knowledge cache poisoned")
            .get(key)
            .cloned()
    }

    pub(crate) fn insert_scopes(&self, key: ReachKey, value: ScopeColumns) {
        self.scopes
            .lock()
            .expect("knowledge cache poisoned")
            .insert(key, value);
    }
}
