//! The TCP daemon: admission control, panic isolation, graceful drain.
//!
//! One thread per connection, one line-delimited JSON frame per query
//! (see [`crate::protocol`]). Robustness mechanics:
//!
//! * **admission control / load shedding** — a bounded gate of
//!   `max_active` running queries plus `max_waiting` queued ones; a
//!   query arriving past both bounds is shed immediately with an
//!   `overloaded` frame carrying a `retry_after_ms` hint, instead of
//!   growing an unbounded queue;
//! * **panic isolation** — each query runs under `catch_unwind`; a
//!   panicking query yields an `internal-panic` frame and the
//!   connection (and daemon) live on. Pool locks recover from
//!   poisoning, so a panic cannot wedge other queries;
//! * **slow-loris defense** — a per-connection read timeout and a
//!   maximum frame length; a stalled or oversized sender is
//!   disconnected without holding any server resource beyond its own
//!   thread;
//! * **graceful drain** — setting the drain flag (SIGINT in the
//!   binary, [`Server::drain_flag`] in tests) stops the accept loop,
//!   interrupts in-flight *builds* at their next cooperative budget
//!   checkpoint (deterministic `partial` verdicts), answers subsequent
//!   frames with `shutting-down`, joins every connection thread, and
//!   returns the final stats snapshot.

use crate::json::Json;
use crate::pool::{RetryPolicy, SessionPool};
use crate::protocol::{Request, ServeError, DEFAULT_RETRY_AFTER_MS};
use crate::query::{execute, QueryContext};
use eba_sim::chaos::FaultInjector;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Server configuration; [`ServeConfig::default`] is suitable for
/// tests (loopback, ephemeral port).
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878`; port 0 picks one.
    pub addr: String,
    /// Queries allowed to run concurrently.
    pub max_active: usize,
    /// Queries allowed to wait for a slot; arrivals beyond this shed.
    pub max_waiting: usize,
    /// Pool memory budget (approximate resident bytes).
    pub mem_budget_bytes: u64,
    /// Per-connection read timeout (slow-loris bound).
    pub read_timeout: Duration,
    /// Maximum accepted frame length in bytes.
    pub max_frame_bytes: usize,
    /// Transient build fault retry policy.
    pub retry: RetryPolicy,
    /// Worker threads per query (`None` = all cores).
    pub threads_per_query: Option<usize>,
    /// Chaos injector applied to every build (self-chaos hook).
    pub chaos: Option<Arc<dyn FaultInjector>>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("addr", &self.addr)
            .field("max_active", &self.max_active)
            .field("max_waiting", &self.max_waiting)
            .field("mem_budget_bytes", &self.mem_budget_bytes)
            .field("chaos", &self.chaos.is_some())
            .finish_non_exhaustive()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_active: 8,
            max_waiting: 32,
            mem_budget_bytes: 256 * 1024 * 1024,
            read_timeout: Duration::from_secs(30),
            max_frame_bytes: 1 << 20,
            retry: RetryPolicy::default(),
            threads_per_query: None,
            chaos: None,
        }
    }
}

/// Monotonic counters, flushed as the final stats line on drain.
#[derive(Default, Debug)]
pub struct ServerStats {
    /// Accepted connections.
    pub connections: AtomicU64,
    /// Frames answered (success or error).
    pub queries: AtomicU64,
    /// Error frames sent.
    pub errors: AtomicU64,
    /// Queries shed by admission control.
    pub shed: AtomicU64,
    /// Queries that panicked (and were isolated).
    pub panics: AtomicU64,
    /// Connections dropped by the read timeout or oversize frames.
    pub bad_connections: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`] plus pool figures.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct StatsSnapshot {
    /// Accepted connections.
    pub connections: u64,
    /// Frames answered.
    pub queries: u64,
    /// Error frames sent.
    pub errors: u64,
    /// Queries shed by admission control.
    pub shed: u64,
    /// Queries that panicked.
    pub panics: u64,
    /// Connections dropped for protocol abuse.
    pub bad_connections: u64,
    /// Pool counters at snapshot time.
    pub pool: crate::pool::PoolStats,
}

/// Bounded admission: at most `max_active` running and `max_waiting`
/// queued queries; everyone else is shed.
struct Gate {
    max_active: usize,
    max_waiting: usize,
    state: Mutex<(usize, usize)>, // (active, waiting)
    cv: Condvar,
}

struct Permit<'a>(&'a Gate);

impl Gate {
    fn new(max_active: usize, max_waiting: usize) -> Self {
        Gate {
            max_active: max_active.max(1),
            max_waiting,
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    fn admit(&self) -> Result<Permit<'_>, ServeError> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.0 < self.max_active {
            state.0 += 1;
            return Ok(Permit(self));
        }
        if state.1 >= self.max_waiting {
            return Err(ServeError::Overloaded {
                retry_after_ms: DEFAULT_RETRY_AFTER_MS,
            });
        }
        state.1 += 1;
        while state.0 >= self.max_active {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.1 -= 1;
        state.0 += 1;
        Ok(Permit(self))
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.0 -= 1;
        drop(state);
        self.0.cv.notify_one();
    }
}

/// The daemon; see the module docs.
pub struct Server {
    listener: TcpListener,
    pool: Arc<SessionPool>,
    gate: Arc<Gate>,
    stats: Arc<ServerStats>,
    drain: &'static AtomicBool,
    read_timeout: Duration,
    max_frame_bytes: usize,
    threads_per_query: Option<usize>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener and assembles the daemon.
    ///
    /// # Errors
    ///
    /// I/O errors from binding `config.addr`.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let pool = Arc::new(SessionPool::new(
            config.mem_budget_bytes,
            config.retry,
            config.chaos.clone(),
        ));
        // Per-instance leaked flag: `RunBudget` carries `&'static
        // AtomicBool` so armed budgets stay `Copy` across worker fans.
        let drain: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        Ok(Server {
            listener,
            pool,
            gate: Arc::new(Gate::new(config.max_active, config.max_waiting)),
            stats: Arc::new(ServerStats::default()),
            drain,
            read_timeout: config.read_timeout,
            max_frame_bytes: config.max_frame_bytes,
            threads_per_query: config.threads_per_query,
        })
    }

    /// The bound address (port resolved).
    ///
    /// # Errors
    ///
    /// Propagates the socket's error, if any.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The drain flag: store `true` to initiate graceful shutdown.
    /// (The binary bridges SIGINT to this; tests call it directly.)
    #[must_use]
    pub fn drain_flag(&self) -> &'static AtomicBool {
        self.drain
    }

    /// The pool, for out-of-band inspection in tests.
    #[must_use]
    pub fn pool(&self) -> Arc<SessionPool> {
        Arc::clone(&self.pool)
    }

    /// Accepts and serves connections until the drain flag is set, then
    /// joins every connection thread and returns the final snapshot.
    pub fn run(self) -> StatsSnapshot {
        let mut handles = Vec::new();
        // Live connections, keyed by a connection id. Each connection
        // removes itself when it ends, so a finished connection's
        // socket closes immediately (the peer sees FIN) and a
        // long-running daemon does not accumulate dead FDs.
        let registry: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut next_id: u64 = 0;
        while !self.drain.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.stats.connections.fetch_add(1, Ordering::Relaxed);
                    let id = next_id;
                    next_id += 1;
                    if let Ok(clone) = stream.try_clone() {
                        registry
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .insert(id, clone);
                    }
                    let conn = ConnShared {
                        pool: Arc::clone(&self.pool),
                        gate: Arc::clone(&self.gate),
                        stats: Arc::clone(&self.stats),
                        drain: self.drain,
                        read_timeout: self.read_timeout,
                        max_frame_bytes: self.max_frame_bytes,
                        threads_per_query: self.threads_per_query,
                    };
                    let unregister = Unregister {
                        registry: Arc::clone(&registry),
                        id,
                    };
                    handles.push(std::thread::spawn(move || {
                        let _unregister = unregister;
                        conn.serve(stream);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
            handles.retain(|h| !h.is_finished());
        }
        // Drain: no new connections. Shutting down the read half of
        // every live connection unblocks threads parked in `read_until`
        // (they see EOF) without cutting off responses still being
        // written; in-flight builds stop at their next cooperative
        // budget checkpoint via the drain interrupt.
        for half in registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            let _ = half.shutdown(Shutdown::Read);
        }
        for handle in handles {
            let _ = handle.join();
        }
        StatsSnapshot {
            connections: self.stats.connections.load(Ordering::Relaxed),
            queries: self.stats.queries.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            panics: self.stats.panics.load(Ordering::Relaxed),
            bad_connections: self.stats.bad_connections.load(Ordering::Relaxed),
            pool: self.pool.stats(),
        }
    }
}

/// Drop guard removing a connection from the live registry when its
/// thread ends — by return or by unwind — so the socket's last clone is
/// dropped and the peer sees the connection close.
struct Unregister {
    registry: Arc<Mutex<HashMap<u64, TcpStream>>>,
    id: u64,
}

impl Drop for Unregister {
    fn drop(&mut self) {
        self.registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&self.id);
    }
}

struct ConnShared {
    pool: Arc<SessionPool>,
    gate: Arc<Gate>,
    stats: Arc<ServerStats>,
    drain: &'static AtomicBool,
    read_timeout: Duration,
    max_frame_bytes: usize,
    threads_per_query: Option<usize>,
}

impl ConnShared {
    fn serve(&self, stream: TcpStream) {
        if stream.set_read_timeout(Some(self.read_timeout)).is_err() {
            return;
        }
        // One frame per round-trip: Nagle+delayed-ACK would add ~40ms
        // to every response otherwise.
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let mut line = Vec::new();
        loop {
            line.clear();
            // Bounded read: at most max_frame_bytes+1 per frame; a frame
            // that fills the cap without a newline is protocol abuse.
            let mut limited = (&mut reader).take(self.max_frame_bytes as u64 + 1);
            match limited.read_until(b'\n', &mut line) {
                Ok(0) => return, // EOF
                Ok(_) if !line.ends_with(b"\n") && line.len() > self.max_frame_bytes => {
                    self.stats.bad_connections.fetch_add(1, Ordering::Relaxed);
                    let _ = Self::write_frame(
                        &mut writer,
                        &ServeError::BadFrame("frame too long".into()).to_frame(),
                    );
                    return;
                }
                Ok(_) if !line.ends_with(b"\n") => return, // EOF mid-line
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    // Slow-loris: the peer stalled mid-frame (or idled
                    // past the timeout); drop them.
                    self.stats.bad_connections.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(_) => return,
            }
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            let frame = self.answer(text);
            self.stats.queries.fetch_add(1, Ordering::Relaxed);
            if frame.get("ok") == Some(&Json::Bool(false)) {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            if Self::write_frame(&mut writer, &frame).is_err() {
                return;
            }
        }
    }

    /// One frame in, one frame out; never panics, never blocks forever.
    fn answer(&self, text: &str) -> Json {
        if self.drain.load(Ordering::Relaxed) {
            return ServeError::ShuttingDown.to_frame();
        }
        let request = match Request::from_line(text) {
            Ok(req) => req,
            Err(e) => return e.to_frame(),
        };
        let permit = match self.gate.admit() {
            Ok(permit) => permit,
            Err(e) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                return e.to_frame();
            }
        };
        // Re-check after possibly waiting in the admission queue.
        if self.drain.load(Ordering::Relaxed) {
            return ServeError::ShuttingDown.to_frame();
        }
        let ctx = QueryContext {
            pool: &self.pool,
            interrupt: Some(self.drain),
            threads: self.threads_per_query,
        };
        let result = catch_unwind(AssertUnwindSafe(|| execute(&request, &ctx)));
        drop(permit);
        match result {
            Ok(Ok(frame)) => frame,
            Ok(Err(e)) => e.to_frame(),
            Err(payload) => {
                self.stats.panics.fetch_add(1, Ordering::Relaxed);
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_owned());
                ServeError::Panic(message).to_frame()
            }
        }
    }

    fn write_frame(writer: &mut TcpStream, frame: &Json) -> std::io::Result<()> {
        let mut bytes = frame.to_line().into_bytes();
        bytes.push(b'\n');
        writer.write_all(&bytes)?;
        writer.flush()
    }
}

/// Renders a drained server's final stats, one `key=value` list — the
/// line the binary prints on exit.
#[must_use]
pub fn render_stats_line(snapshot: &StatsSnapshot) -> String {
    format!(
        "drained: connections={} queries={} errors={} shed={} panics={} bad_connections={} \
         pool_sessions={} pool_resident_bytes={} pool_hits={} pool_misses={} pool_evictions={} \
         pool_retries={}",
        snapshot.connections,
        snapshot.queries,
        snapshot.errors,
        snapshot.shed,
        snapshot.panics,
        snapshot.bad_connections,
        snapshot.pool.sessions,
        snapshot.pool.resident_bytes,
        snapshot.pool.hits,
        snapshot.pool.misses,
        snapshot.pool.evictions,
        snapshot.pool.retries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_up_to_active_and_sheds_past_waiting() {
        let gate = Gate::new(1, 0);
        let first = gate.admit().expect("first query fits");
        let second = gate.admit();
        assert!(matches!(
            second,
            Err(ServeError::Overloaded { retry_after_ms: _ })
        ));
        drop(first);
        assert!(gate.admit().is_ok(), "slot frees on drop");
    }

    #[test]
    fn gate_queues_waiters_and_wakes_them() {
        let gate = Arc::new(Gate::new(1, 4));
        let first = gate.admit().unwrap();
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || {
            let permit = g2.admit();
            assert!(permit.is_ok());
        });
        // Give the waiter time to enqueue, then free the slot.
        std::thread::sleep(Duration::from_millis(50));
        drop(first);
        waiter.join().unwrap();
    }

    #[test]
    fn stats_line_is_complete() {
        let line = render_stats_line(&StatsSnapshot::default());
        for key in [
            "connections=",
            "queries=",
            "shed=",
            "panics=",
            "pool_resident_bytes=",
        ] {
            assert!(line.contains(key), "{line}");
        }
    }
}
