//! 0-chains and the `∃0*` predicate (Section 6.2).
//!
//! In the omission failure mode there is no bound on when a processor can
//! first learn `∃0`, so the paper's terminating omission-mode EBA protocol
//! accepts a 0 only when it arrives through a *0-chain*: a 0-chain exists
//! at point `(r, m)` iff there are `m` **distinct** processors
//! `i_1, …, i_m` such that `i_1` has initial value 0, `i_{k+1}` received a
//! message from `i_k` in round `k` while not believing `i_k` faulty
//! (`¬B^N_{i_{k+1}}(i_k ∉ N)` at `(r, k)`), and `i_m` is nonfaulty
//! (cf. \[DS82\]). `∃0*` holds at `(r, m)` iff a 0-chain exists at some
//! `(r, m′)` with `m′ ≤ m`.

use eba_kripke::{Bitset, Evaluator, Formula, NonRigidSet};
use eba_model::{ProcessorId, Round, Time};
use std::sync::Arc;

/// Computes the `∃0*` predicate over every point of the evaluator's
/// system, as a [`Bitset`] indexed by linear point index (register it
/// with [`Evaluator::register_point_pred`] to use it in formulas).
///
/// The "not known faulty" side-condition of each chain link is a genuine
/// knowledge test and is evaluated exactly on the generated system.
///
/// # Panics
///
/// Panics if the system has more than 16 processors (the chain search
/// enumerates processor subsets).
#[must_use]
pub fn exists_zero_star(eval: &mut Evaluator<'_>) -> Bitset {
    let system = eval.system();
    let n = system.n();
    assert!(
        n <= 16,
        "0-chain search is exponential in n; n ≤ 16 required"
    );
    let horizon = system.horizon();

    // knows_faulty[receiver][sender]: points where B^N_receiver(sender ∉ N).
    let knows_faulty: Vec<Vec<Arc<Bitset>>> = (0..n)
        .map(|j| {
            (0..n)
                .map(|i| {
                    let f = Formula::Nonfaulty(ProcessorId::new(i))
                        .not()
                        .believed_by(ProcessorId::new(j), NonRigidSet::Nonfaulty);
                    eval.eval(&f)
                })
                .collect()
        })
        .collect();

    let system = eval.system();
    let mut out = Bitset::new_false(eval.num_points());
    let masks = 1usize << n;

    for run in system.run_ids() {
        let record = system.run(run);
        // alive[e * masks + mask]: a chain of |mask| distinct processors
        // ending at `e` with used-set `mask` is consistent with the run so
        // far (links verified through round |mask| − 1).
        let mut alive = vec![false; n * masks];
        for i in 0..n {
            if record.config.value(ProcessorId::new(i)) == eba_model::Value::Zero {
                alive[i * masks + (1 << i)] = true;
            }
        }

        let mut chain_seen = false;
        for time in Time::upto(horizon) {
            let m = time.index();
            if m == 0 {
                // A 0-chain needs at least one processor; none exists at
                // time 0.
                continue;
            }
            // A chain of exactly m processors exists at (r, m) iff some
            // alive chain of length m ends at a nonfaulty processor.
            for e in record.nonfaulty {
                for mask in 0..masks {
                    if (mask.count_ones() as usize) == m && alive[e.index() * masks + mask] {
                        chain_seen = true;
                    }
                }
            }
            if chain_seen {
                out.set(eval.point_index(run, time), true);
            }

            // Extend chains of length m to length m + 1 via round m:
            // i_{m+1} receives from i_m in round m and does not believe
            // i_m faulty at (r, m).
            if time < horizon {
                let round = Round::new(m as u16);
                let point = eval.point_index(run, time);
                let mut next = vec![false; n * masks];
                for e in 0..n {
                    for mask in 0..masks {
                        if (mask.count_ones() as usize) != m || !alive[e * masks + mask] {
                            continue;
                        }
                        for e2 in 0..n {
                            if mask >> e2 & 1 == 1 {
                                continue;
                            }
                            let sender = ProcessorId::new(e);
                            let receiver = ProcessorId::new(e2);
                            if !record.pattern.delivers(sender, receiver, round) {
                                continue;
                            }
                            if knows_faulty[e2][e].get(point) {
                                continue;
                            }
                            next[e2 * masks + (mask | 1 << e2)] = true;
                        }
                    }
                }
                // Chains of length ≤ m stay alive alongside the new ones
                // (they may still witness ∃0* at their own length, which
                // `chain_seen` has already latched).
                alive = next;
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{sample, FailureMode, FailurePattern, InitialConfig, Scenario, Value};
    use eba_sim::GeneratedSystem;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    fn omission_system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    #[test]
    fn never_holds_at_time_zero() {
        let system = omission_system();
        let mut eval = Evaluator::new(&system);
        let star = exists_zero_star(&mut eval);
        for run in system.run_ids() {
            assert!(!star.get(eval.point_index(run, Time::ZERO)));
        }
    }

    #[test]
    fn nonfaulty_zero_holder_gives_chain_at_time_one() {
        let system = omission_system();
        let mut eval = Evaluator::new(&system);
        let star = exists_zero_star(&mut eval);
        let run = system
            .find_run(
                &InitialConfig::from_bits(3, 0b110),
                &FailurePattern::failure_free(3),
            )
            .unwrap();
        assert!(star.get(eval.point_index(run, Time::new(1))));
        // Monotone in time.
        assert!(star.get(eval.point_index(run, Time::new(2))));
    }

    #[test]
    fn no_zero_no_chain() {
        let system = omission_system();
        let mut eval = Evaluator::new(&system);
        let star = exists_zero_star(&mut eval);
        for run in system.run_ids() {
            if !system.run(run).config.exists(Value::Zero) {
                for time in Time::upto(system.horizon()) {
                    assert!(!star.get(eval.point_index(run, time)));
                }
            }
        }
    }

    #[test]
    fn silent_faulty_zero_holder_blocks_the_chain() {
        // p0 holds the only 0 but is silent from round 1 (faulty): no
        // message carries the 0, so no 0-chain ever forms.
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        let mut eval = Evaluator::new(&system);
        let star = exists_zero_star(&mut eval);
        let pattern = sample::silent_processor(&scenario, p(0));
        let run = system
            .find_run(&InitialConfig::from_bits(3, 0b110), &pattern)
            .unwrap();
        for time in Time::upto(system.horizon()) {
            assert!(
                !star.get(eval.point_index(run, time)),
                "unexpected 0-chain at {time}"
            );
        }
    }

    #[test]
    fn faulty_zero_holder_that_speaks_starts_a_chain() {
        // p0 holds 0, is faulty but delivers its round-1 message to p1:
        // the chain p0 → p1 exists at time 2 (p1 nonfaulty, and p1 does
        // not know p0 is faulty at time 1).
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        let mut eval = Evaluator::new(&system);
        let star = exists_zero_star(&mut eval);
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            eba_model::FaultyBehavior::Omission {
                omissions: vec![
                    eba_model::ProcSet::singleton(p(2)),
                    eba_model::ProcSet::full(3) - eba_model::ProcSet::singleton(p(0)),
                ],
            },
        );
        let run = system
            .find_run(&InitialConfig::from_bits(3, 0b110), &pattern)
            .unwrap();
        // At time 1 the chain [p0] fails (p0 faulty); but [p0 → p1] is a
        // valid chain of length 2 at time 2.
        assert!(!star.get(eval.point_index(run, Time::new(1))));
        assert!(star.get(eval.point_index(run, Time::new(2))));
    }
}
