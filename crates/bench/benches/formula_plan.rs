//! PR 3 companion: recursive evaluation vs compiled plans on
//! repeated-formula workloads — the gfp fixpoint (where every iteration
//! re-evaluates `E_S(φ ∧ X)`) and the optimality sweep (where the
//! constructor evaluates the same decision formulas over and over).
//!
//! Both sides share one warm [`KnowledgeCache`] per scenario so
//! reachability (identical on either path) is amortized away and the
//! measured delta is the evaluation pipeline itself: CSR knowledge
//! kernels + word-level set algebra + native `GfpIter` iteration versus
//! formula re-construction and recursive descent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_core::{Constructor, DecisionPair};
use eba_kripke::{fixpoint, Evaluator, Formula, KnowledgeCache, NonRigidSet};
use eba_model::{FailureMode, Scenario, Value};
use eba_sim::GeneratedSystem;
use std::hint::black_box;

/// The scenario spaces under test: two exhaustive spaces and the n=5,
/// t=2 sampled space from the acceptance criteria.
fn systems() -> Vec<(String, GeneratedSystem)> {
    let mut out = Vec::new();
    for scenario in [
        Scenario::new(3, 1, FailureMode::Crash, 3).expect("valid scenario"),
        Scenario::new(3, 1, FailureMode::Omission, 2).expect("valid scenario"),
    ] {
        out.push((scenario.to_string(), GeneratedSystem::exhaustive(&scenario)));
    }
    let big = Scenario::new(5, 2, FailureMode::Crash, 3).expect("valid scenario");
    out.push((
        format!("{big} (sampled)"),
        GeneratedSystem::sampled(&big, 400, 0xEBA),
    ));
    out
}

/// A fresh evaluator per iteration (empty formula cache, so evaluation
/// is actually performed) backed by a warm shared reachability cache.
fn evaluator<'a>(system: &'a GeneratedSystem, cache: &KnowledgeCache, plan: bool) -> Evaluator<'a> {
    let mut eval = Evaluator::with_cache(system, cache.clone());
    eval.set_plan_mode(plan);
    eval
}

fn gfp_fixpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("formula_plan_gfp");
    for (label, system) in systems() {
        let phi = Formula::exists(Value::Zero);
        let cache = KnowledgeCache::new();
        // Warm the shared reachability cache once for both sides.
        fixpoint::continual_common_by_gfp(
            &mut evaluator(&system, &cache, true),
            NonRigidSet::Nonfaulty,
            &phi,
        );
        for (mode, plan) in [("recursive", false), ("compiled", true)] {
            group.bench_with_input(BenchmarkId::new(mode, &label), &system, |b, system| {
                b.iter(|| {
                    let mut eval = evaluator(system, &cache, plan);
                    black_box(fixpoint::continual_common_by_gfp(
                        &mut eval,
                        NonRigidSet::Nonfaulty,
                        &phi,
                    ));
                });
            });
        }
    }
    group.finish();
}

fn optimality_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("formula_plan_optimize");
    group.sample_size(10);
    for (label, system) in systems() {
        let cache = KnowledgeCache::new();
        evaluator(&system, &cache, true)
            .eval(&Formula::exists(Value::Zero).continual_common(NonRigidSet::Nonfaulty));
        for (mode, plan) in [("recursive", false), ("compiled", true)] {
            group.bench_with_input(BenchmarkId::new(mode, &label), &system, |b, system| {
                b.iter(|| {
                    let mut ctor = Constructor::with_cache(system, cache.clone());
                    ctor.evaluator().set_plan_mode(plan);
                    black_box(ctor.optimize(&DecisionPair::empty(system.n())));
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = gfp_fixpoint, optimality_sweep
}
criterion_main!(benches);
