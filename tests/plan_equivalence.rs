//! Differential suite for the compiled evaluation plans: on random
//! formulas and across scenario spaces, the plan pipeline (CSR knowledge
//! kernels, word-level `E_S`/`S_S`, native gfp iteration) must produce
//! **bit-identical** extensions to the recursive reference evaluator —
//! including on chaos-supervised reachability and on budget-partial
//! systems.

use eba::prelude::*;
use eba_kripke::{fixpoint, BatchBuilder, Reachability};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn crash_system() -> &'static GeneratedSystem {
    static SYSTEM: OnceLock<GeneratedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    })
}

fn omission_system() -> &'static GeneratedSystem {
    static SYSTEM: OnceLock<GeneratedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let scenario = Scenario::new(3, 1, FailureMode::Omission, 2).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    })
}

/// A sampled (non-exhaustive) scenario space: the plan kernels must not
/// assume anything about which runs are present.
fn sampled_system() -> &'static GeneratedSystem {
    static SYSTEM: OnceLock<GeneratedSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let scenario = Scenario::new(4, 1, FailureMode::Crash, 3).unwrap();
        GeneratedSystem::sampled(&scenario, 120, 0xEBA)
    })
}

/// A generator of epistemic-temporal formulas over 3 processors (no
/// registered ids, so formulas are portable across evaluators).
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        Just(Formula::exists(Value::Zero)),
        Just(Formula::exists(Value::One)),
        (0usize..3, prop_oneof![Just(Value::Zero), Just(Value::One)])
            .prop_map(|(i, v)| Formula::Initial(ProcessorId::new(i), v)),
        (0usize..3).prop_map(|i| Formula::Nonfaulty(ProcessorId::new(i))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (0usize..3, inner.clone()).prop_map(|(i, f)| f.known_by(ProcessorId::new(i))),
            (0usize..3, inner.clone())
                .prop_map(|(i, f)| { f.believed_by(ProcessorId::new(i), NonRigidSet::Nonfaulty) }),
            inner
                .clone()
                .prop_map(|f| f.everyone(NonRigidSet::Nonfaulty)),
            inner
                .clone()
                .prop_map(|f| f.someone(NonRigidSet::Nonfaulty)),
            inner
                .clone()
                .prop_map(|f| f.distributed(NonRigidSet::Nonfaulty)),
            inner.clone().prop_map(|f| f.common(NonRigidSet::Nonfaulty)),
            inner
                .clone()
                .prop_map(|f| f.continual_common(NonRigidSet::Nonfaulty)),
            inner.clone().prop_map(Formula::always),
            inner.clone().prop_map(Formula::eventually),
            inner.clone().prop_map(Formula::always_all),
            inner.prop_map(Formula::sometime_all),
        ]
    })
}

/// Evaluates `phi` twice over `system` — compiled plan vs recursive
/// oracle — and asserts the extensions are bit-identical.
fn assert_plan_matches_oracle(
    system: &GeneratedSystem,
    phi: &Formula,
    label: &str,
) -> Result<(), TestCaseError> {
    let mut compiled = Evaluator::new(system);
    let mut oracle = Evaluator::new(system);
    oracle.set_plan_mode(false);
    prop_assert!(compiled.plan_mode(), "plan mode must be the default");
    let via_plan = compiled.eval(phi);
    let via_rec = oracle.eval(phi);
    prop_assert_eq!(
        &*via_plan,
        &*via_rec,
        "compiled plan and recursive oracle disagree on {} over {}",
        phi,
        label
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Core differential property: on random formulas, plan extensions
    /// equal the recursive evaluator's on exhaustive crash and omission
    /// systems and on a sampled scenario space.
    #[test]
    fn plan_matches_recursive_oracle(
        phi in formula_strategy(),
        which in 0usize..3,
    ) {
        let (system, label) = match which {
            0 => (crash_system(), "crash (exhaustive)"),
            1 => (omission_system(), "omission (exhaustive)"),
            _ => (sampled_system(), "crash (sampled)"),
        };
        assert_plan_matches_oracle(system, &phi, label)?;
    }

    /// The native `GfpIter` loop (plan mode) matches the formula-iteration
    /// loop (recursive mode) in result *and* iteration count, for both
    /// `C_S` and `C□_S`.
    #[test]
    fn gfp_kernel_matches_formula_iteration(
        phi in formula_strategy(),
        crash in proptest::bool::ANY,
        continual in proptest::bool::ANY,
    ) {
        let system = if crash { crash_system() } else { omission_system() };
        let mut plan_eval = Evaluator::new(system);
        let mut rec_eval = Evaluator::new(system);
        rec_eval.set_plan_mode(false);
        let s = NonRigidSet::Nonfaulty;
        let ((a, ia), (b, ib)) = if continual {
            (
                fixpoint::continual_common_by_gfp(&mut plan_eval, s, &phi),
                fixpoint::continual_common_by_gfp(&mut rec_eval, s, &phi),
            )
        } else {
            (
                fixpoint::common_by_gfp(&mut plan_eval, s, &phi),
                fixpoint::common_by_gfp(&mut rec_eval, s, &phi),
            )
        };
        prop_assert_eq!(&a, &b, "gfp engines disagree on {}", &phi);
        prop_assert_eq!(ia, ib, "gfp iteration counts diverge on {}", &phi);
    }
}

/// A pseudo-random state-set family over `system`'s view table, derived
/// deterministically from `seed` (splitmix64 per `(processor, view)`), so
/// the same seed registers the same family on any evaluator.
fn random_family(system: &GeneratedSystem, seed: u64, keep_mod: u64) -> StateSets {
    let n = system.n();
    let mut family = StateSets::empty(n);
    for p in ProcessorId::all(n) {
        for (k, v) in system.table().ids().enumerate() {
            let mut x = seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(1 + k as u64))
                .wrapping_add(0x1000_0000 * p.index() as u64);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            if x.is_multiple_of(keep_mod) {
                family.insert(p, v);
            }
        }
    }
    family
}

/// Asserts two reachability structures agree bit for bit: point
/// components (and their count), per-point members, run components, and
/// the `S`-emptiness mask.
fn assert_reach_identical(
    system: &GeneratedSystem,
    want: &Reachability,
    got: &Reachability,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        want.num_point_components(),
        got.num_point_components(),
        "component counts diverge under {}",
        label
    );
    for idx in 0..system.num_points() {
        prop_assert_eq!(
            want.point_component(idx),
            got.point_component(idx),
            "component of point {} diverges under {}",
            idx,
            label
        );
        prop_assert_eq!(want.members(idx), got.members(idx));
    }
    for run in system.run_ids() {
        prop_assert_eq!(
            want.run_component(run),
            got.run_component(run),
            "run component of {} diverges under {}",
            run.index(),
            label
        );
        prop_assert_eq!(want.run_has_s_points(run), got.run_has_s_points(run));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batched reachability differential: random nonrigid-set families
    /// resolved by one `BatchBuilder` sweep produce components, run
    /// projections, *and* scope columns bit-identical to the per-set
    /// path's, across the three scenario spaces.
    #[test]
    fn batched_reachability_matches_per_set_path(
        seed in proptest::num::u64::ANY,
        keep_mod in 1u64..5,
        which in 0usize..3,
    ) {
        let (system, label) = match which {
            0 => (crash_system(), "crash (exhaustive)"),
            1 => (omission_system(), "omission (exhaustive)"),
            _ => (sampled_system(), "crash (sampled)"),
        };
        let mut batched = Evaluator::new(system);
        let mut per_set = Evaluator::new(system);
        per_set.set_batch_mode(false);
        let fam_a = random_family(system, seed, keep_mod);
        let fam_b = random_family(system, seed ^ 0xABCD, keep_mod);
        let a = batched.register_state_sets(fam_a.clone());
        let b = batched.register_state_sets(fam_b.clone());
        prop_assert_eq!(a, per_set.register_state_sets(fam_a));
        prop_assert_eq!(b, per_set.register_state_sets(fam_b));
        let family = [
            NonRigidSet::Everyone,
            NonRigidSet::Nonfaulty,
            NonRigidSet::NonfaultyAnd(a),
            NonRigidSet::NonfaultyAnd(b),
        ];
        // One sweep serves every reachability *and* scope request.
        let mut batch = BatchBuilder::new();
        for &s in &family {
            batch.request_reachability(s);
            batch.request_scopes(s);
        }
        batch.run(&mut batched);
        for &s in &family {
            let got = batched.reachability(s);
            let want = per_set.reachability(s);
            assert_reach_identical(system, &want, &got, &format!("{s:?} over {label}"))?;
            prop_assert_eq!(
                &*per_set.scope_columns(s),
                &*batched.scope_columns(s),
                "scope columns diverge under {:?} over {}",
                s,
                label
            );
        }
    }

}

/// Scope-column interning: nonrigid sets with *distinct* content keys but
/// identical membership vectors share one `Arc` in the shared cache, and
/// the dedup is visible in the cache counters. `N ∧ A` with `A` the full
/// view table resolves to exactly `N`'s membership — the `N − F(r, t)`
/// shape crash/omission sweeps keep rebuilding.
#[test]
fn interned_scope_columns_dedup_identical_memberships() {
    let system = crash_system();
    let mut eval = Evaluator::new(system);
    // Every view for every processor: the `A_i` test is vacuous.
    let full = random_family(system, 0, 1);
    let id = eval.register_state_sets(full);
    let col_n = eval.scope_columns(NonRigidSet::Nonfaulty);
    let col_full = eval.scope_columns(NonRigidSet::NonfaultyAnd(id));
    assert!(
        Arc::ptr_eq(&col_n, &col_full),
        "identical membership vectors must intern to one Arc"
    );
    let stats = eval.knowledge_cache().stats();
    assert!(
        stats.scope_deduped >= 1,
        "dedup counter must record the hit"
    );
    assert!(stats.scope_interned >= 1);
}

/// Chaos supervision must stay invisible to the batched sweep: with a
/// panic injected into a parallel edge-collection worker, the batch still
/// produces the per-set path's exact structures.
#[test]
fn batched_reachability_matches_per_set_under_chaos() {
    use eba_sim::chaos::{ChaosPlan, FaultInjector, FaultKind, FaultSite};
    // Big enough that the batch sweep fans out to the supervised worker
    // pool, so the injected panic lands in a worker.
    let scenario = Scenario::new(3, 2, FailureMode::Crash, 3).unwrap();
    let system = GeneratedSystem::exhaustive(&scenario);

    let mut per_set = Evaluator::new(&system);
    per_set.set_batch_mode(false);
    per_set.set_threads(1);

    let chaos =
        Arc::new(ChaosPlan::new().with_fault(FaultSite::ReachabilityWorker, 0, FaultKind::Panic));
    let mut batched = Evaluator::new(&system);
    batched.set_threads(4);
    batched.set_chaos(Arc::clone(&chaos) as Arc<dyn FaultInjector>);

    let family = [NonRigidSet::Everyone, NonRigidSet::Nonfaulty];
    let got = batched.reachability_batch(&family);
    assert_eq!(chaos.fired(), 1, "the planned worker panic must have fired");
    for (&s, got) in family.iter().zip(got) {
        let want = per_set.reachability(s);
        assert_reach_identical(&system, &want, &got, &format!("{s:?} under chaos")).unwrap();
    }
}

/// Budget-partial systems: the batched sweep over a prefix-of-shards
/// system agrees with the per-set path on every requested set.
#[test]
fn batched_reachability_matches_per_set_on_budget_partial_system() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    let outcome = SystemBuilder::new(&scenario)
        .threads(2)
        .shards(8)
        .budget(RunBudget::unlimited().with_max_runs(40))
        .build_governed()
        .expect("governed build failed");
    let system = match outcome {
        BuildOutcome::Partial { system, .. } => system,
        BuildOutcome::Complete { .. } => {
            panic!("max-runs budget should have cut the build short")
        }
    };
    assert!(system.num_runs() > 0, "need a nonempty partial prefix");

    let mut batched = Evaluator::new(&system);
    let mut per_set = Evaluator::new(&system);
    per_set.set_batch_mode(false);
    let fam = random_family(&system, 0xEBA, 2);
    let a = batched.register_state_sets(fam.clone());
    assert_eq!(a, per_set.register_state_sets(fam));
    let family = [
        NonRigidSet::Everyone,
        NonRigidSet::Nonfaulty,
        NonRigidSet::NonfaultyAnd(a),
    ];
    let got = batched.reachability_batch(&family);
    for (&s, got) in family.iter().zip(got) {
        let want = per_set.reachability(s);
        assert_reach_identical(&system, &want, &got, &format!("{s:?} on partial system")).unwrap();
        assert_eq!(
            *per_set.scope_columns(s),
            *batched.scope_columns(s),
            "scope columns diverge under {s:?} on the partial system"
        );
    }
}

/// The optimization pipeline must produce the *same decision sets* either
/// way: `optimize` under plans equals `optimize` under the recursive
/// evaluator, down to the per-view decision tables.
#[test]
fn construction_decision_vectors_agree() {
    let system = crash_system();
    let bases = [
        DecisionPair::empty(3),
        eba_core::protocols::crash_rule(&mut Constructor::new(system)),
    ];
    for base in bases {
        let mut plan_ctor = Constructor::new(system);
        assert!(plan_ctor.evaluator().plan_mode());
        let mut rec_ctor = Constructor::new(system);
        rec_ctor.evaluator().set_plan_mode(false);
        let optimized_plan = plan_ctor.optimize(&base);
        let optimized_rec = rec_ctor.optimize(&base);
        assert_eq!(
            optimized_plan, optimized_rec,
            "optimized decision pairs diverge between plan and recursive evaluation"
        );
        // And the run-level decision vectors they induce.
        let d_plan = FipDecisions::compute(system, &optimized_plan, "plan");
        let d_rec = FipDecisions::compute(system, &optimized_rec, "recursive");
        for r in system.run_ids() {
            for i in ProcessorId::all(3) {
                let a = d_plan.decision(r, i).map(|d| (d.time, d.value));
                let b = d_rec.decision(r, i).map(|d| (d.time, d.value));
                assert_eq!(a, b, "decision of {i} in run {} diverges", r.index());
            }
        }
    }
}

/// Chaos supervision must stay invisible to the plan pipeline: with a
/// fault injected into a reachability worker, plan-mode evaluation still
/// matches a fault-free recursive oracle bit for bit.
#[test]
fn plan_matches_oracle_under_chaos_supervision() {
    use eba_sim::chaos::{ChaosPlan, FaultInjector, FaultKind, FaultSite};
    use std::sync::Arc;
    // Big enough that reachability edge collection fans out to the
    // supervised worker pool, so the injected panic lands in a worker.
    let scenario = Scenario::new(3, 2, FailureMode::Crash, 3).unwrap();
    let system = GeneratedSystem::exhaustive(&scenario);
    let phi = Formula::exists(Value::Zero);
    let formula = phi
        .clone()
        .continual_common(NonRigidSet::Nonfaulty)
        .or(phi.common(NonRigidSet::Everyone).not());

    let mut oracle = Evaluator::new(&system);
    oracle.set_plan_mode(false);
    oracle.set_threads(1);
    let want = oracle.eval(&formula);

    let chaos =
        Arc::new(ChaosPlan::new().with_fault(FaultSite::ReachabilityWorker, 0, FaultKind::Panic));
    let mut chaotic = Evaluator::new(&system);
    chaotic.set_threads(4);
    chaotic.set_chaos(Arc::clone(&chaos) as Arc<dyn FaultInjector>);
    let got = chaotic.eval(&formula);
    assert_eq!(chaos.fired(), 1, "the planned worker panic must have fired");
    assert_eq!(*got, *want, "chaos recovery changed a plan-mode extension");
}

/// Budget-partial systems (prefix of shards) still build their point
/// store, and plan extensions on them equal the recursive oracle's.
#[test]
fn plan_matches_oracle_on_budget_partial_system() {
    let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
    let outcome = SystemBuilder::new(&scenario)
        .threads(2)
        .shards(8)
        .budget(RunBudget::unlimited().with_max_runs(40))
        .build_governed()
        .expect("governed build failed");
    let system = match outcome {
        BuildOutcome::Partial { system, .. } => system,
        BuildOutcome::Complete { .. } => {
            panic!("max-runs budget should have cut the build short")
        }
    };
    assert!(system.num_runs() > 0, "need a nonempty partial prefix");
    let store = system.points();
    assert_eq!(store.num_points(), system.num_points());

    let phi = Formula::exists(Value::One);
    for formula in [
        phi.clone().everyone(NonRigidSet::Nonfaulty),
        phi.clone().common(NonRigidSet::Nonfaulty),
        phi.clone().continual_common(NonRigidSet::Nonfaulty).not(),
        phi.clone().distributed(NonRigidSet::Everyone).eventually(),
    ] {
        let mut compiled = Evaluator::new(&system);
        let mut oracle = Evaluator::new(&system);
        oracle.set_plan_mode(false);
        assert_eq!(
            *compiled.eval(&formula),
            *oracle.eval(&formula),
            "partial-system extensions diverge on {formula}"
        );
    }
}
