//! The optimality characterization of Theorem 5.3.

use crate::{Constructor, DecisionPair};
use eba_kripke::{BatchBuilder, Formula, NonRigidSet, StateSetsId};
use eba_model::{ProcessorId, Time, Value};
use eba_sim::RunId;
use std::fmt;

/// The result of checking one direction of Theorem 5.3's characterization
/// for one processor and decided value.
#[derive(Clone, Debug)]
pub struct ConditionCheck {
    /// The processor whose decision rule was checked.
    pub proc: ProcessorId,
    /// The decided value whose condition was checked.
    pub value: Value,
    /// Whether the biconditional held at every point.
    pub holds: bool,
    /// A failing point, when it did not.
    pub counterexample: Option<(RunId, Time)>,
}

/// The outcome of the Theorem 5.3 optimality check over a full decision
/// pair: a full-information nontrivial agreement protocol `FIP(Z, O)` is
/// **optimal** iff for every nonfaulty processor `i`:
///
/// * `decide_i(0) ⇔ B^N_i(∃0 ∧ C□_{N∧O} ∃0 ∧ ¬decide_i(1))`, and
/// * `decide_i(1) ⇔ B^N_i(∃1 ∧ C□_{N∧Z} ∃1 ∧ ¬decide_i(0))`.
#[derive(Clone, Debug)]
pub struct OptimalityReport {
    /// Per-processor, per-value condition checks.
    pub checks: Vec<ConditionCheck>,
}

impl OptimalityReport {
    /// Whether every condition held — i.e. the protocol is optimal.
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        self.checks.iter().all(|c| c.holds)
    }

    /// The failed checks.
    #[must_use]
    pub fn failures(&self) -> Vec<&ConditionCheck> {
        self.checks.iter().filter(|c| !c.holds).collect()
    }
}

impl fmt::Display for OptimalityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_optimal() {
            write!(f, "optimal ({} conditions verified)", self.checks.len())
        } else {
            write!(
                f,
                "NOT optimal ({}/{} conditions failed)",
                self.failures().len(),
                self.checks.len()
            )
        }
    }
}

/// Checks the Theorem 5.3 characterization for `FIP(Z, O)` over the
/// constructor's system.
///
/// `decide_i(y)` is interpreted as membership of `i`'s current state in
/// the corresponding decision set — exact for the cumulative decision
/// sets produced by the constructions of Section 5 (once a processor's
/// state enters such a set, all its later states are in it too).
///
/// # Example
///
/// ```
/// use eba_core::{check_optimality, Constructor, DecisionPair};
/// use eba_model::{FailureMode, Scenario};
/// use eba_sim::GeneratedSystem;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 3)?;
/// let system = GeneratedSystem::exhaustive(&scenario);
/// let mut ctor = Constructor::new(&system);
/// let f2 = ctor.optimize(&DecisionPair::empty(3));
/// assert!(check_optimality(&mut ctor, &f2).is_optimal());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn check_optimality(ctor: &mut Constructor<'_>, pair: &DecisionPair) -> OptimalityReport {
    let n = ctor.system().n();
    let (z_id, o_id) = {
        let eval = ctor.evaluator();
        (
            eval.register_state_sets(pair.zero().clone()),
            eval.register_state_sets(pair.one().clone()),
        )
    };
    {
        // Both C□ closures and every B^N_i below draw on three nonrigid
        // sets; resolve them in one batched traversal instead of three.
        let eval = ctor.evaluator();
        if eval.plan_mode() && eval.batch_mode() {
            let mut batch = BatchBuilder::new();
            batch.request_reachability(NonRigidSet::NonfaultyAnd(o_id));
            batch.request_reachability(NonRigidSet::NonfaultyAnd(z_id));
            batch.request_scopes(NonRigidSet::Nonfaulty);
            batch.run(eval);
        }
    }
    let c0 = Formula::exists(Value::Zero).continual_common(NonRigidSet::NonfaultyAnd(o_id));
    let c1 = Formula::exists(Value::One).continual_common(NonRigidSet::NonfaultyAnd(z_id));

    if ctor.system().symmetry().is_some() {
        return check_optimality_quotient(ctor, n, z_id, o_id, &c0, &c1);
    }

    let mut checks = Vec::with_capacity(2 * n);
    for i in ProcessorId::all(n) {
        let decide0 = Formula::StateIn(i, z_id);
        let decide1 = Formula::StateIn(i, o_id);

        // decide_i(0) ⇔ B^N_i(∃0 ∧ C□_{N∧O}∃0 ∧ ¬decide_i(1)).
        let rhs0 = Formula::exists(Value::Zero)
            .and(c0.clone())
            .and(decide1.clone().not())
            .believed_by(i, NonRigidSet::Nonfaulty);
        let cond0 = Formula::Nonfaulty(i).implies(decide0.clone().iff(rhs0));

        // decide_i(1) ⇔ B^N_i(∃1 ∧ C□_{N∧Z}∃1 ∧ ¬decide_i(0)).
        let rhs1 = Formula::exists(Value::One)
            .and(c1.clone())
            .and(decide0.clone().not())
            .believed_by(i, NonRigidSet::Nonfaulty);
        let cond1 = Formula::Nonfaulty(i).implies(decide1.iff(rhs1));

        for (value, cond) in [(Value::Zero, cond0), (Value::One, cond1)] {
            let counterexample = ctor.evaluator().counterexample(&cond);
            checks.push(ConditionCheck {
                proc: i,
                value,
                holds: counterexample.is_none(),
                counterexample,
            });
        }
    }
    OptimalityReport { checks }
}

/// The Theorem 5.3 check over a symmetry-quotiented system.
///
/// The per-processor conditions are *equivariant*, not symmetric:
/// relabeling by `σ` maps processor `i`'s condition onto `σ(i)`'s. Two
/// consequences (DESIGN.md §4i):
///
/// * the belief kernels must be twisted family-wise — processor `q`'s
///   view at a falsifying point is checked against `ψ_q`, not `ψ_i` —
///   which is what [`eba_kripke::Evaluator::family_believes`] computes;
/// * full-system validity of any one processor's condition is the
///   conjunction over the *whole family* of representative-validity, so
///   the per-processor verdicts coincide. A check whose own condition
///   holds on representatives but whose family fails reports the first
///   failing member's representative counterexample (the full-system
///   failing point for `i` is a relabeling of it).
fn check_optimality_quotient(
    ctor: &mut Constructor<'_>,
    n: usize,
    z_id: StateSetsId,
    o_id: StateSetsId,
    c0: &Formula,
    c1: &Formula,
) -> OptimalityReport {
    type FamilyFailures = Vec<Option<(RunId, Time)>>;
    let mut per_value: Vec<(Value, FamilyFailures)> = Vec::with_capacity(2);
    for (value, decide_id, other_id, closure) in
        [(Value::Zero, z_id, o_id, c0), (Value::One, o_id, z_id, c1)]
    {
        let psi: Vec<Formula> = ProcessorId::all(n)
            .map(|j| {
                Formula::exists(value)
                    .and(closure.clone())
                    .and(Formula::StateIn(j, other_id).not())
            })
            .collect();
        let eval = ctor.evaluator();
        let believes = eval.family_believes(NonRigidSet::Nonfaulty, &psi);
        let fails: Vec<Option<(RunId, Time)>> = ProcessorId::all(n)
            .zip(&believes)
            .map(|(j, b)| {
                // Nonfaulty(j) ⇒ (StateIn(j, decide) ⇔ B^N_j ψ_j),
                // folded on bitsets: a violation is an in-scope point
                // where exactly one side holds.
                let lhs = eval.eval(&Formula::StateIn(j, decide_id));
                let nf = eval.eval(&Formula::Nonfaulty(j));
                let mut bad = (*lhs).clone();
                bad.and_not(b);
                let mut missing = b.clone();
                missing.and_not(&lhs);
                bad |= &missing;
                bad &= &nf;
                let first = bad.ones().next();
                first.map(|idx| eval.point_of(idx))
            })
            .collect();
        per_value.push((value, fails));
    }
    let mut checks = Vec::with_capacity(2 * n);
    for i in ProcessorId::all(n) {
        for (value, fails) in &per_value {
            let holds = fails.iter().all(Option::is_none);
            let counterexample =
                fails[i.index()].or_else(|| fails.iter().flatten().next().copied());
            checks.push(ConditionCheck {
                proc: i,
                value: *value,
                holds,
                counterexample,
            });
        }
    }
    OptimalityReport { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{FailureMode, Scenario};
    use eba_sim::GeneratedSystem;

    fn crash_system() -> GeneratedSystem {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        GeneratedSystem::exhaustive(&scenario)
    }

    #[test]
    fn f_lambda_is_not_optimal() {
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let report = check_optimality(&mut ctor, &DecisionPair::empty(3));
        assert!(!report.is_optimal());
        assert!(!report.failures().is_empty());
        assert!(report.to_string().contains("NOT optimal"));
    }

    #[test]
    fn f_lambda_1_is_not_optimal() {
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let f1 = ctor.step_zero(&DecisionPair::empty(3));
        let report = check_optimality(&mut ctor, &f1);
        assert!(!report.is_optimal());
    }

    #[test]
    fn two_step_optimization_passes_the_characterization() {
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let f2 = ctor.optimize(&DecisionPair::empty(3));
        let report = check_optimality(&mut ctor, &f2);
        assert!(report.is_optimal(), "{report}: {:?}", report.failures());
        assert!(report.to_string().contains("optimal"));
    }

    #[test]
    fn symmetric_optimization_is_also_optimal() {
        let system = crash_system();
        let mut ctor = Constructor::new(&system);
        let f2 = ctor.optimize_one_first(&DecisionPair::empty(3));
        let report = check_optimality(&mut ctor, &f2);
        assert!(report.is_optimal(), "{:?}", report.failures());
    }
}
