//! Hash-consed full-information views.
//!
//! In a full-information protocol (Section 2.4 of the paper) every
//! processor sends its entire local state to everyone in every round. The
//! local state of processor `i` at time `m` is therefore a *view*: its
//! initial value at time 0, and at time `m > 0` its view at `m − 1`
//! together with, for every sender `j`, either `⊥` (message not delivered)
//! or `j`'s view at `m − 1`.
//!
//! Views are hash-consed in a [`ViewTable`]: structurally equal views get
//! the same [`ViewId`], *across runs*. Since the FIP local state is exactly
//! the view, two points of the generated system are indistinguishable to
//! `i` precisely when `i`'s `ViewId` is equal at both — this is what makes
//! the knowledge machinery of `eba-kripke` a set of bucket lookups.
//!
//! The table caches derived attributes per view (does a 0 appear anywhere?
//! which processors' initial values are known? who was heard from in the
//! last round?) so protocol decision rules run in O(1) per view.
//!
//! # Beyond full information
//!
//! Since the exchange abstraction (DESIGN.md §4g) the table interns the
//! local state of *any* [`crate::Exchange`], not just FIP view trees:
//! [`ViewNode::Digest`] holds the bounded who-heard-what state of the
//! digest exchanges. Everything the downstream layers rely on is
//! unchanged — equal `ViewId`s still mean identical local state, and the
//! cached per-view attributes are derived from the digest's knowledge
//! sets instead of a tree walk. Only the structural tree accessors
//! ([`ViewTable::prev`], [`ViewTable::received_from`],
//! [`ViewTable::at_time`]) are FIP-specific; they return `None` (or are
//! documented to panic) on digest states.

use eba_model::{
    FailurePattern, InitialConfig, ModelError, ProcSet, ProcessorId, Round, Time, Value,
};
use std::collections::HashMap;

pub use crate::exchange::DigestState;

/// The number of views a [`ViewTable`] can hold (`ViewId` is a `u32`).
pub const VIEW_CAPACITY: u128 = 1 << 32;

/// An interned full-information view; equal ids ⟺ identical FIP local
/// state (within one [`ViewTable`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ViewId(u32);

impl ViewId {
    /// The table index of this id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a table index (the inverse of
    /// [`ViewId::index`]); only meaningful for indices smaller than the
    /// owning table's [`ViewTable::len`].
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit a `u32`. Indices obtained from a
    /// `ViewTable` always fit; for untrusted indices use
    /// [`ViewId::try_from_index`].
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        ViewId::try_from_index(index).expect("view index overflow")
    }

    /// Fallible [`ViewId::from_index`]: `None` when `index` exceeds the
    /// id space instead of panicking.
    #[must_use]
    pub fn try_from_index(index: usize) -> Option<Self> {
        u32::try_from(index).ok().map(ViewId)
    }
}

/// The structure of a view: a time-0 leaf or an extension node.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ViewNode {
    /// The view of `proc` at time 0: its initial value.
    Leaf {
        /// The view's owner.
        proc: ProcessorId,
        /// The owner's initial value.
        value: Value,
    },
    /// The view of a processor at time `m > 0`.
    Node {
        /// The owner's view at the previous time.
        prev: ViewId,
        /// `received[j]` is `j`'s view at the previous time if `j`'s
        /// round-`m` message was delivered, `None` otherwise
        /// (`received[owner]` is always `None`; own memory is `prev`).
        received: Box<[Option<ViewId>]>,
    },
    /// The bounded local state of a digest exchange (see
    /// [`crate::DigestExchange`]). Unlike [`ViewNode::Node`] it holds its
    /// full content by value and references no other table entries, so
    /// [`ViewTable::absorb`] clones it without remapping.
    Digest(DigestState),
}

#[derive(Clone, Copy, Debug)]
struct ViewMeta {
    proc: ProcessorId,
    time: Time,
    own_value: Value,
    exists_zero: bool,
    exists_one: bool,
    known_procs: ProcSet,
    known_zeros: ProcSet,
    heard_from: ProcSet,
}

/// An interning table for full-information views; see the module docs.
///
/// # Example
///
/// ```
/// use eba_model::{ProcessorId, Value};
/// use eba_sim::ViewTable;
///
/// let mut table = ViewTable::new();
/// let a = table.leaf(ProcessorId::new(0), Value::Zero);
/// let b = table.leaf(ProcessorId::new(0), Value::Zero);
/// assert_eq!(a, b); // hash-consing
/// assert!(table.exists_zero(a));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ViewTable {
    nodes: Vec<ViewNode>,
    meta: Vec<ViewMeta>,
    index: HashMap<ViewNode, ViewId>,
}

impl ViewTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        ViewTable::default()
    }

    /// Number of distinct views interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Approximate resident heap bytes of the table: node rows (plus
    /// their boxed payloads), meta rows, and the hash-consing index.
    /// Counts lengths rather than capacities, so it is a stable lower
    /// bound usable for relative memory budgeting (the serve pool's LRU
    /// eviction); it is not an allocator-exact figure.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let payload = |node: &ViewNode| match node {
            ViewNode::Leaf { .. } => 0,
            ViewNode::Node { received, .. } => received.len() * size_of::<Option<ViewId>>(),
            ViewNode::Digest(d) => {
                (d.knowledge.len() + d.zero_knowledge.len()) * size_of::<ProcSet>()
                    + d.contact.len() * size_of::<u64>()
            }
        };
        // Every node is stored twice (row + index key) and its boxed
        // payload is shared by neither, so payloads count twice too.
        let nodes: usize = self
            .nodes
            .iter()
            .map(|n| 2 * (size_of::<ViewNode>() + payload(n)))
            .sum();
        let meta = self.meta.len() * size_of::<ViewMeta>();
        let index_overhead = self.index.len() * size_of::<ViewId>();
        nodes + meta + index_overhead
    }

    /// Iterates over every interned [`ViewId`] in interning order.
    ///
    /// This is the panic-free way to walk a table: indices below
    /// [`ViewTable::len`] are ids the table itself issued, so no
    /// [`ViewId::from_index`] conversion (with its overflow panic path)
    /// is ever needed at call sites.
    pub fn ids(&self) -> impl DoubleEndedIterator<Item = ViewId> + Clone {
        // Interning bounds len to VIEW_CAPACITY, so the cast is lossless.
        (0..self.nodes.len() as u32).map(ViewId)
    }

    fn try_intern(&mut self, node: ViewNode, meta: ViewMeta) -> Result<ViewId, ModelError> {
        if let Some(&id) = self.index.get(&node) {
            return Ok(id);
        }
        let Some(id) = ViewId::try_from_index(self.nodes.len()) else {
            return Err(ModelError::capacity_exceeded("view table", VIEW_CAPACITY));
        };
        self.index.insert(node.clone(), id);
        self.nodes.push(node);
        self.meta.push(meta);
        Ok(id)
    }

    /// Re-interns every view of `other` into `self`, in `other`'s id
    /// order, and returns the translation table: entry `i` is the id in
    /// `self` of `other`'s view `i`.
    ///
    /// Because a table's nodes only ever reference smaller ids, a single
    /// in-order pass suffices. This is the merge step of the parallel
    /// system builder: absorbing shard-local tables in shard order visits
    /// first encounters in exactly the sequential enumeration order, so
    /// the combined table is bit-identical to a sequential build.
    pub fn absorb(&mut self, other: &ViewTable) -> Result<Vec<ViewId>, ModelError> {
        let mut remap: Vec<ViewId> = Vec::with_capacity(other.len());
        for (node, meta) in other.nodes.iter().zip(&other.meta) {
            let translated = match node {
                // Leaves and digest states are self-contained: their
                // content (and hence their hash-cons identity) carries no
                // table-local ids, so absorption is a plain clone.
                ViewNode::Leaf { .. } | ViewNode::Digest(_) => node.clone(),
                ViewNode::Node { prev, received } => ViewNode::Node {
                    prev: remap[prev.index()],
                    received: received
                        .iter()
                        .map(|slot| slot.map(|v| remap[v.index()]))
                        .collect(),
                },
            };
            remap.push(self.try_intern(translated, *meta)?);
        }
        Ok(remap)
    }

    /// Interns the time-0 view of `proc` with initial value `value`.
    ///
    /// # Panics
    ///
    /// Panics if the table is full; see [`ViewTable::try_leaf`].
    pub fn leaf(&mut self, proc: ProcessorId, value: Value) -> ViewId {
        self.try_leaf(proc, value).expect("view table overflow")
    }

    /// Fallible [`ViewTable::leaf`], reporting table overflow as a
    /// [`ModelError::CapacityExceeded`] instead of panicking.
    pub fn try_leaf(&mut self, proc: ProcessorId, value: Value) -> Result<ViewId, ModelError> {
        let meta = ViewMeta {
            proc,
            time: Time::ZERO,
            own_value: value,
            exists_zero: value == Value::Zero,
            exists_one: value == Value::One,
            known_procs: ProcSet::singleton(proc),
            known_zeros: if value == Value::Zero {
                ProcSet::singleton(proc)
            } else {
                ProcSet::empty()
            },
            heard_from: ProcSet::empty(),
        };
        self.try_intern(ViewNode::Leaf { proc, value }, meta)
    }

    /// Interns the view obtained by extending `prev` with one round of
    /// receptions: `received[j]` must be `j`'s view at the owner's
    /// previous time if delivered.
    ///
    /// # Panics
    ///
    /// Panics if the table is full (see [`ViewTable::try_extend`]), and in
    /// debug builds if a received view is not at the owner's previous time
    /// or `received[owner]` is not `None`.
    pub fn extend(&mut self, prev: ViewId, received: Vec<Option<ViewId>>) -> ViewId {
        self.try_extend(prev, received)
            .expect("view table overflow")
    }

    /// Fallible [`ViewTable::extend`], reporting table overflow as a
    /// [`ModelError::CapacityExceeded`] instead of panicking.
    pub fn try_extend(
        &mut self,
        prev: ViewId,
        received: Vec<Option<ViewId>>,
    ) -> Result<ViewId, ModelError> {
        let prev_meta = self.meta[prev.index()];
        debug_assert!(received
            .iter()
            .flatten()
            .all(|v| self.meta[v.index()].time == prev_meta.time));
        debug_assert!(received[prev_meta.proc.index()].is_none());

        let mut exists_zero = prev_meta.exists_zero;
        let mut exists_one = prev_meta.exists_one;
        let mut known_procs = prev_meta.known_procs;
        let mut known_zeros = prev_meta.known_zeros;
        let mut heard_from = ProcSet::empty();
        for (j, v) in received.iter().enumerate() {
            if let Some(v) = v {
                let m = &self.meta[v.index()];
                exists_zero |= m.exists_zero;
                exists_one |= m.exists_one;
                known_procs = known_procs | m.known_procs;
                known_zeros = known_zeros | m.known_zeros;
                heard_from.insert(ProcessorId::new(j));
            }
        }
        let meta = ViewMeta {
            proc: prev_meta.proc,
            time: prev_meta.time.next(),
            own_value: prev_meta.own_value,
            exists_zero,
            exists_one,
            known_procs,
            known_zeros,
            heard_from,
        };
        self.try_intern(
            ViewNode::Node {
                prev,
                received: received.into_boxed_slice(),
            },
            meta,
        )
    }

    /// Interns the bounded local state of a digest exchange. The cached
    /// attributes ([`ViewTable::exists_zero`], [`ViewTable::known_procs`],
    /// …) are derived from the state's knowledge sets: a 0 exists in the
    /// state iff some processor is known to have started with 0, a 1 iff
    /// some known processor is *not* known to have started with 0.
    ///
    /// Overflow surfaces as a typed [`ModelError::CapacityExceeded`] —
    /// the digest path has no panicking intern (satellite audit of the
    /// raw-index constructors: only [`ViewId::try_from_index`] is used
    /// here, via `try_intern`).
    pub fn try_digest(&mut self, state: DigestState) -> Result<ViewId, ModelError> {
        let known_ones = state.known_procs - state.known_zeros;
        let meta = ViewMeta {
            proc: state.proc,
            time: state.time,
            own_value: state.own_value,
            exists_zero: !state.known_zeros.is_empty(),
            exists_one: !known_ones.is_empty(),
            known_procs: state.known_procs,
            known_zeros: state.known_zeros,
            heard_from: state.heard_from,
        };
        self.try_intern(ViewNode::Digest(state), meta)
    }

    /// The digest state of view `id`, or `None` for a full-information
    /// view.
    #[must_use]
    pub fn digest_state(&self, id: ViewId) -> Option<&DigestState> {
        match self.node(id) {
            ViewNode::Digest(state) => Some(state),
            _ => None,
        }
    }

    /// The structure of view `id`.
    #[must_use]
    pub fn node(&self, id: ViewId) -> &ViewNode {
        &self.nodes[id.index()]
    }

    /// The owner of the view.
    #[must_use]
    pub fn proc(&self, id: ViewId) -> ProcessorId {
        self.meta[id.index()].proc
    }

    /// The time of the view (its depth; the FIP state includes the global
    /// clock).
    #[must_use]
    pub fn time(&self, id: ViewId) -> Time {
        self.meta[id.index()].time
    }

    /// The owner's own initial value.
    #[must_use]
    pub fn own_value(&self, id: ViewId) -> Value {
        self.meta[id.index()].own_value
    }

    /// Whether an initial value 0 appears anywhere in the view (the owner
    /// has *learned of a 0*).
    #[must_use]
    pub fn exists_zero(&self, id: ViewId) -> bool {
        self.meta[id.index()].exists_zero
    }

    /// Whether an initial value 1 appears anywhere in the view.
    #[must_use]
    pub fn exists_one(&self, id: ViewId) -> bool {
        self.meta[id.index()].exists_one
    }

    /// Whether an initial value `v` appears anywhere in the view.
    #[must_use]
    pub fn exists_value(&self, id: ViewId, v: Value) -> bool {
        match v {
            Value::Zero => self.exists_zero(id),
            Value::One => self.exists_one(id),
        }
    }

    /// The set of processors whose initial values appear in the view.
    #[must_use]
    pub fn known_procs(&self, id: ViewId) -> ProcSet {
        self.meta[id.index()].known_procs
    }

    /// The set of processors the view shows to have started with 0.
    #[must_use]
    pub fn known_zeros(&self, id: ViewId) -> ProcSet {
        self.meta[id.index()].known_zeros
    }

    /// Whether the view contains the initial values of all `n` processors
    /// and all of them are 1 ("knows that all initial values are 1").
    #[must_use]
    pub fn knows_all_one(&self, id: ViewId, n: usize) -> bool {
        self.known_procs(id) == ProcSet::full(n) && !self.exists_zero(id)
    }

    /// The set of processors whose message was received in the view's last
    /// round (empty for time-0 views).
    #[must_use]
    pub fn heard_from(&self, id: ViewId) -> ProcSet {
        self.meta[id.index()].heard_from
    }

    /// The owner's view at the previous time, or `None` for a leaf or a
    /// digest state (digest states are self-contained; they reference no
    /// earlier table entries).
    #[must_use]
    pub fn prev(&self, id: ViewId) -> Option<ViewId> {
        match self.node(id) {
            ViewNode::Leaf { .. } | ViewNode::Digest(_) => None,
            ViewNode::Node { prev, .. } => Some(*prev),
        }
    }

    /// The view received from `j` in the last round, or `None` for a leaf,
    /// a digest state, or an undelivered message.
    #[must_use]
    pub fn received_from(&self, id: ViewId, j: ProcessorId) -> Option<ViewId> {
        match self.node(id) {
            ViewNode::Leaf { .. } | ViewNode::Digest(_) => None,
            ViewNode::Node { received, .. } => received[j.index()],
        }
    }

    /// Renders the full structural content of a view as a canonical
    /// string — a **table-independent** fingerprint: two views, possibly
    /// interned in different tables, render equally exactly when they
    /// encode the same FIP local state. Within one table equal `ViewId`s
    /// already mean equal content; `render` exists for cross-table
    /// comparison — chiefly asserting that incrementally extended systems
    /// ([`crate::SystemBuilder::extend`]) match cold builds, whose
    /// `ViewId` numbering differs.
    #[must_use]
    pub fn render(&self, id: ViewId) -> String {
        match self.node(id) {
            ViewNode::Leaf { proc, value } => format!("{}:{}", proc.index(), value),
            ViewNode::Digest(state) => state.render(),
            ViewNode::Node { prev, received } => {
                let mut out = String::from("(");
                out.push_str(&self.render(*prev));
                for slot in received.iter() {
                    out.push('|');
                    match slot {
                        Some(v) => out.push_str(&self.render(*v)),
                        None => out.push('_'),
                    }
                }
                out.push(')');
                out
            }
        }
    }

    /// The owner's view at an earlier time `time ≤ time(id)` — a
    /// full-information tree walk.
    ///
    /// # Panics
    ///
    /// Panics if `time > time(id)`, or on a digest state with
    /// `time < time(id)` (digest states keep no predecessor chain; this
    /// accessor is only reachable from full-information call paths).
    #[must_use]
    pub fn at_time(&self, id: ViewId, time: Time) -> ViewId {
        let mut current = id;
        while self.time(current) > time {
            current = self
                .prev(current)
                .expect("non-leaf views have a predecessor");
        }
        assert_eq!(self.time(current), time, "time exceeds the view's time");
        current
    }
}

/// Computes the full-information views of every processor at every time of
/// the run determined by `(config, pattern)`, up to `horizon`.
///
/// Returns `views[time][proc]`. A crashed processor's view is frozen at
/// its crash; a crashed processor is faulty, so its post-crash view never
/// participates in any `N`-relative knowledge test.
///
/// # Panics
///
/// Panics if `config` and `pattern` disagree on `n`, or if the table
/// overflows (see [`try_fip_views`]).
#[must_use]
pub fn fip_views(
    config: &InitialConfig,
    pattern: &FailurePattern,
    horizon: Time,
    table: &mut ViewTable,
) -> Vec<Vec<ViewId>> {
    try_fip_views(config, pattern, horizon, table).expect("view table overflow")
}

/// Fallible [`fip_views`], reporting table overflow as a
/// [`ModelError::CapacityExceeded`] instead of panicking.
///
/// # Panics
///
/// Panics if `config` and `pattern` disagree on `n`.
pub fn try_fip_views(
    config: &InitialConfig,
    pattern: &FailurePattern,
    horizon: Time,
    table: &mut ViewTable,
) -> Result<Vec<Vec<ViewId>>, ModelError> {
    let n = config.n();
    assert_eq!(n, pattern.n());
    let mut views: Vec<Vec<ViewId>> = Vec::with_capacity(horizon.index() + 1);
    let mut leaves = Vec::with_capacity(n);
    for p in ProcessorId::all(n) {
        leaves.push(table.try_leaf(p, config.value(p))?);
    }
    views.push(leaves);
    for round in Round::upto(horizon) {
        let prev_views = views.last().expect("time 0 is always present");
        let now = try_fip_step(pattern, round, prev_views, table)?;
        views.push(now);
    }
    Ok(views)
}

/// Advances every processor's full-information view by one round:
/// `prev_views[p]` is `p`'s view at `round.start()`, the result is the
/// views at `round.end()`. This is the shared kernel of [`try_fip_views`]
/// and of the horizon-extension path ([`crate::SystemBuilder::extend`]),
/// which replays only the appended rounds on top of reused base-horizon
/// prefixes — sharing the loop body is what makes extension bit-identical
/// in view *content* to a cold build.
pub(crate) fn try_fip_step(
    pattern: &FailurePattern,
    round: Round,
    prev_views: &[ViewId],
    table: &mut ViewTable,
) -> Result<Vec<ViewId>, ModelError> {
    let n = pattern.n();
    debug_assert_eq!(n, prev_views.len());
    let mut now: Vec<ViewId> = Vec::with_capacity(n);
    for receiver in ProcessorId::all(n) {
        if pattern.crashed_by(receiver, round.end()) {
            now.push(prev_views[receiver.index()]);
            continue;
        }
        let received: Vec<Option<ViewId>> = ProcessorId::all(n)
            .map(|sender| {
                pattern
                    .delivers(sender, receiver, round)
                    .then(|| prev_views[sender.index()])
            })
            .collect();
        now.push(table.try_extend(prev_views[receiver.index()], received)?);
    }
    Ok(now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::FaultyBehavior;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn leaves_are_interned() {
        let mut t = ViewTable::new();
        let a = t.leaf(p(0), Value::One);
        let b = t.leaf(p(0), Value::One);
        let c = t.leaf(p(0), Value::Zero);
        let d = t.leaf(p(1), Value::One);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn leaf_metadata() {
        let mut t = ViewTable::new();
        let a = t.leaf(p(2), Value::Zero);
        assert_eq!(t.proc(a), p(2));
        assert_eq!(t.time(a), Time::ZERO);
        assert_eq!(t.own_value(a), Value::Zero);
        assert!(t.exists_zero(a));
        assert!(!t.exists_one(a));
        assert_eq!(t.known_procs(a), ProcSet::singleton(p(2)));
        assert_eq!(t.known_zeros(a), ProcSet::singleton(p(2)));
        assert_eq!(t.heard_from(a), ProcSet::empty());
        assert_eq!(t.prev(a), None);
    }

    #[test]
    fn extension_merges_metadata() {
        let mut t = ViewTable::new();
        let v0 = t.leaf(p(0), Value::One);
        let v1 = t.leaf(p(1), Value::Zero);
        let ext = t.extend(v0, vec![None, Some(v1), None]);
        assert_eq!(t.proc(ext), p(0));
        assert_eq!(t.time(ext), Time::new(1));
        assert!(t.exists_zero(ext));
        assert!(t.exists_one(ext));
        assert_eq!(t.known_procs(ext), [p(0), p(1)].into_iter().collect());
        assert_eq!(t.known_zeros(ext), ProcSet::singleton(p(1)));
        assert_eq!(t.heard_from(ext), ProcSet::singleton(p(1)));
        assert_eq!(t.prev(ext), Some(v0));
        assert_eq!(t.received_from(ext, p(1)), Some(v1));
        assert_eq!(t.received_from(ext, p(2)), None);
    }

    #[test]
    fn fip_views_failure_free_everyone_learns_everything() {
        let mut t = ViewTable::new();
        let config = InitialConfig::from_bits(3, 0b011);
        let pattern = FailurePattern::failure_free(3);
        let views = fip_views(&config, &pattern, Time::new(2), &mut t);
        for (q, &v) in views[1].iter().enumerate() {
            assert_eq!(t.known_procs(v), ProcSet::full(3));
            assert!(t.exists_zero(v));
            assert!(!t.knows_all_one(v, 3));
            assert_eq!(t.heard_from(v), ProcSet::full(3) - ProcSet::singleton(p(q)));
        }
    }

    #[test]
    fn fip_views_equal_across_indistinguishable_runs() {
        // p0 silent from round 1; the remaining processors cannot tell
        // whether p0's value was 0 or 1: their views must be interned to
        // the same ids.
        let mut t = ViewTable::new();
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
        let run_a = fip_views(
            &InitialConfig::from_bits(3, 0b110),
            &pattern,
            Time::new(2),
            &mut t,
        );
        let run_b = fip_views(
            &InitialConfig::from_bits(3, 0b111),
            &pattern,
            Time::new(2),
            &mut t,
        );
        for time in 0..=2 {
            for q in 1..3 {
                assert_eq!(run_a[time][q], run_b[time][q], "time {time}, processor {q}");
            }
        }
        // p0's own views differ (it knows its own value).
        assert_ne!(run_a[0][0], run_b[0][0]);
    }

    #[test]
    fn fip_views_distinguish_once_information_flows() {
        let mut t = ViewTable::new();
        let pattern = FailurePattern::failure_free(3);
        let run_a = fip_views(
            &InitialConfig::from_bits(3, 0b110),
            &pattern,
            Time::new(2),
            &mut t,
        );
        let run_b = fip_views(
            &InitialConfig::from_bits(3, 0b111),
            &pattern,
            Time::new(2),
            &mut t,
        );
        // After one failure-free round everyone knows p0's value.
        for q in 0..3 {
            assert_ne!(run_a[1][q], run_b[1][q]);
        }
    }

    #[test]
    fn crashed_views_freeze() {
        let mut t = ViewTable::new();
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
        let views = fip_views(
            &InitialConfig::uniform(3, Value::One),
            &pattern,
            Time::new(3),
            &mut t,
        );
        assert_eq!(views[1][0], views[0][0]);
        assert_eq!(views[3][0], views[0][0]);
        assert_ne!(views[1][1], views[0][1]);
    }

    #[test]
    fn at_time_walks_back() {
        let mut t = ViewTable::new();
        let config = InitialConfig::uniform(2, Value::One);
        let pattern = FailurePattern::failure_free(2);
        let views = fip_views(&config, &pattern, Time::new(3), &mut t);
        let late = views[3][0];
        assert_eq!(t.at_time(late, Time::new(1)), views[1][0]);
        assert_eq!(t.at_time(late, Time::new(3)), late);
    }

    #[test]
    fn absorb_reinterns_with_stable_semantics() {
        // Build the same two runs in one table sequentially and in two
        // tables merged by absorb; ids must coincide.
        let config_a = InitialConfig::from_bits(3, 0b011);
        let config_b = InitialConfig::from_bits(3, 0b101);
        let pattern = FailurePattern::failure_free(3);

        let mut sequential = ViewTable::new();
        let seq_a = fip_views(&config_a, &pattern, Time::new(2), &mut sequential);
        let seq_b = fip_views(&config_b, &pattern, Time::new(2), &mut sequential);

        let mut left = ViewTable::new();
        let shard_a = fip_views(&config_a, &pattern, Time::new(2), &mut left);
        let mut right = ViewTable::new();
        let shard_b = fip_views(&config_b, &pattern, Time::new(2), &mut right);

        let mut merged = ViewTable::new();
        let remap_left = merged.absorb(&left).unwrap();
        let remap_right = merged.absorb(&right).unwrap();
        assert_eq!(merged.len(), sequential.len());
        for time in 0..=2 {
            for q in 0..3 {
                assert_eq!(remap_left[shard_a[time][q].index()], seq_a[time][q]);
                assert_eq!(remap_right[shard_b[time][q].index()], seq_b[time][q]);
            }
        }
    }

    #[test]
    fn try_from_index_rejects_oversized_indices() {
        assert_eq!(ViewId::try_from_index(7), Some(ViewId::from_index(7)));
        assert_eq!(ViewId::try_from_index(usize::MAX), None);
    }

    #[test]
    fn ids_walks_the_table_in_interning_order() {
        let mut t = ViewTable::new();
        let a = t.leaf(p(0), Value::Zero);
        let b = t.leaf(p(1), Value::One);
        assert_eq!(t.ids().collect::<Vec<_>>(), vec![a, b]);
        assert!(t.ids().all(|v| v.index() < t.len()));
    }

    #[test]
    fn omission_faulty_receiver_keeps_receiving() {
        let mut t = ViewTable::new();
        let pattern = FailurePattern::failure_free(2).with_behavior(
            p(0),
            FaultyBehavior::Omission {
                omissions: vec![ProcSet::singleton(p(1))],
            },
        );
        let views = fip_views(
            &InitialConfig::uniform(2, Value::One),
            &pattern,
            Time::new(1),
            &mut t,
        );
        // p1 did not hear from p0 …
        assert_eq!(t.heard_from(views[1][1]), ProcSet::empty());
        // … but the omission-faulty p0 still hears from p1.
        assert_eq!(t.heard_from(views[1][0]), ProcSet::singleton(p(1)));
    }
}
