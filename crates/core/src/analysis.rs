//! Decision-time analysis over generated systems: breakdowns by failure
//! count and configuration class, used by the experiment harness
//! (EXP5/EXP7) and available to downstream users comparing protocols.

use crate::FipDecisions;
use eba_model::{ProcessorId, Time, Value};
use eba_sim::stats::DecisionStats;
use eba_sim::GeneratedSystem;
use std::fmt;

/// A class of initial configurations, for grouped reporting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ConfigClass {
    /// Every processor starts with 0.
    AllZero,
    /// Every processor starts with 1.
    AllOne,
    /// Both values occur.
    Mixed,
}

impl ConfigClass {
    /// Classifies a configuration.
    #[must_use]
    pub fn of(config: &eba_model::InitialConfig) -> ConfigClass {
        match (config.exists(Value::Zero), config.exists(Value::One)) {
            (true, false) => ConfigClass::AllZero,
            (false, true) => ConfigClass::AllOne,
            _ => ConfigClass::Mixed,
        }
    }

    /// All classes, in display order.
    pub const ALL: [ConfigClass; 3] = [
        ConfigClass::AllZero,
        ConfigClass::AllOne,
        ConfigClass::Mixed,
    ];
}

impl fmt::Display for ConfigClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigClass::AllZero => write!(f, "all-0"),
            ConfigClass::AllOne => write!(f, "all-1"),
            ConfigClass::Mixed => write!(f, "mixed"),
        }
    }
}

/// Decision-time statistics grouped along one axis (failure count or
/// configuration class).
#[derive(Clone, Debug, Default)]
pub struct Breakdown {
    rows: Vec<(String, DecisionStats)>,
}

impl Breakdown {
    /// The labeled rows, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[(String, DecisionStats)] {
        &self.rows
    }

    /// Looks up a row by label.
    #[must_use]
    pub fn get(&self, label: &str) -> Option<&DecisionStats> {
        self.rows.iter().find(|(l, _)| l == label).map(|(_, s)| s)
    }

    fn entry(&mut self, label: String) -> &mut DecisionStats {
        if let Some(pos) = self.rows.iter().position(|(l, _)| *l == label) {
            return &mut self.rows[pos].1;
        }
        self.rows.push((label, DecisionStats::new()));
        &mut self.rows.last_mut().expect("just pushed").1
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, stats) in &self.rows {
            writeln!(f, "{label:>8}: {stats}")?;
        }
        Ok(())
    }
}

/// Groups nonfaulty decision times by the run's actual number of
/// failures `f` (rows labeled `f=0`, `f=1`, …, sorted).
#[must_use]
pub fn by_failures(system: &GeneratedSystem, d: &FipDecisions) -> Breakdown {
    let mut breakdown = Breakdown::default();
    let max_f = system
        .run_ids()
        .map(|r| system.run(r).pattern.num_faulty())
        .max()
        .unwrap_or(0);
    for f in 0..=max_f {
        let stats = breakdown.entry(format!("f={f}"));
        for run in system.run_ids() {
            if system.run(run).pattern.num_faulty() != f {
                continue;
            }
            for p in system.nonfaulty(run) {
                stats.record(d.decision(run, p));
            }
        }
    }
    breakdown
}

/// Groups nonfaulty decision times by [`ConfigClass`].
#[must_use]
pub fn by_config_class(system: &GeneratedSystem, d: &FipDecisions) -> Breakdown {
    let mut breakdown = Breakdown::default();
    for class in ConfigClass::ALL {
        breakdown.entry(class.to_string());
    }
    for run in system.run_ids() {
        let class = ConfigClass::of(&system.run(run).config);
        let stats = breakdown.entry(class.to_string());
        for p in system.nonfaulty(run) {
            stats.record(d.decision(run, p));
        }
    }
    breakdown
}

/// The latest nonfaulty decision time across the entire system, or `None`
/// if some nonfaulty processor never decides (i.e. the decision property
/// fails within the horizon).
#[must_use]
pub fn worst_case_decision_time(system: &GeneratedSystem, d: &FipDecisions) -> Option<Time> {
    let mut worst = Time::ZERO;
    for run in system.run_ids() {
        for p in system.nonfaulty(run) {
            worst = worst.max(d.decision_time(run, p)?);
        }
    }
    Some(worst)
}

/// Per-processor decision-time means — exposes asymmetries between
/// processors (there are none for the symmetric protocols of the paper;
/// the test asserts that too).
#[must_use]
pub fn by_processor(system: &GeneratedSystem, d: &FipDecisions) -> Vec<DecisionStats> {
    let n = system.n();
    let mut out = vec![DecisionStats::new(); n];
    for run in system.run_ids() {
        for p in system.nonfaulty(run) {
            out[p.index()].record(d.decision(run, p));
        }
    }
    let _ = ProcessorId::all(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::f_lambda_2;
    use crate::Constructor;
    use eba_model::{FailureMode, Scenario};

    fn crash_decisions() -> (GeneratedSystem, FipDecisions) {
        let scenario = Scenario::new(3, 1, FailureMode::Crash, 3).unwrap();
        let system = GeneratedSystem::exhaustive(&scenario);
        let mut ctor = Constructor::new(&system);
        let pair = f_lambda_2(&mut ctor);
        let d = FipDecisions::compute(&system, &pair, "F^{Λ,2}");
        (system, d)
    }

    #[test]
    fn failure_breakdown_covers_all_decisions() {
        let (system, d) = crash_decisions();
        let breakdown = by_failures(&system, &d);
        assert_eq!(breakdown.rows().len(), 2); // f = 0 and f = 1
        let total: u64 = breakdown
            .rows()
            .iter()
            .map(|(_, s)| s.decided() + s.undecided())
            .sum();
        let population: u64 = system
            .run_ids()
            .map(|r| system.nonfaulty(r).len() as u64)
            .sum();
        assert_eq!(total, population);
        // More failures cannot make the worst case better.
        let f0 = breakdown.get("f=0").unwrap().max_time().unwrap();
        let f1 = breakdown.get("f=1").unwrap().max_time().unwrap();
        assert!(f1 >= f0);
    }

    #[test]
    fn config_class_breakdown() {
        let (system, d) = crash_decisions();
        let breakdown = by_config_class(&system, &d);
        // All-zero runs decide at time 0 (everyone holds the 0).
        let all0 = breakdown.get("all-0").unwrap();
        assert_eq!(all0.mean_time(), Some(0.0));
        // All-one runs cannot decide at time 0 (a hidden 0 is possible).
        let all1 = breakdown.get("all-1").unwrap();
        assert!(all1.mean_time().unwrap() > 0.5);
        assert!(breakdown.get("mixed").unwrap().decided() > 0);
        assert!(breakdown.get("nonsense").is_none());
    }

    #[test]
    fn worst_case_matches_t_plus_one() {
        let (system, d) = crash_decisions();
        assert_eq!(worst_case_decision_time(&system, &d), Some(Time::new(2)));
    }

    #[test]
    fn processors_are_symmetric() {
        let (system, d) = crash_decisions();
        let per = by_processor(&system, &d);
        let means: Vec<_> = per.iter().map(|s| s.mean_time().unwrap()).collect();
        for m in &means {
            assert!((m - means[0]).abs() < 1e-9, "{means:?}");
        }
    }

    #[test]
    fn config_class_classification() {
        use eba_model::InitialConfig;
        assert_eq!(
            ConfigClass::of(&InitialConfig::uniform(3, Value::Zero)),
            ConfigClass::AllZero
        );
        assert_eq!(
            ConfigClass::of(&InitialConfig::uniform(3, Value::One)),
            ConfigClass::AllOne
        );
        assert_eq!(
            ConfigClass::of(&InitialConfig::from_bits(3, 0b010)),
            ConfigClass::Mixed
        );
    }

    #[test]
    fn display_renders_rows() {
        let (system, d) = crash_decisions();
        let text = by_failures(&system, &d).to_string();
        assert!(text.contains("f=0"));
        assert!(text.contains("decided="));
    }
}
