//! Eventual vs simultaneous agreement: how much does dropping
//! simultaneity buy?
//!
//! \[DRS90\]'s observation — the paper's point of departure — is that
//! eventual agreement typically decides much faster than simultaneous
//! agreement. We quantify it: exact common-knowledge SBA vs the optimal
//! EBA protocol `F^{Λ,2}` on exhaustive small systems, and the `t+1`
//! waste-based optimum SBA (`SbaWaste`, verified against the exact rule)
//! vs `P0opt` at scale.
//!
//! ```text
//! cargo run --release --example eba_vs_sba
//! ```

use eba::prelude::*;
use eba_core::protocols::{f_lambda_2, sba_common_knowledge_pair};
use eba_model::sample::{self, PatternSampler};
use eba_protocols::{P0Opt, SbaWaste};
use eba_sim::stats::DecisionStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Exact comparison on exhaustive systems.
    println!("knowledge level (exact, exhaustive):");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10}",
        "scenario", "EBA mean", "SBA mean", "rounds saved", "max gap"
    );
    for (n, t) in [(3usize, 1usize), (4, 1)] {
        let scenario = Scenario::new(n, t, FailureMode::Crash, t as u16 + 2)?;
        let system = GeneratedSystem::exhaustive(&scenario);
        let mut ctor = Constructor::new(&system);
        let eba_pair = f_lambda_2(&mut ctor);
        let sba_pair = sba_common_knowledge_pair(&mut ctor);
        let d_eba = FipDecisions::compute(&system, &eba_pair, "F^{Λ,2}");
        let d_sba = FipDecisions::compute(&system, &sba_pair, "C_N-SBA");

        // The SBA rule really is simultaneous, and the EBA optimum
        // dominates it strictly.
        assert!(verify_properties(&system, &d_sba).is_sba());
        let dom = dominates(&system, &d_eba, &d_sba);
        assert!(dom.dominates && dom.strict);

        let mean = |d: &FipDecisions| {
            let mut stats = DecisionStats::new();
            for run in system.run_ids() {
                for p in system.nonfaulty(run) {
                    stats.record(d.decision(run, p));
                }
            }
            stats
        };
        let se = mean(&d_eba);
        let ss = mean(&d_sba);
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>12} {:>10}",
            format!("n={n} t={t}"),
            se.mean_time().unwrap_or(f64::NAN),
            ss.mean_time().unwrap_or(f64::NAN),
            dom.rounds_saved,
            dom.max_gap,
        );
    }

    // Message level at scale: P0opt (optimal EBA) vs FloodMin (naive
    // simultaneous t+1 protocol) on shared sampled runs.
    const N: usize = 24;
    const T: usize = 6;
    const RUNS: usize = 1_500;
    let scenario = Scenario::new(N, T, FailureMode::Crash, T as u16 + 2)?;
    let mut rng = StdRng::seed_from_u64(7);
    let sampler = PatternSampler::new(scenario);

    let mut eba_stats = DecisionStats::new();
    let mut sba_stats = DecisionStats::new();
    for _ in 0..RUNS {
        let config = sample::random_config(N, &mut rng);
        let pattern = sampler.sample(&mut rng);
        let eba = execute(&P0Opt::new(T), &config, &pattern, scenario.horizon()).unwrap();
        let sba = execute(&SbaWaste::new(N, T), &config, &pattern, scenario.horizon()).unwrap();
        eba_stats.record_trace(&eba);
        sba_stats.record_trace(&sba);
    }
    println!("\nmessage level (n={N}, t={T}, {RUNS} sampled runs):");
    println!("  P0opt (EBA):    {eba_stats}");
    println!("  SbaWaste (SBA): {sba_stats}");
    let saved = sba_stats.mean_time().unwrap() - eba_stats.mean_time().unwrap();
    println!("  mean rounds saved by eventual agreement: {saved:.3}");
    assert!(saved > 0.0);

    Ok(())
}
