//! Omission-mode agreement: 0-chains at scale and the optimal `F*`.
//!
//! A sensor network must agree whether any node raised an alarm (0 =
//! alarm, 1 = all clear) while lossy nodes may silently drop outgoing
//! messages. The chain protocol of Section 6.2 decides by round `f + 1`;
//! we sweep the number of actual failures `f`, pit it against the
//! worst-case silence-chain adversary, and — on a small instance — build
//! the knowledge-level optimum `F*` that dominates it.
//!
//! ```text
//! cargo run --release --example omission_chains
//! ```

use eba::prelude::*;
use eba_core::protocols::{f_star, zero_chain_pair};
use eba_model::sample::{self, PatternSampler};
use eba_protocols::ChainOmission;
use eba_sim::stats::DecisionStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 16;
const T: usize = 6;
const RUNS_PER_F: usize = 400;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::new(N, T, FailureMode::Omission, T as u16 + 2)?;
    let protocol = ChainOmission::new(N);
    println!("scenario: {scenario}\n");

    // Sweep the actual number of failures: Proposition 6.4 promises
    // decisions by time f + 1.
    println!("{:<4} {:>10} {:>8} {:>8}", "f", "runs", "mean", "max(≤f+1)");
    let mut rng = StdRng::seed_from_u64(99);
    for f in 0..=T {
        let sampler = PatternSampler::new(scenario).exact_faulty(f);
        let mut stats = DecisionStats::new();
        for _ in 0..RUNS_PER_F {
            // Sparse zeros so decide-1 (the f+1-bounded side) dominates.
            let config = sample::random_config_biased(N, 0.5 / N as f64, &mut rng);
            let pattern = sampler.sample(&mut rng);
            let trace = execute(&protocol, &config, &pattern, scenario.horizon()).unwrap();
            assert!(trace.satisfies_weak_agreement());
            assert!(trace.satisfies_weak_validity());
            for p in trace.nonfaulty() {
                let t = trace.decision_time(p).expect("EBA decides");
                assert!(t.ticks() <= f as u16 + 1, "f+1 bound violated");
            }
            stats.record_trace(&trace);
        }
        println!(
            "{:<4} {:>10} {:>8.3} {:>8}",
            f,
            RUNS_PER_F,
            stats.mean_time().unwrap_or(f64::NAN),
            stats
                .max_time()
                .map_or_else(|| "-".into(), |t| t.to_string()),
        );
    }

    // The worst-case adversary: a silence chain whispering the only alarm
    // down a line of lossy nodes.
    let chain_members: Vec<ProcessorId> = (0..T).map(ProcessorId::new).collect();
    let worst = sample::silence_chain(&scenario, &chain_members);
    let mut config_bits = (1u128 << N) - 1;
    config_bits &= !1; // processor 0 raises the alarm (value 0)
    let config = InitialConfig::from_bits(N, config_bits);
    let trace = execute(&protocol, &config, &worst, scenario.horizon()).unwrap();
    let max = trace
        .last_nonfaulty_decision_time()
        .expect("all nonfaulty decide");
    println!(
        "\nsilence-chain adversary (f = {T}): slowest nonfaulty decision at {max} \
         (bound f+1 = {})",
        T + 1
    );

    // Knowledge level, small instance: F* dominates FIP(Z⁰, O⁰).
    let small = Scenario::new(4, 1, FailureMode::Omission, 3)?;
    let system = GeneratedSystem::exhaustive(&small);
    let mut ctor = Constructor::new(&system);
    let base = zero_chain_pair(&mut ctor);
    let star = f_star(&mut ctor);
    let d_base = FipDecisions::compute(&system, &base, "FIP(Z⁰,O⁰)");
    let d_star = FipDecisions::compute(&system, &star, "F*");
    let dom = dominates(&system, &d_star, &d_base);
    println!("\nknowledge level ({small}):");
    println!("  F* vs FIP(Z⁰,O⁰): {dom}");
    println!("  F* optimal: {}", check_optimality(&mut ctor, &star));
    assert!(dom.dominates);

    Ok(())
}
