//! Bring your own protocol: implement [`Protocol`], validate it with the
//! harness, and measure it against the knowledge-level optimum.
//!
//! The custom protocol here is a plausible-looking "lazy relay": decide 0
//! on learning of a 0 (like `P0`), and decide 1 after two quiet rounds
//! in a row — a stricter (and slower) variant of `P0opt`'s rule (b).
//! The harness shows it is *safe* (agreement + validity, exhaustively)
//! but *not optimal*: the derived `F^{Λ,2}` strictly dominates it, and
//! the Theorem 5.3 conditions pinpoint the slack.
//!
//! ```text
//! cargo run --example custom_protocol
//! ```

use eba::prelude::*;
use eba_core::protocols::f_lambda_2;
use eba_protocols::runner::run_exhaustive;

/// The custom protocol: `P0`'s decide-0 rule plus a double-quiet-round
/// decide-1 rule.
#[derive(Clone, Copy, Debug)]
struct LazyRelay;

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct LazyState {
    knows_zero: bool,
    heard: Vec<ProcSet>, // heard-from set per completed round
    decided: Option<Value>,
}

impl Protocol for LazyRelay {
    type State = LazyState;
    type Message = bool; // "I know of a 0"

    fn name(&self) -> &str {
        "LazyRelay"
    }

    fn initial_state(&self, _p: ProcessorId, _n: usize, value: Value) -> LazyState {
        let knows_zero = value == Value::Zero;
        LazyState {
            knows_zero,
            heard: Vec::new(),
            decided: knows_zero.then_some(Value::Zero),
        }
    }

    fn message(
        &self,
        state: &LazyState,
        _from: ProcessorId,
        _to: ProcessorId,
        _round: Round,
    ) -> Option<bool> {
        Some(state.knows_zero)
    }

    fn transition(
        &self,
        state: &LazyState,
        _p: ProcessorId,
        _round: Round,
        received: &[Option<bool>],
    ) -> LazyState {
        let mut next = state.clone();
        let mut heard = ProcSet::empty();
        for (j, msg) in received.iter().enumerate() {
            if let Some(flag) = msg {
                heard.insert(ProcessorId::new(j));
                next.knows_zero |= flag;
            }
        }
        next.heard.push(heard);
        if next.decided.is_none() {
            if next.knows_zero {
                next.decided = Some(Value::Zero);
            } else if next.heard.len() >= 3 {
                // Two quiet rounds in a row: the same heard-from set three
                // times running.
                let k = next.heard.len();
                if next.heard[k - 1] == next.heard[k - 2] && next.heard[k - 2] == next.heard[k - 3]
                {
                    next.decided = Some(Value::One);
                }
            }
        }
        next
    }

    fn output(&self, state: &LazyState, _p: ProcessorId) -> Option<Value> {
        state.decided
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::new(4, 1, FailureMode::Crash, 5)?;

    // 1. Safety, exhaustively: every initial configuration × every
    //    failure pattern.
    let report = run_exhaustive(&LazyRelay, &scenario);
    println!("exhaustive campaign: {report}");
    assert!(report.safe(), "LazyRelay must satisfy agreement + validity");
    assert!(report.live(), "LazyRelay must decide within the horizon");

    // 2. How far from optimal? Compare with F^{Λ,2} run-by-run.
    let knowledge_scenario = Scenario::new(4, 1, FailureMode::Crash, 3)?;
    let system = GeneratedSystem::exhaustive(&knowledge_scenario);
    let mut ctor = Constructor::new(&system);
    let optimal = f_lambda_2(&mut ctor);
    let d_optimal = FipDecisions::compute(&system, &optimal, "F^{Λ,2}");

    let mut equal = 0u64;
    let mut optimal_earlier = 0u64;
    let mut lazy_earlier = 0u64;
    let mut max_gap = 0u16;
    for run in system.run_ids() {
        let record = system.run(run);
        let trace = execute(&LazyRelay, &record.config, &record.pattern, Time::new(5)).unwrap();
        for p in record.nonfaulty {
            let lazy = trace.decision_time(p).expect("decides by horizon 5");
            let opt = d_optimal
                .decision_time(run, p)
                .expect("the optimum decides within its horizon");
            match opt.cmp(&lazy) {
                std::cmp::Ordering::Less => {
                    optimal_earlier += 1;
                    max_gap = max_gap.max(lazy - opt);
                }
                std::cmp::Ordering::Equal => equal += 1,
                std::cmp::Ordering::Greater => lazy_earlier += 1,
            }
        }
    }
    println!(
        "vs F^{{Λ,2}}: equal={equal} optimal-earlier={optimal_earlier} \
         lazy-earlier={lazy_earlier} max-gap={max_gap} rounds"
    );
    assert_eq!(lazy_earlier, 0, "nothing beats the optimum");
    assert!(optimal_earlier > 0, "LazyRelay leaves rounds on the table");

    // 3. The Theorem 5.3 verdict on the optimum itself.
    println!(
        "F^{{Λ,2}} optimality: {}",
        check_optimality(&mut ctor, &optimal)
    );

    println!("\nconclusion: LazyRelay is safe but dominated — run the two-step");
    println!("construction (Constructor::optimize) to close the gap.");
    Ok(())
}
