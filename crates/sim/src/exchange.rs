//! Executable information exchanges (DESIGN.md §4g).
//!
//! The model layer describes *which* exchange a scenario runs
//! ([`ExchangeKind`]); this module maps the descriptor to an executable
//! implementation: what a processor's time-0 state is, and how one round
//! of receptions advances it. Everything downstream — the system builder,
//! the point store, the knowledge machinery — consumes only interned
//! [`ViewId`]s, so an exchange is exactly a pair of interning kernels:
//!
//! * [`FullInfoExchange`] — the paper's FIP: the state is the hash-consed
//!   view tree, delegated to [`ViewTable::try_leaf`] and the shared
//!   round kernel behind [`crate::try_fip_views`];
//! * [`DigestExchange`] — a bounded who-heard-what summary in the style
//!   of the limited-information-exchange papers (van der Meyden,
//!   arXiv 2508.03418; Alpturer–Ruj, arXiv 2511.22380): per-processor
//!   knowledge sets, a who-heard-from-whom-when contact matrix, and an
//!   optional content fingerprint — `O(n²)` words of state regardless of
//!   the horizon.
//!
//! Dispatch is by enum ([`AnyExchange`]) rather than by generic so
//! [`crate::GeneratedSystem`] stays non-generic and no type parameter
//! ripples into the kripke/core layers.

use crate::view::{try_fip_step, ViewId, ViewTable};
use eba_model::fasthash::FastHasher;
use eba_model::{
    ExchangeKind, FailurePattern, InitialConfig, ModelError, ProcSet, ProcessorId, Round, Scenario,
    Time, Value,
};
use std::hash::Hasher;

/// How many recent rounds of who-heard-from-whom timing a
/// [`DigestState`] retains; see [`DigestState::contact`]. Four rounds
/// cover every `T ≤ t + 2` space the differential suite validates as
/// lossless (`tests/exchange_equivalence.rs`), while deeper horizons
/// forget old timing and coarsen — which is the digest's scale unlock.
pub const CONTACT_WINDOW: u16 = 4;

/// The bounded local state of a [`DigestExchange`] processor: who it has
/// heard about (transitively), who it knows started with 0, one level
/// deeper — the "who-heard-what" of the limited-exchange papers — what it
/// knows *every other processor* knows, and a who-heard-from-whom-*when*
/// contact matrix. The sets are fixed-size bitsets and the matrix is
/// `n × n` round numbers, so the state size is `O(n²)` words regardless
/// of the horizon — that bound (vs. the exponential full-information
/// view tree) is the entire point of the exchange.
///
/// Identity is structural: two digest states intern to the same
/// [`ViewId`] exactly when every field (including the truncated
/// fingerprint) is equal.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DigestState {
    /// The owner.
    pub proc: ProcessorId,
    /// The global clock (part of the local state in a synchronous
    /// system, exactly as for FIP views).
    pub time: Time,
    /// The owner's own initial value.
    pub own_value: Value,
    /// Processors whose initial value the owner has learned.
    pub known_procs: ProcSet,
    /// Processors the owner knows started with 0.
    pub known_zeros: ProcSet,
    /// Processors heard from in the last round (empty at time 0).
    pub heard_from: ProcSet,
    /// `knowledge[j]`: processors whose initial values the owner knows
    /// that `j` had learned, as of the last digest received from `j`
    /// (monotone under merges; `knowledge[owner] = known_procs`).
    pub knowledge: Box<[ProcSet]>,
    /// `zero_knowledge[j]`: processors the owner knows that `j` knew to
    /// have started with 0 (`zero_knowledge[owner] = known_zeros`).
    pub zero_knowledge: Box<[ProcSet]>,
    /// Row-major `n × n` windowed contact matrix: `contact[j·n + k]` is
    /// a bitmask of the rounds within the last [`CONTACT_WINDOW`] rounds
    /// in which the owner knows `j` received a message from `k` (bit
    /// `r − 1` ⇔ round `r`; rounds past 64 saturate onto the top bit).
    /// Merged by pointwise union, then rounds that fell out of the
    /// window are cleared. The recent timing separates runs whose
    /// knowledge sets saturate identically but along different delivery
    /// schedules — e.g. hearing from a crashing processor in rounds 1
    /// and 2 vs. in round 1 only — while the forgetting is what keeps
    /// the reachable state space bounded as the horizon grows: past the
    /// window, delivery histories that agree on their recent suffix and
    /// their knowledge sets intern to the same state.
    pub contact: Box<[u64]>,
    /// Content fingerprint truncated to the exchange's width (0 for
    /// `digest:0`). Computed content-recursively — from the previous
    /// state's fingerprint and the delivered senders' fingerprints — so
    /// it is independent of table interning order, which keeps shard
    /// merges ([`ViewTable::absorb`]) and cold/warm builds consistent.
    pub fingerprint: u64,
}

impl DigestState {
    /// Canonical table-independent rendering, the digest counterpart of
    /// the tree rendering in [`ViewTable::render`]: two digest states
    /// render equally exactly when they are equal.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "d[{}@{} v={} kp={} kz={} hf={}",
            self.proc.index(),
            self.time.ticks(),
            self.own_value,
            self.known_procs,
            self.known_zeros,
            self.heard_from,
        );
        for (km, zk) in self.knowledge.iter().zip(self.zero_knowledge.iter()) {
            let _ = write!(out, "|{km}/{zk}");
        }
        let n = self.knowledge.len();
        let _ = write!(out, " ct=");
        for (j, row) in self.contact.chunks(n).enumerate() {
            if j > 0 {
                out.push(';');
            }
            for (k, mask) in row.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{mask:x}");
            }
        }
        let _ = write!(out, " fp={:016x}]", self.fingerprint);
        out
    }
}

/// An executable information exchange: the interning kernels the system
/// builder runs for every simulated run. Implementations must be
/// deterministic and *Markovian in the interned state* — the time-`m`
/// states must be a function of the time-`m−1` states and the round's
/// deliveries only — which is what makes shard-parallel builds and
/// append-only horizon extension sound.
pub trait Exchange {
    /// The model-level descriptor this implementation executes.
    fn kind(&self) -> ExchangeKind;

    /// Interns the time-0 state of `proc` with initial value `value` in
    /// an `n`-processor system.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExceeded`] if the table is full.
    fn try_leaf(
        &self,
        table: &mut ViewTable,
        proc: ProcessorId,
        n: usize,
        value: Value,
    ) -> Result<ViewId, ModelError>;

    /// Advances every processor's state by one round: `prev_views[p]` is
    /// `p`'s state at `round.start()`, the result holds the states at
    /// `round.end()`. Crashed processors' states freeze (the exchange
    /// must push `prev_views[p]` unchanged), exactly as in the FIP
    /// kernel.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExceeded`] if the table is full.
    fn try_step(
        &self,
        table: &mut ViewTable,
        pattern: &FailurePattern,
        round: Round,
        prev_views: &[ViewId],
    ) -> Result<Vec<ViewId>, ModelError>;
}

/// The paper's full-information protocol as an [`Exchange`]: thin
/// delegation to the hash-consed view-tree kernels.
#[derive(Clone, Copy, Debug, Default)]
pub struct FullInfoExchange;

impl Exchange for FullInfoExchange {
    fn kind(&self) -> ExchangeKind {
        ExchangeKind::FullInformation
    }

    fn try_leaf(
        &self,
        table: &mut ViewTable,
        proc: ProcessorId,
        _n: usize,
        value: Value,
    ) -> Result<ViewId, ModelError> {
        table.try_leaf(proc, value)
    }

    fn try_step(
        &self,
        table: &mut ViewTable,
        pattern: &FailurePattern,
        round: Round,
        prev_views: &[ViewId],
    ) -> Result<Vec<ViewId>, ModelError> {
        try_fip_step(pattern, round, prev_views, table)
    }
}

/// A bounded digest exchange; see the module docs and
/// [`ExchangeKind::Digest`]. Each round a processor sends its
/// [`DigestState`] (size `O(n)` words) instead of its entire history;
/// receivers merge the knowledge sets pointwise.
#[derive(Clone, Copy, Debug)]
pub struct DigestExchange {
    bits: u8,
}

impl DigestExchange {
    /// A digest exchange with the given fingerprint width (`0..=64`,
    /// validated at the model layer).
    #[must_use]
    pub fn new(bits: u8) -> Self {
        DigestExchange { bits }
    }

    fn truncate(&self, fp: u64) -> u64 {
        match self.bits {
            0 => 0,
            64 => fp,
            bits => fp & ((1u64 << bits) - 1),
        }
    }
}

impl Exchange for DigestExchange {
    fn kind(&self) -> ExchangeKind {
        ExchangeKind::Digest { bits: self.bits }
    }

    fn try_leaf(
        &self,
        table: &mut ViewTable,
        proc: ProcessorId,
        n: usize,
        value: Value,
    ) -> Result<ViewId, ModelError> {
        let known_zeros = if value == Value::Zero {
            ProcSet::singleton(proc)
        } else {
            ProcSet::empty()
        };
        let mut knowledge = vec![ProcSet::empty(); n].into_boxed_slice();
        let mut zero_knowledge = vec![ProcSet::empty(); n].into_boxed_slice();
        knowledge[proc.index()] = ProcSet::singleton(proc);
        zero_knowledge[proc.index()] = known_zeros;
        let fingerprint = if self.bits == 0 {
            0
        } else {
            let mut h = FastHasher::default();
            h.write_u8(0x4c); // leaf tag
            h.write_usize(proc.index());
            h.write_u8(value as u8);
            self.truncate(h.finish())
        };
        table.try_digest(DigestState {
            proc,
            time: Time::ZERO,
            own_value: value,
            known_procs: ProcSet::singleton(proc),
            known_zeros,
            heard_from: ProcSet::empty(),
            knowledge,
            zero_knowledge,
            contact: vec![0u64; n * n].into_boxed_slice(),
            fingerprint,
        })
    }

    fn try_step(
        &self,
        table: &mut ViewTable,
        pattern: &FailurePattern,
        round: Round,
        prev_views: &[ViewId],
    ) -> Result<Vec<ViewId>, ModelError> {
        let n = pattern.n();
        debug_assert_eq!(n, prev_views.len());
        let mut now: Vec<ViewId> = Vec::with_capacity(n);
        for receiver in ProcessorId::all(n) {
            // Crash-freeze, identical to the FIP kernel: a crashed
            // processor's interned state stops advancing.
            if pattern.crashed_by(receiver, round.end()) {
                now.push(prev_views[receiver.index()]);
                continue;
            }
            let prev = table
                .digest_state(prev_views[receiver.index()])
                .expect("digest step over non-digest state")
                .clone();
            let mut known_procs = prev.known_procs;
            let mut known_zeros = prev.known_zeros;
            let mut heard_from = ProcSet::empty();
            let mut knowledge = prev.knowledge.clone();
            let mut zero_knowledge = prev.zero_knowledge.clone();
            let mut contact = prev.contact.clone();
            let mut h = (self.bits > 0).then(|| {
                let mut h = FastHasher::default();
                h.write_u8(0x53); // step tag
                h.write_u64(prev.fingerprint);
                h
            });
            for sender in ProcessorId::all(n) {
                if !pattern.delivers(sender, receiver, round) {
                    if let Some(h) = h.as_mut() {
                        h.write_u8(0); // undelivered marker, keeps positions aligned
                    }
                    continue;
                }
                let sent = table
                    .digest_state(prev_views[sender.index()])
                    .expect("digest step over non-digest state");
                known_procs = known_procs | sent.known_procs;
                known_zeros = known_zeros | sent.known_zeros;
                heard_from.insert(sender);
                // Pointwise merge of the who-heard-what matrix, plus the
                // sender's own first-order sets as its row: knowledge is
                // monotone, so union is the correct combination.
                for (mine, theirs) in knowledge.iter_mut().zip(sent.knowledge.iter()) {
                    *mine = *mine | *theirs;
                }
                for (mine, theirs) in zero_knowledge.iter_mut().zip(sent.zero_knowledge.iter()) {
                    *mine = *mine | *theirs;
                }
                knowledge[sender.index()] = knowledge[sender.index()] | sent.known_procs;
                zero_knowledge[sender.index()] = zero_knowledge[sender.index()] | sent.known_zeros;
                // Contact knowledge is monotone, so union is the correct
                // combination, exactly as for the knowledge matrices.
                for (mine, theirs) in contact.iter_mut().zip(sent.contact.iter()) {
                    *mine |= *theirs;
                }
                // The owner's own row is exact: it heard from `sender`
                // in this round.
                contact[receiver.index() * n + sender.index()] |=
                    1u64 << (u32::from(round.number()) - 1).min(63);
                if let Some(h) = h.as_mut() {
                    h.write_u8(1); // delivered marker
                    h.write_u64(sent.fingerprint);
                }
            }
            // Slide the contact window: rounds at or before
            // `round − CONTACT_WINDOW` are forgotten. Every state at a
            // given time applies the same mask, so the forgetting is
            // deterministic and merge-order independent.
            if round.number() > CONTACT_WINDOW {
                let aged = u32::from(round.number() - CONTACT_WINDOW);
                let keep = 1u64.checked_shl(aged).map_or(0, |b| !(b - 1));
                for e in contact.iter_mut() {
                    *e &= keep;
                }
            }
            // Self-knowledge is exact, not an approximation carried over
            // from older digests.
            knowledge[receiver.index()] = known_procs;
            zero_knowledge[receiver.index()] = known_zeros;
            let fingerprint = h.map_or(0, |h| self.truncate(h.finish()));
            now.push(table.try_digest(DigestState {
                proc: receiver,
                time: prev.time.next(),
                own_value: prev.own_value,
                known_procs,
                known_zeros,
                heard_from,
                knowledge,
                zero_knowledge,
                contact,
                fingerprint,
            })?);
        }
        Ok(now)
    }
}

/// Enum dispatch over every shipped exchange, so the generated system and
/// all downstream layers stay non-generic.
#[derive(Clone, Copy, Debug)]
pub enum AnyExchange {
    /// The paper's full-information protocol.
    Full(FullInfoExchange),
    /// A bounded who-heard-what digest.
    Digest(DigestExchange),
}

impl AnyExchange {
    /// The executable exchange for a scenario's descriptor.
    #[must_use]
    pub fn for_scenario(scenario: &Scenario) -> Self {
        match scenario.exchange() {
            ExchangeKind::FullInformation => AnyExchange::Full(FullInfoExchange),
            ExchangeKind::Digest { bits } => AnyExchange::Digest(DigestExchange::new(bits)),
        }
    }
}

impl Exchange for AnyExchange {
    fn kind(&self) -> ExchangeKind {
        match self {
            AnyExchange::Full(e) => e.kind(),
            AnyExchange::Digest(e) => e.kind(),
        }
    }

    fn try_leaf(
        &self,
        table: &mut ViewTable,
        proc: ProcessorId,
        n: usize,
        value: Value,
    ) -> Result<ViewId, ModelError> {
        match self {
            AnyExchange::Full(e) => e.try_leaf(table, proc, n, value),
            AnyExchange::Digest(e) => e.try_leaf(table, proc, n, value),
        }
    }

    fn try_step(
        &self,
        table: &mut ViewTable,
        pattern: &FailurePattern,
        round: Round,
        prev_views: &[ViewId],
    ) -> Result<Vec<ViewId>, ModelError> {
        match self {
            AnyExchange::Full(e) => e.try_step(table, pattern, round, prev_views),
            AnyExchange::Digest(e) => e.try_step(table, pattern, round, prev_views),
        }
    }
}

/// Computes every processor's interned state at every time of the run
/// determined by `(config, pattern)` under `exchange`, up to `horizon` —
/// the exchange-generic form of [`crate::try_fip_views`] (and exactly it
/// when `exchange` is full-information).
///
/// Returns `views[time][proc]`.
///
/// # Errors
///
/// Returns [`ModelError::CapacityExceeded`] if the table fills up.
///
/// # Panics
///
/// Panics if `config` and `pattern` disagree on `n`.
pub fn try_exchange_views<E: Exchange + ?Sized>(
    exchange: &E,
    config: &InitialConfig,
    pattern: &FailurePattern,
    horizon: Time,
    table: &mut ViewTable,
) -> Result<Vec<Vec<ViewId>>, ModelError> {
    let n = config.n();
    assert_eq!(n, pattern.n());
    let mut views: Vec<Vec<ViewId>> = Vec::with_capacity(horizon.index() + 1);
    let mut leaves = Vec::with_capacity(n);
    for p in ProcessorId::all(n) {
        leaves.push(exchange.try_leaf(table, p, n, config.value(p))?);
    }
    views.push(leaves);
    for round in Round::upto(horizon) {
        let prev_views = views.last().expect("time 0 is always present");
        let now = exchange.try_step(table, pattern, round, prev_views)?;
        views.push(now);
    }
    Ok(views)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::FaultyBehavior;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    fn digest_views(
        bits: u8,
        config: &InitialConfig,
        pattern: &FailurePattern,
        horizon: u16,
        table: &mut ViewTable,
    ) -> Vec<Vec<ViewId>> {
        try_exchange_views(
            &DigestExchange::new(bits),
            config,
            pattern,
            Time::new(horizon),
            table,
        )
        .unwrap()
    }

    #[test]
    fn full_info_exchange_matches_fip_views() {
        let config = InitialConfig::from_bits(3, 0b011);
        let pattern = FailurePattern::failure_free(3);
        let mut a = ViewTable::new();
        let via_exchange =
            try_exchange_views(&FullInfoExchange, &config, &pattern, Time::new(2), &mut a).unwrap();
        let mut b = ViewTable::new();
        let direct = crate::try_fip_views(&config, &pattern, Time::new(2), &mut b).unwrap();
        assert_eq!(via_exchange, direct);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn digest_leaf_state() {
        let mut t = ViewTable::new();
        let id = DigestExchange::new(0)
            .try_leaf(&mut t, p(1), 3, Value::Zero)
            .unwrap();
        let s = t.digest_state(id).unwrap();
        assert_eq!(s.proc, p(1));
        assert_eq!(s.known_procs, ProcSet::singleton(p(1)));
        assert_eq!(s.known_zeros, ProcSet::singleton(p(1)));
        assert_eq!(s.knowledge[1], ProcSet::singleton(p(1)));
        assert!(s.knowledge[0].is_empty());
        assert_eq!(s.fingerprint, 0);
        // Derived meta flows through the table accessors.
        assert!(t.exists_zero(id));
        assert!(!t.exists_one(id));
        assert_eq!(t.time(id), Time::ZERO);
    }

    #[test]
    fn digest_failure_free_round_learns_everything() {
        let mut t = ViewTable::new();
        let config = InitialConfig::from_bits(3, 0b011);
        let pattern = FailurePattern::failure_free(3);
        let views = digest_views(0, &config, &pattern, 2, &mut t);
        for (q, &v) in views[1].iter().enumerate() {
            assert_eq!(t.known_procs(v), ProcSet::full(3));
            assert!(t.exists_zero(v));
            assert_eq!(t.heard_from(v), ProcSet::full(3) - ProcSet::singleton(p(q)));
        }
        // After the second round everyone knows that everyone knows all
        // values (the who-heard-what matrix saturates).
        for &v in &views[2] {
            let s = t.digest_state(v).unwrap();
            for j in 0..3 {
                assert_eq!(s.knowledge[j], ProcSet::full(3));
            }
        }
    }

    #[test]
    fn digest_states_equal_across_indistinguishable_runs() {
        // The digest analogue of the FIP interning test: with p0 silent
        // from round 1, the others' digests cannot depend on p0's value.
        let mut t = ViewTable::new();
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
        for bits in [0, 32] {
            let run_a = digest_views(
                bits,
                &InitialConfig::from_bits(3, 0b110),
                &pattern,
                2,
                &mut t,
            );
            let run_b = digest_views(
                bits,
                &InitialConfig::from_bits(3, 0b111),
                &pattern,
                2,
                &mut t,
            );
            for time in 0..=2 {
                for q in 1..3 {
                    assert_eq!(
                        run_a[time][q], run_b[time][q],
                        "bits {bits} time {time} p{q}"
                    );
                }
            }
            assert_ne!(run_a[0][0], run_b[0][0]);
        }
    }

    #[test]
    fn digest_crashed_states_freeze() {
        let mut t = ViewTable::new();
        let pattern = FailurePattern::failure_free(3).with_behavior(
            p(0),
            FaultyBehavior::Crash {
                round: Round::new(1),
                receivers: ProcSet::empty(),
            },
        );
        let views = digest_views(
            0,
            &InitialConfig::uniform(3, Value::One),
            &pattern,
            3,
            &mut t,
        );
        assert_eq!(views[1][0], views[0][0]);
        assert_eq!(views[3][0], views[0][0]);
        assert_ne!(views[1][1], views[0][1]);
    }

    #[test]
    fn digest_contact_window_forgets_old_timing() {
        // Two runs that differ only in a round-1 omission: the windowed
        // contact matrix separates them while round 1 is in the window
        // and merges them once it slides out (knowledge saturates by
        // then, so the timing was the only remaining distinction).
        let horizon = CONTACT_WINDOW + 3;
        let config = InitialConfig::uniform(3, Value::One);
        let clean = FailurePattern::failure_free(3);
        let mut omissions = vec![ProcSet::empty(); horizon as usize];
        omissions[0] = ProcSet::singleton(p(1));
        let lossy = FailurePattern::failure_free(3)
            .with_behavior(p(0), FaultyBehavior::Omission { omissions });
        let mut t = ViewTable::new();
        let run_a = digest_views(0, &config, &clean, horizon, &mut t);
        let run_b = digest_views(0, &config, &lossy, horizon, &mut t);
        for time in 1..=(CONTACT_WINDOW as usize) {
            assert_ne!(run_a[time][1], run_b[time][1], "time {time}");
        }
        for time in (CONTACT_WINDOW as usize + 1)..=(horizon as usize) {
            assert_eq!(run_a[time][1], run_b[time][1], "time {time}");
        }
        // Full information never forgets: the same two runs stay
        // distinguishable for p1 forever.
        let mut ft = ViewTable::new();
        let full_a = crate::try_fip_views(&config, &clean, Time::new(horizon), &mut ft).unwrap();
        let full_b = crate::try_fip_views(&config, &lossy, Time::new(horizon), &mut ft).unwrap();
        assert_ne!(full_a[horizon as usize][1], full_b[horizon as usize][1]);
    }

    #[test]
    fn digest_fingerprints_are_table_order_independent() {
        // Interleaving unrelated interning before a run must not change
        // the digest states' content (fingerprints are content-recursive,
        // not id-based).
        let config = InitialConfig::from_bits(3, 0b101);
        let pattern = FailurePattern::failure_free(3);
        let mut clean = ViewTable::new();
        let run_clean = digest_views(64, &config, &pattern, 2, &mut clean);
        let mut noisy = ViewTable::new();
        digest_views(
            64,
            &InitialConfig::uniform(3, Value::One),
            &pattern,
            2,
            &mut noisy,
        );
        let run_noisy = digest_views(64, &config, &pattern, 2, &mut noisy);
        for time in 0..=2 {
            for q in 0..3 {
                assert_eq!(
                    clean.render(run_clean[time][q]),
                    noisy.render(run_noisy[time][q]),
                    "time {time} p{q}"
                );
            }
        }
    }

    #[test]
    fn digest_absorb_round_trips() {
        // Digest states survive shard absorption unchanged (no remap).
        let config = InitialConfig::from_bits(3, 0b010);
        let pattern = FailurePattern::failure_free(3);
        let mut shard = ViewTable::new();
        let views = digest_views(32, &config, &pattern, 2, &mut shard);
        let mut merged = ViewTable::new();
        let remap = merged.absorb(&shard).unwrap();
        for row in &views {
            for &v in row {
                assert_eq!(shard.render(v), merged.render(remap[v.index()]));
            }
        }
    }

    #[test]
    fn any_exchange_dispatches_by_scenario() {
        let full = Scenario::new(3, 1, eba_model::FailureMode::Crash, 2).unwrap();
        assert!(matches!(
            AnyExchange::for_scenario(&full),
            AnyExchange::Full(_)
        ));
        let digest = full
            .with_exchange(ExchangeKind::Digest { bits: 8 })
            .unwrap();
        let e = AnyExchange::for_scenario(&digest);
        assert!(matches!(e, AnyExchange::Digest(_)));
        assert_eq!(e.kind(), ExchangeKind::Digest { bits: 8 });
    }
}
