//! Reference fixed-point implementations of `C_S` and `C□_S`, used for
//! differential testing of the union-find reachability engine.
//!
//! The paper defines `C_S φ` as the infinite conjunction `⋀_k E_S^k φ`,
//! equivalently the greatest fixed point of `X ↔ E_S(φ ∧ X)`, and
//! `C□_S φ` as the greatest fixed point of `X ↔ E□_S(φ ∧ X)`
//! (Section 3.3). On a finite system the greatest fixed point is reached
//! by iterating from `True`, which is what these functions do — slowly
//! but by-the-definition. [`crate::Evaluator`] computes the same
//! operators via reachability components (Proposition 3.2 /
//! Corollary 3.3); the `gfp_agrees_with_reachability` tests and the
//! property suite check the two agree bit-for-bit.
//!
//! The iteration itself always runs on the dense word representation,
//! regardless of the session's [`crate::SetReprKind`]: the shared
//! node-table backend is a storage/interning layer behind the
//! [`crate::KnowledgeCache`], and gfp intermediates are deliberately
//! never interned so the fixpoint path stays an independent oracle (see
//! `crate::plan`). Iteration counts are therefore identical across
//! backends by construction.

use crate::bitset::Bitset;
use crate::{Evaluator, Formula, NonRigidSet};
use eba_model::{ArmedBudget, BudgetHit, ModelError, RunBudget, Time};
use std::fmt;
use std::sync::Arc;

/// Why a governed fixpoint iteration stopped before converging.
#[derive(Clone, Debug)]
pub enum GfpInterrupt {
    /// The budget ran out mid-iteration (wall-clock deadline).
    Budget(BudgetHit),
    /// The evaluator could not intern another intermediate predicate
    /// (point-predicate id space exhausted).
    Model(ModelError),
}

impl fmt::Display for GfpInterrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfpInterrupt::Budget(hit) => write!(f, "fixpoint iteration stopped: {hit}"),
            GfpInterrupt::Model(e) => write!(f, "fixpoint iteration failed: {e}"),
        }
    }
}

impl std::error::Error for GfpInterrupt {}

/// Computes `C_S φ` by greatest-fixed-point iteration of
/// `X ← E_S(φ ∧ X)`, starting from `True`.
///
/// Returns the satisfaction bitset and the number of iterations needed
/// (including the final confirming pass).
pub fn common_by_gfp(eval: &mut Evaluator<'_>, s: NonRigidSet, phi: &Formula) -> (Bitset, usize) {
    unlimited(gfp(eval, phi, s, false, &RunBudget::unlimited().arm()))
}

/// Computes `C□_S φ` by greatest-fixed-point iteration of
/// `X ← E□_S(φ ∧ X)` where `E□_S ψ = □̄ E_S ψ`.
pub fn continual_common_by_gfp(
    eval: &mut Evaluator<'_>,
    s: NonRigidSet,
    phi: &Formula,
) -> (Bitset, usize) {
    unlimited(gfp(eval, phi, s, true, &RunBudget::unlimited().arm()))
}

/// [`common_by_gfp`] under a budget: the deadline is checked once per
/// iteration, and intermediate-predicate interning surfaces typed
/// capacity errors instead of aborting.
///
/// # Errors
///
/// Returns [`GfpInterrupt::Budget`] when the budget ran out and
/// [`GfpInterrupt::Model`] when the evaluator's id space overflowed.
pub fn common_by_gfp_governed(
    eval: &mut Evaluator<'_>,
    s: NonRigidSet,
    phi: &Formula,
    budget: &ArmedBudget,
) -> Result<(Bitset, usize), GfpInterrupt> {
    gfp(eval, phi, s, false, budget)
}

/// [`continual_common_by_gfp`] under a budget; see
/// [`common_by_gfp_governed`].
///
/// # Errors
///
/// Returns [`GfpInterrupt::Budget`] when the budget ran out and
/// [`GfpInterrupt::Model`] when the evaluator's id space overflowed.
pub fn continual_common_by_gfp_governed(
    eval: &mut Evaluator<'_>,
    s: NonRigidSet,
    phi: &Formula,
    budget: &ArmedBudget,
) -> Result<(Bitset, usize), GfpInterrupt> {
    gfp(eval, phi, s, true, budget)
}

/// Unwraps a governed result produced under an unlimited budget, where
/// interruption is impossible in practice (a budget never fires; id
/// exhaustion needs 2³² iterations).
fn unlimited(result: Result<(Bitset, usize), GfpInterrupt>) -> (Bitset, usize) {
    match result {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Iterates `X ← E_S(φ ∧ X)` (boxed: `X ← □̄ E_S(φ ∧ X)`) from `X = True`
/// until stable, checking the budget's deadline cooperatively at each
/// iteration.
///
/// In plan mode (the evaluator default) the loop runs as the compiled
/// `GfpIter` kernel — a native bitset iteration over the columnar point
/// store that never constructs intermediate formulas (see
/// [`crate::plan`]); with batch mode on, the iteration's scope columns
/// and every nonrigid set of `φ`'s plan are resolved up front by one
/// [`crate::reach::BatchBuilder`] sweep. Otherwise the intermediate `X`
/// is injected into
/// formulas as a registered point predicate, so each iteration is a
/// single evaluator pass; the evaluator cache is still effective for the
/// `φ` sub-evaluation. Both paths perform the same iteration sequence
/// and return bit-identical results and iteration counts.
fn gfp(
    eval: &mut Evaluator<'_>,
    phi: &Formula,
    s: NonRigidSet,
    boxed: bool,
    budget: &ArmedBudget,
) -> Result<(Bitset, usize), GfpInterrupt> {
    if eval.plan_mode() {
        return crate::plan::gfp(eval, s, phi, boxed, budget);
    }
    let step = |inner: Formula| {
        if boxed {
            inner.everyone_box(s)
        } else {
            inner.everyone(s)
        }
    };
    let mut current = Bitset::new_true(eval.num_points());
    let mut iterations = 0;
    loop {
        budget.check_deadline().map_err(GfpInterrupt::Budget)?;
        iterations += 1;
        let x_id = eval
            .try_register_point_pred(current.clone())
            .map_err(GfpInterrupt::Model)?;
        let formula = step(phi.clone().and(Formula::PointPred(x_id)));
        let next = Arc::unwrap_or_clone(eval.eval(&formula));
        if next == current {
            return Ok((current, iterations));
        }
        current = next;
    }
}

/// Computes the bounded conjunction `⋀_{k=1..depth} E_S^k φ` — the
/// textbook definition of common knowledge truncated at `depth`. On a
/// finite system, `C_S φ` equals the value of this at any depth at least
/// the number of distinct `(i, view)` buckets; the tests use it to
/// cross-check small instances directly against the definition.
pub fn everyone_iterated(
    eval: &mut Evaluator<'_>,
    s: NonRigidSet,
    phi: &Formula,
    depth: usize,
) -> Bitset {
    let mut conjunction = Bitset::new_true(eval.num_points());
    let mut layer = phi.clone();
    for _ in 0..depth {
        layer = layer.everyone(s);
        conjunction &= &eval.eval(&layer);
    }
    conjunction
}

/// A convenience report for diffing two satisfaction sets: the number of
/// points where they disagree and a sample point.
#[must_use]
pub fn diff(eval: &Evaluator<'_>, a: &Bitset, b: &Bitset) -> Option<(usize, (usize, Time))> {
    let mut mismatches = 0;
    let mut sample = None;
    for idx in 0..a.len() {
        if a.get(idx) != b.get(idx) {
            mismatches += 1;
            if sample.is_none() {
                let (run, time) = eval.point_of(idx);
                sample = Some((run.index(), time));
            }
        }
    }
    sample.map(|s| (mismatches, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_model::{FailureMode, ProcessorId, Scenario, Value};
    use eba_sim::GeneratedSystem;

    fn systems() -> Vec<GeneratedSystem> {
        vec![
            GeneratedSystem::exhaustive(&Scenario::new(3, 1, FailureMode::Crash, 2).unwrap()),
            GeneratedSystem::exhaustive(&Scenario::new(3, 1, FailureMode::Omission, 2).unwrap()),
        ]
    }

    fn formulas() -> Vec<Formula> {
        vec![
            Formula::exists(Value::Zero),
            Formula::exists(Value::One),
            Formula::exists(Value::Zero).not(),
            Formula::exists(Value::One).known_by(ProcessorId::new(0)),
            Formula::False,
            Formula::True,
        ]
    }

    #[test]
    fn gfp_agrees_with_reachability_for_common_knowledge() {
        for system in systems() {
            for phi in formulas() {
                let mut eval = Evaluator::new(&system);
                let via_reach = eval.eval(&phi.clone().common(NonRigidSet::Nonfaulty));
                let (via_gfp, iters) = common_by_gfp(&mut eval, NonRigidSet::Nonfaulty, &phi);
                assert!(iters < 50, "gfp failed to converge quickly");
                assert_eq!(
                    diff(&eval, &via_reach, &via_gfp),
                    None,
                    "C_N({phi}) differs between union-find and gfp"
                );
            }
        }
    }

    #[test]
    fn gfp_agrees_with_reachability_for_continual_common_knowledge() {
        for system in systems() {
            for phi in formulas() {
                let mut eval = Evaluator::new(&system);
                let via_reach = eval.eval(&phi.clone().continual_common(NonRigidSet::Nonfaulty));
                let (via_gfp, _) = continual_common_by_gfp(&mut eval, NonRigidSet::Nonfaulty, &phi);
                assert_eq!(
                    diff(&eval, &via_reach, &via_gfp),
                    None,
                    "C□_N({phi}) differs between union-find and gfp"
                );
            }
        }
    }

    #[test]
    fn iterated_everyone_converges_to_common_knowledge() {
        for system in systems() {
            let phi = Formula::exists(Value::Zero);
            let mut eval = Evaluator::new(&system);
            let exact = eval.eval(&phi.clone().common(NonRigidSet::Nonfaulty));
            // E^k must be ⊇ C for every k, and equal for large k.
            for depth in 1..=3 {
                let approx = everyone_iterated(&mut eval, NonRigidSet::Nonfaulty, &phi, depth);
                assert!(exact.is_subset(&approx), "C ⊆ E^{depth} violated");
            }
            let deep = everyone_iterated(&mut eval, NonRigidSet::Nonfaulty, &phi, 64);
            assert_eq!(diff(&eval, &exact, &deep), None);
        }
    }

    #[test]
    fn governed_gfp_with_unlimited_budget_matches_ungoverned() {
        for system in systems() {
            for phi in formulas() {
                let mut eval = Evaluator::new(&system);
                let budget = eba_model::RunBudget::unlimited().arm();
                let (plain, plain_iters) = common_by_gfp(&mut eval, NonRigidSet::Nonfaulty, &phi);
                let (governed, governed_iters) =
                    common_by_gfp_governed(&mut eval, NonRigidSet::Nonfaulty, &phi, &budget)
                        .unwrap();
                assert_eq!(plain, governed, "C_N({phi}) differs under a no-op budget");
                assert_eq!(plain_iters, governed_iters);
                let (plain_box, _) =
                    continual_common_by_gfp(&mut eval, NonRigidSet::Nonfaulty, &phi);
                let (governed_box, _) = continual_common_by_gfp_governed(
                    &mut eval,
                    NonRigidSet::Nonfaulty,
                    &phi,
                    &budget,
                )
                .unwrap();
                assert_eq!(plain_box, governed_box);
            }
        }
    }

    #[test]
    fn governed_gfp_honors_an_expired_deadline() {
        let system = &systems()[0];
        let mut eval = Evaluator::new(system);
        let budget = eba_model::RunBudget::unlimited()
            .with_deadline(std::time::Duration::ZERO)
            .arm();
        let phi = Formula::exists(Value::Zero);
        let err =
            common_by_gfp_governed(&mut eval, NonRigidSet::Nonfaulty, &phi, &budget).unwrap_err();
        match err {
            GfpInterrupt::Budget(eba_model::BudgetHit::Deadline { .. }) => {}
            other => panic!("expected a deadline hit, got {other}"),
        }
    }

    #[test]
    fn gfp_with_empty_set_is_all_true() {
        let system = &systems()[0];
        let mut eval = Evaluator::new(system);
        let empty = eval.register_state_sets(crate::StateSets::empty(3));
        let s = NonRigidSet::NonfaultyAnd(empty);
        let (set, _) = continual_common_by_gfp(&mut eval, s, &Formula::False);
        assert!(set.all(), "C□ over an empty nonrigid set must be vacuous");
    }
}
