//! EXP9 companion: wall-clock cost of one simulated run for each
//! message-level protocol, across system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_model::sample::{self, PatternSampler};
use eba_model::{FailureMode, FailurePattern, InitialConfig, Scenario};
use eba_protocols::{ChainOmission, EarlyStoppingCrash, FloodMin, P0Opt, Relay};
use eba_sim::{execute_unchecked, Protocol};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sampled_runs(
    scenario: &Scenario,
    count: usize,
    seed: u64,
) -> Vec<(InitialConfig, FailurePattern)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = PatternSampler::new(*scenario);
    (0..count)
        .map(|_| {
            (
                sample::random_config_biased(scenario.n(), 1.0 / scenario.n() as f64, &mut rng),
                sampler.sample(&mut rng),
            )
        })
        .collect()
}

fn bench_protocol<P: Protocol>(
    c: &mut Criterion,
    group_name: &str,
    protocol: &P,
    scenario: &Scenario,
) {
    let runs = sampled_runs(scenario, 32, 17);
    let mut group = c.benchmark_group(group_name);
    group.bench_with_input(
        BenchmarkId::new(protocol.name().to_owned(), scenario.n()),
        &runs,
        |b, runs| {
            b.iter(|| {
                for (config, pattern) in runs {
                    black_box(execute_unchecked(
                        protocol,
                        config,
                        pattern,
                        scenario.horizon(),
                    ));
                }
            });
        },
    );
    group.finish();
}

fn protocol_scaling(c: &mut Criterion) {
    for n in [8usize, 32, 64] {
        let t = n / 4;
        let crash = Scenario::new(n, t, FailureMode::Crash, t as u16 + 2).expect("valid scenario");
        let omission =
            Scenario::new(n, t, FailureMode::Omission, t as u16 + 2).expect("valid scenario");
        bench_protocol(c, "crash_32runs", &Relay::p0(t), &crash);
        bench_protocol(c, "crash_32runs", &P0Opt::new(t), &crash);
        bench_protocol(c, "crash_32runs", &EarlyStoppingCrash::new(t), &crash);
        bench_protocol(c, "crash_32runs", &FloodMin::new(t), &crash);
        bench_protocol(c, "omission_32runs", &ChainOmission::new(n), &omission);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = protocol_scaling
}
criterion_main!(benches);
