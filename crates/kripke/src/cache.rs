//! A knowledge cache shared across evaluators over the same system.
//!
//! Computing the [`Reachability`] structure of a nonrigid set is the
//! dominant cost of evaluating `C_S`/`C□_S` formulas. Within one
//! [`Evaluator`](crate::Evaluator) it is memoized per [`NonRigidSet`], but
//! the ids inside a `NonRigidSet::NonfaultyAnd` are evaluator-relative, so
//! that memo cannot be handed to another evaluator. [`KnowledgeCache`]
//! closes the gap: it keys reachability by the *content* of the nonrigid
//! set ([`ReachKey`]) and can therefore be shared — cheaply cloned — among
//! any number of evaluators, including the fresh evaluators the
//! construction pipeline spins up per optimization step. Lookups take a
//! mutex, but only on the first request per `(evaluator, set)` pair; after
//! that the evaluator's local memo answers. The compiled evaluation plans
//! (`plan` module) share their per-processor *scope columns* here too,
//! under the same content keys.
//!
//! Content keys can be expensive to canonicalize and to hash (a
//! `NonfaultyAnd` key carries every view of a state-set family), so the
//! cache works with **pre-hashed** keys ([`HashedReachKey`]): the
//! evaluator canonicalizes and hashes a set once, then reuses that digest
//! across its staged reachability *and* scope lookups, and across the
//! get/insert pair of a miss. Internally entries live in buckets keyed by
//! the digest, with full-key equality resolving (astronomically unlikely)
//! collisions.
//!
//! Scope columns are additionally **interned by content**: two distinct
//! nonrigid sets that resolve to identical per-processor membership
//! vectors (common in crash/omission sweeps that keep rebuilding
//! `N − F(r, t)`-style sets under fresh state-set families) share one
//! `Arc` instead of storing duplicate column vectors.
//!
//! [`KnowledgeCache::stats`] exposes hit/miss/dedup counters; the CLI
//! prints them under `eba-check --cache-stats`.
//!
//! A cache is only meaningful for evaluators over the **same generated
//! system**: reachability indexes the system's points. Sharing one across
//! unrelated systems is caught in debug builds (the point counts
//! disagree) but is undefined behaviorally in release builds — make a new
//! cache per system. The one sanctioned way to carry a cache handle
//! across systems is the incremental engine's **epoch** mechanism: when a
//! session extends its system's horizon it calls
//! [`KnowledgeCache::advance_epoch`], which invalidates every
//! point-indexed entry (they are sized to the old system) while
//! preserving the handle, its clones, and its counters.
//!
//! # Set-representation backends
//!
//! A cache is constructed for one [`SetReprKind`]
//! ([`KnowledgeCache::with_repr`]; the default is dense) and every
//! evaluator wired to it inherits the choice. Under the **shared**
//! backend the cache owns a [`NodeTable`] and stores its set-typed
//! content through it: `NonfaultyAnd` content keys become
//! [`ReachSel::SharedFamily`] root vectors, and scope columns are stored
//! as per-processor roots (materialized back to dense bitsets on
//! lookup — each evaluator materializes a set at most once, into its
//! local memo). All *computation* stays dense, which is what keeps the
//! two backends bit-identical; see [`crate::setrepr`] for the
//! discipline. The node table's bytes are part of
//! [`CacheStats::resident_bytes`], and its lifetime is fenced exactly
//! like every other entry: epoch advances and [`KnowledgeCache::clear`]
//! drop it wholesale, so no stale root id can ever be re-resolved.

use crate::bitset::Bitset;
use crate::eval::Reachability;
use crate::setrepr::{NodeTable, SetReprKind, SetReprStats, SharedWords};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-processor scope columns of a nonrigid set: entry `p` is the set of
/// points at which processor `p` belongs to `S(r, k)`. Built once per
/// `(system, set)` by the compiled-plan kernels and shared here alongside
/// reachability, under the same content key.
pub type ScopeColumns = Arc<Vec<Bitset>>;

/// The content of a nonrigid set, independent of any evaluator's id
/// numbering, qualified by the **exchange fingerprint** of the system it
/// was evaluated over ([`eba_model::ExchangeKind::fingerprint`]): a view
/// membership word is only meaningful relative to the interned state
/// space, and full-info and digest systems over the same scenario shape
/// have unrelated state spaces — without the fingerprint their
/// content-independent keys (`Everyone`, `Nonfaulty`) would collide.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct ReachKey {
    /// The exchange fingerprint of the generated system.
    pub(crate) exchange: u64,
    /// The symmetry fence: `0` for an unreduced system, the
    /// [`eba_sim::symmetry::ViewClasses::fingerprint`] of the quotiented
    /// system otherwise. A quotiented system and the unreduced system of
    /// the same scenario share exchange fingerprints but index entirely
    /// different point spaces (and their reachability partitions answer
    /// different questions), so their entries must never be
    /// interchangeable even when one cache handle is shared across both
    /// (the session's asymmetric-formula fallback does exactly that).
    pub(crate) symmetry: u64,
    /// Which nonrigid set, by content.
    pub(crate) sel: ReachSel,
}

/// The selector half of a [`ReachKey`]: the `NonfaultyAnd` variant
/// carries the per-processor membership words of the state-set family
/// ([`crate::nonrigid::ViewSet::words`], trimmed and therefore
/// canonical).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum ReachSel {
    Everyone,
    Nonfaulty,
    NonfaultyAnd(Vec<Box<[u64]>>),
    /// The shared-backend form of `NonfaultyAnd`: per-processor roots in
    /// the cache's [`NodeTable`]. Interning is canonical, so root
    /// equality **is** content equality — but only within the table that
    /// issued the roots, which is why a cache and its table are
    /// constructed (and epoch-cleared) as one unit and handles never
    /// cross caches.
    SharedFamily(Vec<SharedWords>),
}

/// The key-side heap bytes of a selector — the resident cost of keeping
/// a registered family's content addressable. Only word payloads are
/// counted (dense: the membership words; shared: the root handles),
/// mirroring the value-side accounting, which ignores container
/// overhead.
fn sel_bytes(sel: &ReachSel) -> usize {
    match sel {
        ReachSel::Everyone | ReachSel::Nonfaulty => 0,
        ReachSel::NonfaultyAnd(families) => families
            .iter()
            .map(|words| words.len() * std::mem::size_of::<u64>())
            .sum(),
        ReachSel::SharedFamily(roots) => roots.len() * std::mem::size_of::<SharedWords>(),
    }
}

/// A [`ReachKey`] paired with its content digest, computed **once** at
/// construction. Every cache operation — reachability get, reachability
/// insert, scope get, scope insert — reuses the digest instead of
/// re-hashing the (potentially large) key.
#[derive(Clone, Debug)]
pub(crate) struct HashedReachKey {
    hash: u64,
    key: ReachKey,
}

impl HashedReachKey {
    pub(crate) fn new(key: ReachKey) -> Self {
        // FNV-1a over the canonical content: one multiply-xor per
        // membership *word* (64 views), not per view. Digests are
        // deterministic, which is all an in-memory cache needs;
        // collisions are resolved by full-key equality in the bucket
        // maps.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            hash ^= x;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        // The exchange and symmetry fingerprints are mixed first so the
        // selector tags below stay distinct per (exchange, symmetry)
        // combination.
        mix(key.exchange);
        mix(key.symmetry);
        match &key.sel {
            ReachSel::Everyone => mix(1),
            ReachSel::Nonfaulty => mix(2),
            ReachSel::NonfaultyAnd(families) => {
                mix(3);
                for words in families {
                    mix(words.len() as u64);
                    for &w in words.iter() {
                        mix(w);
                    }
                }
            }
            // Roots are canonical within the owning table, so the digest
            // over root ids is as content-determined as the dense digest
            // over words — and O(n) instead of O(family words).
            ReachSel::SharedFamily(roots) => {
                mix(4);
                for r in roots {
                    mix((u64::from(r.root().raw()) << 32) | u64::from(r.len_words() as u32));
                }
            }
        }
        HashedReachKey { hash, key }
    }
}

/// Digest-keyed bucket map: entries whose keys share a digest live in one
/// bucket and are resolved by full-key equality. Every entry is tagged
/// with the cache **epoch** it was inserted under; lookups only serve
/// entries of the current epoch (see [`KnowledgeCache::advance_epoch`]).
type BucketMap<V> = HashMap<u64, Vec<(ReachKey, u64, V)>>;

fn bucket_get<V: Clone>(map: &BucketMap<V>, key: &HashedReachKey, epoch: u64) -> Option<V> {
    map.get(&key.hash)?
        .iter()
        .find(|(k, e, _)| *e == epoch && *k == key.key)
        .map(|(_, _, v)| v.clone())
}

fn bucket_insert<V>(map: &mut BucketMap<V>, key: &HashedReachKey, epoch: u64, value: V) {
    let bucket = map.entry(key.hash).or_default();
    match bucket.iter_mut().find(|(k, _, _)| *k == key.key) {
        Some(slot) => {
            slot.1 = epoch;
            slot.2 = value;
        }
        None => bucket.push((key.key.clone(), epoch, value)),
    }
}

/// Monotonic counters behind [`CacheStats`]; shared by all clones of a
/// cache handle.
#[derive(Debug, Default)]
struct Counters {
    reach_hits: AtomicU64,
    reach_misses: AtomicU64,
    scope_hits: AtomicU64,
    scope_misses: AtomicU64,
    scope_interned: AtomicU64,
    scope_deduped: AtomicU64,
    epoch_invalidated: AtomicU64,
}

/// A snapshot of a [`KnowledgeCache`]'s counters; see
/// [`KnowledgeCache::stats`]. Hits count both evaluator-local memo hits
/// and shared-cache hits (the work was saved either way); misses count
/// fresh computations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Reachability lookups answered from a memo or the shared cache.
    pub reach_hits: u64,
    /// Reachability structures computed fresh.
    pub reach_misses: u64,
    /// Scope-column lookups answered from a memo or the shared cache.
    pub scope_hits: u64,
    /// Scope-column vectors extracted fresh.
    pub scope_misses: u64,
    /// Distinct scope-column contents held by the interning pool.
    pub scope_interned: u64,
    /// Freshly extracted scope-column vectors that matched an interned
    /// entry and were deduplicated to a shared `Arc`.
    pub scope_deduped: u64,
    /// The cache's current epoch (how many times
    /// [`KnowledgeCache::advance_epoch`] has run).
    pub epoch: u64,
    /// Point-indexed entries dropped by epoch advances over the cache's
    /// lifetime.
    pub invalidated: u64,
    /// Approximate resident heap bytes of the currently cached
    /// structures: every live reachability structure, every *distinct*
    /// interned scope-column vector (shared `Arc`s count once), the
    /// content payload of every stored key (a registered family's
    /// membership words — or its root handles under the shared backend),
    /// and the shared backend's node table. Computed on demand by
    /// walking the cache, so it reflects the moment of the
    /// [`KnowledgeCache::stats`] call; the serve pool's eviction budget
    /// is driven by this figure plus
    /// `GeneratedSystem::approx_resident_bytes`.
    pub resident_bytes: u64,
    /// Which set-representation backend the cache runs.
    pub set_repr: SetReprKind,
    /// Shared backend only: nodes resident in the table (0 under dense).
    pub nodes: u64,
    /// Shared backend only: cons requests answered by an existing node.
    pub node_dedup_hits: u64,
    /// Shared backend only: cons requests that created a fresh node.
    pub node_fresh: u64,
    /// Shared backend only: `apply` sub-combinations served from the
    /// operation memo.
    pub node_memo_hits: u64,
}

impl CacheStats {
    /// Fraction of shared-backend cons requests answered structurally
    /// (0.0 under the dense backend or on an untouched table).
    #[must_use]
    pub fn node_dedup_ratio(&self) -> f64 {
        let total = self.node_dedup_hits + self.node_fresh;
        if total == 0 {
            0.0
        } else {
            self.node_dedup_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reachability {} hits / {} misses; scope columns {} hits / {} misses; \
             interned scopes {} unique / {} deduped; epoch {} ({} invalidated); \
             resident ~{} bytes",
            self.reach_hits,
            self.reach_misses,
            self.scope_hits,
            self.scope_misses,
            self.scope_interned,
            self.scope_deduped,
            self.epoch,
            self.invalidated,
            self.resident_bytes,
        )?;
        // Dense output is unchanged (byte-identical to earlier releases);
        // the shared backend appends its node-table counters.
        if self.set_repr == SetReprKind::Shared {
            write!(
                f,
                "; shared repr {} nodes ({} deduped / {} fresh, {:.2} ratio), {} memo hits",
                self.nodes,
                self.node_dedup_hits,
                self.node_fresh,
                self.node_dedup_ratio(),
                self.node_memo_hits,
            )?;
        }
        Ok(())
    }
}

/// A shareable, thread-safe memo of [`Reachability`] structures; see the
/// module docs. Cloning is cheap and clones share the same storage.
///
/// # Example
///
/// ```
/// use eba_kripke::{Evaluator, KnowledgeCache, NonRigidSet};
/// use eba_model::{FailureMode, Scenario};
/// use eba_sim::GeneratedSystem;
///
/// # fn main() -> Result<(), eba_model::ModelError> {
/// let scenario = Scenario::new(3, 1, FailureMode::Crash, 2)?;
/// let system = GeneratedSystem::exhaustive(&scenario);
/// let cache = KnowledgeCache::new();
/// let mut first = Evaluator::with_cache(&system, cache.clone());
/// first.reachability(NonRigidSet::Nonfaulty); // computed
/// let mut second = Evaluator::with_cache(&system, cache.clone());
/// second.reachability(NonRigidSet::Nonfaulty); // served from the cache
/// assert_eq!(cache.len(), 1);
/// assert_eq!(cache.stats().reach_misses, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct KnowledgeCache {
    reach: Arc<Mutex<BucketMap<Arc<Reachability>>>>,
    scopes: Arc<Mutex<ScopeStore>>,
    counters: Arc<Counters>,
    /// The current epoch; entries inserted under an older epoch are never
    /// served (see [`KnowledgeCache::advance_epoch`]).
    epoch: Arc<AtomicU64>,
    /// Which set-representation backend this cache (and everything wired
    /// to it) runs; fixed at construction.
    repr: SetReprKind,
    /// The shared backend's node table; present iff `repr` is
    /// [`SetReprKind::Shared`]. Paired with the cache for life: every
    /// [`SharedWords`] stored in a key or scope entry resolves against
    /// exactly this table, and both are purged together on epoch
    /// advances.
    nodes: Option<Arc<Mutex<NodeTable>>>,
}

/// One stored scope-column entry: dense columns outright, or per-processor
/// node-table roots under the shared backend (plus the column bit length,
/// needed to rebuild the bitsets on materialization).
#[derive(Clone, Debug)]
enum ScopeEntry {
    Dense(ScopeColumns),
    Shared { roots: Arc<Vec<SharedWords>>, bits: usize },
}

/// Scope-column storage: the key-addressed map plus the content-addressed
/// interning pool. The dense pool holds digest buckets of distinct column
/// vectors; the shared pool only needs root vectors (roots are canonical,
/// so dedup is set membership).
#[derive(Debug, Default)]
struct ScopeStore {
    by_key: BucketMap<ScopeEntry>,
    pool: HashMap<u64, Vec<ScopeColumns>>,
    shared_pool: HashSet<Vec<SharedWords>>,
}

impl KnowledgeCache {
    /// An empty cache on the dense (default) backend.
    #[must_use]
    pub fn new() -> Self {
        KnowledgeCache::default()
    }

    /// An empty cache on the given backend; see the module docs and
    /// [`crate::setrepr`].
    #[must_use]
    pub fn with_repr(repr: SetReprKind) -> Self {
        KnowledgeCache {
            repr,
            nodes: (repr == SetReprKind::Shared)
                .then(|| Arc::new(Mutex::new(NodeTable::new()))),
            ..KnowledgeCache::default()
        }
    }

    /// Which set-representation backend the cache runs.
    #[must_use]
    pub fn set_repr(&self) -> SetReprKind {
        self.repr
    }

    /// The shared backend's node table (`None` under dense). Crate
    /// internals lock it to intern keys and plan results; handles it
    /// issues must never meet another cache.
    pub(crate) fn node_table(&self) -> Option<&Arc<Mutex<NodeTable>>> {
        self.nodes.as_ref()
    }

    /// A snapshot of the shared backend's node-table counters (`None`
    /// under the dense backend).
    ///
    /// # Panics
    ///
    /// Panics if the node-table mutex is poisoned.
    #[must_use]
    pub fn node_stats(&self) -> Option<SetReprStats> {
        self.nodes
            .as_ref()
            .map(|t| t.lock().expect("node table poisoned").stats())
    }

    /// Number of reachability structures currently cached.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reach
            .lock()
            .expect("knowledge cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether nothing is cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the cache's hit/miss/interning counters. Counters
    /// are monotonic over the cache's lifetime and survive [`clear`]
    /// (which drops entries, not history).
    ///
    /// [`clear`]: KnowledgeCache::clear
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let c = &self.counters;
        let node = self.node_stats().unwrap_or_default();
        CacheStats {
            reach_hits: c.reach_hits.load(Ordering::Relaxed),
            reach_misses: c.reach_misses.load(Ordering::Relaxed),
            scope_hits: c.scope_hits.load(Ordering::Relaxed),
            scope_misses: c.scope_misses.load(Ordering::Relaxed),
            scope_interned: c.scope_interned.load(Ordering::Relaxed),
            scope_deduped: c.scope_deduped.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            invalidated: c.epoch_invalidated.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes() as u64,
            set_repr: self.repr,
            nodes: node.nodes,
            node_dedup_hits: node.dedup_hits,
            node_fresh: node.fresh_nodes,
            node_memo_hits: node.memo_hits,
        }
    }

    /// Approximate resident heap bytes of the currently cached
    /// structures; see [`CacheStats::resident_bytes`]. Stale-epoch
    /// entries are already purged eagerly by
    /// [`advance_epoch`](KnowledgeCache::advance_epoch), so everything
    /// resident is counted. Interned scope columns shared by several
    /// keys are counted once, by `Arc` identity.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex is poisoned.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        let reach: usize = self
            .reach
            .lock()
            .expect("knowledge cache poisoned")
            .values()
            .flatten()
            .map(|(k, _, r)| r.approx_bytes() + sel_bytes(&k.sel))
            .sum();
        let scopes = self.scopes.lock().expect("knowledge cache poisoned");
        // The pool holds every distinct column vector exactly once (all
        // by_key entries alias pool Arcs), so walking it counts shared
        // columns once. Shared-backend entries hold root vectors; their
        // word content lives in the node table, counted below.
        let columns: usize = scopes
            .pool
            .values()
            .flatten()
            .map(|cols| cols.iter().map(Bitset::approx_bytes).sum::<usize>())
            .sum();
        let keys: usize = scopes
            .by_key
            .values()
            .flatten()
            .map(|(k, _, v)| {
                sel_bytes(&k.sel)
                    + match v {
                        ScopeEntry::Dense(_) => 0,
                        ScopeEntry::Shared { roots, .. } => {
                            roots.len() * std::mem::size_of::<SharedWords>()
                        }
                    }
            })
            .sum();
        let table = self.nodes.as_ref().map_or(0, |t| {
            t.lock().expect("node table poisoned").approx_bytes()
        });
        reach + columns + keys + table
    }

    /// The cache's current epoch. All entries served by the cache were
    /// inserted under this epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Starts a new epoch, invalidating every **point-indexed** entry:
    /// reachability structures and scope columns are bitsets over the
    /// points of one generated system, so when that system grows (the
    /// incremental engine's horizon extension) they are dimensionally
    /// stale — crucially including the content-independent keys
    /// (`Everyone`, `Nonfaulty`), which would otherwise silently hit
    /// across horizons. Purged entries are counted in
    /// [`CacheStats::invalidated`]; hit/miss history, the cache handle,
    /// and its clones all survive. Pure-past artifacts of the wider
    /// engine (interned sim-layer views) are untouched by design — they
    /// live outside this cache precisely because horizon growth preserves
    /// them.
    ///
    /// Returns the new epoch.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex is poisoned.
    pub fn advance_epoch(&self) -> u64 {
        let mut reach = self.reach.lock().expect("knowledge cache poisoned");
        let mut scopes = self.scopes.lock().expect("knowledge cache poisoned");
        let dropped = reach.values().map(Vec::len).sum::<usize>()
            + scopes.by_key.values().map(Vec::len).sum::<usize>();
        reach.clear();
        scopes.by_key.clear();
        scopes.pool.clear();
        scopes.shared_pool.clear();
        // Every node-table root is referenced only by the entries just
        // purged (and by evaluator memos, which the borrow discipline
        // pins to the pre-extension system), so the table goes with
        // them — a new point space starts from an empty table.
        if let Some(table) = &self.nodes {
            table.lock().expect("node table poisoned").clear();
        }
        self.counters
            .epoch_invalidated
            .fetch_add(dropped as u64, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Drops every cached structure (e.g. to bound memory between
    /// scenarios when reusing one cache handle). Counters are preserved.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex is poisoned.
    pub fn clear(&self) {
        self.reach.lock().expect("knowledge cache poisoned").clear();
        let mut scopes = self.scopes.lock().expect("knowledge cache poisoned");
        scopes.by_key.clear();
        scopes.pool.clear();
        scopes.shared_pool.clear();
        if let Some(table) = &self.nodes {
            table.lock().expect("node table poisoned").clear();
        }
    }

    /// Counts a lookup answered by an evaluator-local memo, so
    /// [`stats`](KnowledgeCache::stats) reflects all saved work.
    pub(crate) fn note_local_hit(&self, scope: bool) {
        let counter = if scope {
            &self.counters.scope_hits
        } else {
            &self.counters.reach_hits
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn get(&self, key: &HashedReachKey) -> Option<Arc<Reachability>> {
        let found = bucket_get(
            &self.reach.lock().expect("knowledge cache poisoned"),
            key,
            self.epoch(),
        );
        let counter = if found.is_some() {
            &self.counters.reach_hits
        } else {
            &self.counters.reach_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    pub(crate) fn insert(&self, key: &HashedReachKey, value: Arc<Reachability>) {
        bucket_insert(
            &mut self.reach.lock().expect("knowledge cache poisoned"),
            key,
            self.epoch(),
            value,
        );
    }

    pub(crate) fn get_scopes(&self, key: &HashedReachKey) -> Option<ScopeColumns> {
        let found = bucket_get(
            &self.scopes.lock().expect("knowledge cache poisoned").by_key,
            key,
            self.epoch(),
        );
        let counter = if found.is_some() {
            &self.counters.scope_hits
        } else {
            &self.counters.scope_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        // Shared entries are materialized back to dense columns outside
        // the scope lock (the evaluator memoizes the result, so each
        // evaluator pays for a set at most once).
        found.map(|entry| match entry {
            ScopeEntry::Dense(cols) => cols,
            ScopeEntry::Shared { roots, bits } => {
                let table = self
                    .nodes
                    .as_ref()
                    .expect("shared scope entries exist only on shared-backend caches")
                    .lock()
                    .expect("node table poisoned");
                Arc::new(
                    roots
                        .iter()
                        .map(|&sw| {
                            let mut column = Bitset::new_false(bits);
                            table.materialize_into(sw, column.words_mut());
                            column
                        })
                        .collect(),
                )
            }
        })
    }

    /// Inserts freshly built scope columns under `key`, interning them by
    /// content first: if an identical column vector is already pooled,
    /// the shared `Arc` is stored (and returned) instead of `value`.
    ///
    /// Under the shared backend the columns are interned into the node
    /// table and only their roots are stored — no dense copy is
    /// retained — and the caller's `value` is returned for its local
    /// memo.
    pub(crate) fn insert_scopes(&self, key: &HashedReachKey, value: ScopeColumns) -> ScopeColumns {
        if let Some(table) = &self.nodes {
            let roots: Vec<SharedWords> = {
                let mut table = table.lock().expect("node table poisoned");
                value.iter().map(|b| table.intern_words(b.words())).collect()
            };
            let bits = value.first().map_or(0, Bitset::len);
            let mut store = self.scopes.lock().expect("knowledge cache poisoned");
            // Roots are canonical, so content dedup is set membership.
            let counter = if store.shared_pool.insert(roots.clone()) {
                &self.counters.scope_interned
            } else {
                &self.counters.scope_deduped
            };
            counter.fetch_add(1, Ordering::Relaxed);
            bucket_insert(
                &mut store.by_key,
                key,
                self.epoch(),
                ScopeEntry::Shared {
                    roots: Arc::new(roots),
                    bits,
                },
            );
            return value;
        }
        let mut hasher = DefaultHasher::new();
        value.hash(&mut hasher);
        let content = hasher.finish();
        let mut store = self.scopes.lock().expect("knowledge cache poisoned");
        let pooled = store.pool.entry(content).or_default();
        let interned = match pooled.iter().find(|existing| ***existing == **value) {
            Some(existing) => {
                self.counters.scope_deduped.fetch_add(1, Ordering::Relaxed);
                Arc::clone(existing)
            }
            None => {
                pooled.push(Arc::clone(&value));
                self.counters.scope_interned.fetch_add(1, Ordering::Relaxed);
                value
            }
        };
        bucket_insert(
            &mut store.by_key,
            key,
            self.epoch(),
            ScopeEntry::Dense(Arc::clone(&interned)),
        );
        interned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A key under the full-information exchange fingerprint (the tests'
    /// default system shape).
    fn key(sel: ReachSel) -> HashedReachKey {
        HashedReachKey::new(ReachKey {
            exchange: eba_model::ExchangeKind::FullInformation.fingerprint(),
            symmetry: 0,
            sel,
        })
    }

    #[test]
    fn symmetry_fence_separates_quotient_and_unreduced_entries() {
        let cache = KnowledgeCache::new();
        let unreduced = key(ReachSel::Nonfaulty);
        let quotient = HashedReachKey::new(ReachKey {
            exchange: eba_model::ExchangeKind::FullInformation.fingerprint(),
            symmetry: 0xdead_beef,
            sel: ReachSel::Nonfaulty,
        });
        cache.insert_scopes(&unreduced, Arc::new(vec![Bitset::new_false(8)]));
        assert!(cache.get_scopes(&unreduced).is_some());
        assert!(
            cache.get_scopes(&quotient).is_none(),
            "quotient keys must not hit unreduced entries"
        );
    }

    #[test]
    fn scope_interning_dedupes_identical_columns() {
        let cache = KnowledgeCache::new();
        let cols = |bit: bool| {
            let mut b = Bitset::new_false(10);
            b.set(3, bit);
            Arc::new(vec![b])
        };
        let key_a = key(ReachSel::Nonfaulty);
        let key_b = key(ReachSel::NonfaultyAnd(vec![Box::from([])]));
        let a = cache.insert_scopes(&key_a, cols(true));
        let b = cache.insert_scopes(&key_b, cols(true));
        assert!(Arc::ptr_eq(&a, &b), "equal contents must share one Arc");
        let c = cache.insert_scopes(&key_a, cols(false));
        assert!(!Arc::ptr_eq(&a, &c));
        let stats = cache.stats();
        assert_eq!(stats.scope_interned, 2);
        assert_eq!(stats.scope_deduped, 1);
        // Both keys resolve to the shared entry.
        assert!(Arc::ptr_eq(&cache.get_scopes(&key_b).unwrap(), &b));
    }

    #[test]
    fn advance_epoch_invalidates_point_indexed_entries() {
        let cache = KnowledgeCache::new();
        assert_eq!(cache.epoch(), 0);
        let key = key(ReachSel::Everyone);
        cache.insert_scopes(&key, Arc::new(vec![Bitset::new_false(8)]));
        assert!(cache.get_scopes(&key).is_some());

        assert_eq!(cache.advance_epoch(), 1);
        assert_eq!(cache.epoch(), 1);
        // The content-independent key must NOT hit across epochs: the old
        // columns are sized to the old system.
        assert!(cache.get_scopes(&key).is_none());
        let stats = cache.stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.invalidated, 1);

        // Fresh inserts under the new epoch serve normally.
        cache.insert_scopes(&key, Arc::new(vec![Bitset::new_false(16)]));
        assert!(cache.get_scopes(&key).is_some());
    }

    #[test]
    fn epoch_is_shared_by_clones() {
        let cache = KnowledgeCache::new();
        let clone = cache.clone();
        cache.advance_epoch();
        assert_eq!(clone.epoch(), 1);
        assert_eq!(clone.stats().epoch, 1);
    }

    #[test]
    fn resident_bytes_track_live_entries_and_share_interned_columns() {
        let cache = KnowledgeCache::new();
        assert_eq!(cache.resident_bytes(), 0);
        let cols = Arc::new(vec![Bitset::new_false(1024)]);
        let per_vector = cols.iter().map(Bitset::approx_bytes).sum::<usize>();
        cache.insert_scopes(&key(ReachSel::Nonfaulty), Arc::clone(&cols));
        // A second key with identical content shares the interned Arc:
        // resident bytes must not double.
        cache.insert_scopes(
            &key(ReachSel::NonfaultyAnd(vec![Box::from([])])),
            Arc::new(vec![Bitset::new_false(1024)]),
        );
        assert_eq!(cache.resident_bytes(), per_vector);
        assert_eq!(cache.stats().resident_bytes, per_vector as u64);
        // Epoch advance purges everything point-indexed.
        cache.advance_epoch();
        assert_eq!(cache.resident_bytes(), 0);
        let rendered = cache.stats().to_string();
        assert!(rendered.contains("resident ~0 bytes"), "{rendered}");
    }

    #[test]
    fn shared_backend_round_trips_columns_and_counts_node_bytes() {
        let cache = KnowledgeCache::with_repr(SetReprKind::Shared);
        assert_eq!(cache.set_repr(), SetReprKind::Shared);
        let mut column = Bitset::new_false(1000);
        column.set(3, true);
        column.set(999, true);
        let cols = Arc::new(vec![column.clone(), Bitset::new_true(1000)]);
        let k = key(ReachSel::Nonfaulty);
        cache.insert_scopes(&k, Arc::clone(&cols));
        // Materialization rebuilds the exact dense columns.
        let back = cache.get_scopes(&k).expect("entry was just inserted");
        assert_eq!(*back, *cols);
        // The node table is resident and accounted: CacheStats must carry
        // node counters and resident_bytes must include the table.
        let stats = cache.stats();
        assert_eq!(stats.set_repr, SetReprKind::Shared);
        assert!(stats.nodes > 0, "interning must populate the table");
        let table_bytes = cache
            .node_stats()
            .expect("shared caches expose node stats")
            .bytes;
        assert!(table_bytes > 0);
        assert!(
            stats.resident_bytes >= table_bytes,
            "resident accounting must include the node table \
             ({} < {table_bytes})",
            stats.resident_bytes
        );
        let rendered = stats.to_string();
        assert!(rendered.contains("shared repr"), "{rendered}");
        // Dense caches must not mention the shared backend at all: the
        // dense rendering stays byte-identical to earlier releases.
        let dense = KnowledgeCache::new().stats().to_string();
        assert!(!dense.contains("shared repr"), "{dense}");
    }

    #[test]
    fn shared_backend_dedups_identical_columns_by_root() {
        let cache = KnowledgeCache::with_repr(SetReprKind::Shared);
        let cols = || {
            let mut b = Bitset::new_false(128);
            b.set(64, true);
            Arc::new(vec![b])
        };
        cache.insert_scopes(&key(ReachSel::Nonfaulty), cols());
        cache.insert_scopes(&key(ReachSel::NonfaultyAnd(vec![Box::from([])])), cols());
        let stats = cache.stats();
        assert_eq!(stats.scope_interned, 1);
        assert_eq!(stats.scope_deduped, 1);
        assert!(stats.node_dedup_hits > 0, "re-interning must share nodes");
    }

    #[test]
    fn epoch_advance_purges_the_node_table() {
        let cache = KnowledgeCache::with_repr(SetReprKind::Shared);
        cache.insert_scopes(&key(ReachSel::Everyone), Arc::new(vec![Bitset::new_true(256)]));
        assert!(cache.stats().nodes > 0);
        cache.advance_epoch();
        assert_eq!(cache.stats().nodes, 0, "stale roots must not survive");
        assert_eq!(cache.resident_bytes(), 0);
        // Reusable after the purge.
        cache.insert_scopes(&key(ReachSel::Everyone), Arc::new(vec![Bitset::new_true(300)]));
        assert!(cache.get_scopes(&key(ReachSel::Everyone)).is_some());
    }

    #[test]
    fn dense_resident_bytes_count_registered_family_keys() {
        let cache = KnowledgeCache::new();
        let family = vec![Box::from([1u64, 2, 3]), Box::from([4u64])];
        let words: usize = family.iter().map(|w: &Box<[u64]>| w.len() * 8).sum();
        cache.insert_scopes(
            &key(ReachSel::NonfaultyAnd(family)),
            Arc::new(vec![Bitset::new_false(64)]),
        );
        let resident = cache.resident_bytes();
        assert!(
            resident >= words + Bitset::new_false(64).approx_bytes(),
            "family key content must be accounted ({resident})"
        );
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let cache = KnowledgeCache::new();
        let key = key(ReachSel::Everyone);
        assert!(cache.get_scopes(&key).is_none());
        cache.insert_scopes(&key, Arc::new(Vec::new()));
        assert!(cache.get_scopes(&key).is_some());
        cache.note_local_hit(true);
        let stats = cache.stats();
        assert_eq!(stats.scope_misses, 1);
        assert_eq!(stats.scope_hits, 2);
        let rendered = stats.to_string();
        assert!(
            rendered.contains("scope columns 2 hits / 1 misses"),
            "{rendered}"
        );
    }
}
