//! Dense bitsets over point indices.
//!
//! The streaming set operations run on the 4-wide unrolled word-block
//! kernels of [`crate::kernels`] (the stable-Rust shape LLVM
//! auto-vectorizes), with this module keeping the bit-level semantics:
//! length checks and the canonical-tail invariant (bits at and above
//! `len` stay zero).

use crate::kernels;
use std::fmt;
use std::ops::{BitAndAssign, BitOrAssign};

/// A fixed-length dense bitset, used to represent the set of points of a
/// generated system satisfying a formula.
///
/// # Example
///
/// ```
/// use eba_kripke::Bitset;
///
/// let mut s = Bitset::new_false(10);
/// s.set(3, true);
/// assert!(s.get(3));
/// assert_eq!(s.count_ones(), 1);
/// s.invert();
/// assert_eq!(s.count_ones(), 9);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// Creates a bitset of `len` bits, all `false`.
    #[must_use]
    pub fn new_false(len: usize) -> Self {
        Bitset {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bitset of `len` bits, all `true`.
    #[must_use]
    pub fn new_true(len: usize) -> Self {
        let mut s = Bitset {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        s.clear_tail();
        s
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of `true` bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        kernels::count_ones(&self.words)
    }

    /// Approximate resident heap bytes of the backing word vector.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Whether every bit is `true`.
    #[must_use]
    pub fn all(&self) -> bool {
        if self.len == 0 {
            return true;
        }
        let tail = self.len % 64;
        let full = if tail == 0 {
            self.words.len()
        } else {
            self.words.len() - 1
        };
        self.words[..full].iter().all(|&w| w == u64::MAX)
            && (tail == 0 || self.words[full] == (1u64 << tail) - 1)
    }

    /// Whether any bit is `true`.
    #[must_use]
    pub fn any(&self) -> bool {
        kernels::any(&self.words)
    }

    /// Flips every bit in place.
    pub fn invert(&mut self) {
        kernels::not_assign(&mut self.words);
        self.clear_tail();
    }

    /// The index of the first `true` bit, if any.
    #[must_use]
    pub fn first_one(&self) -> Option<usize> {
        for (k, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(k * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The index of the first `false` bit, if any.
    #[must_use]
    pub fn first_zero(&self) -> Option<usize> {
        for (k, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                let idx = k * 64 + w.trailing_ones() as usize;
                if idx < self.len {
                    return Some(idx);
                }
            }
        }
        None
    }

    /// Iterates over the indices of `true` bits in increasing order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(k, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(k * 64 + bit)
                }
            })
        })
    }

    /// Iterates over the indices of `false` bits in increasing order,
    /// word-parallel: whole `u64::MAX` words are skipped in one compare
    /// and set bits are found with `trailing_zeros` on the complement.
    pub fn zeros(&self) -> impl Iterator<Item = usize> + '_ {
        let len = self.len;
        self.words.iter().enumerate().flat_map(move |(k, &w)| {
            // Complement, masking bits past `len` in the tail word so they
            // do not show up as spurious zeros.
            let mut w = !w;
            let tail = len.saturating_sub(k * 64);
            if tail < 64 {
                w &= (1u64 << tail) - 1;
            }
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(k * 64 + bit)
                }
            })
        })
    }

    /// Sets every bit in `start..end` to `true`, whole words at a time.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len`.
    pub fn set_range(&mut self, start: usize, end: usize) {
        assert!(start <= end && end <= self.len, "range out of bounds");
        if start == end {
            return;
        }
        let (first, last) = (start / 64, (end - 1) / 64);
        let head = !0u64 << (start % 64);
        let tail = !0u64 >> (63 - (end - 1) % 64);
        if first == last {
            self.words[first] |= head & tail;
        } else {
            self.words[first] |= head;
            for w in &mut self.words[first + 1..last] {
                *w = u64::MAX;
            }
            self.words[last] |= tail;
        }
    }

    /// Mutable access to the backing words. Callers must keep the
    /// canonical-tail invariant: bits at and above `len` stay zero.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// The backing words (canonical: bits at and above `len` are zero,
    /// so equal sets have equal word vectors). This is what the shared
    /// set-representation backend interns.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// In-place `self &= (¬antecedent ∨ consequent)` — intersects `self`
    /// with the pointwise implication `antecedent → consequent`. This is
    /// the word-level form of one conjunct of `E_S φ`: a point survives
    /// unless the processor is in scope there (`antecedent`) and fails to
    /// believe (`¬consequent`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_implication(&mut self, antecedent: &Bitset, consequent: &Bitset) {
        assert_eq!(self.len, antecedent.len);
        assert_eq!(self.len, consequent.len);
        kernels::and_implication(&mut self.words, &antecedent.words, &consequent.words);
        // `&=` cannot set bits, so canonical inputs stay canonical; the
        // clear keeps that true even for a non-canonical `self`.
        self.clear_tail();
    }

    /// In-place `self |= (a ∧ b)` — unions the pointwise conjunction into
    /// `self`. This is the word-level form of one disjunct of `S_S φ`:
    /// a point joins when the processor is in scope (`a`) and believes
    /// (`b`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_conjunction(&mut self, a: &Bitset, b: &Bitset) {
        assert_eq!(self.len, a.len);
        assert_eq!(self.len, b.len);
        kernels::or_conjunction(&mut self.words, &a.words, &b.words);
    }

    /// In-place `self ∧= ¬other` — removes every index set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_not(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len);
        kernels::andnot_assign(&mut self.words, &other.words);
        // `&=` cannot set bits, so canonical inputs stay canonical; the
        // clear keeps that true even for a non-canonical `self`.
        self.clear_tail();
    }

    /// Whether `self ⊆ other` (as sets of `true` indices).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn is_subset(&self, other: &Bitset) -> bool {
        assert_eq!(self.len, other.len);
        kernels::is_subset(&self.words, &other.words)
    }
}

impl BitAndAssign<&Bitset> for Bitset {
    fn bitand_assign(&mut self, rhs: &Bitset) {
        assert_eq!(self.len, rhs.len);
        kernels::and_assign(&mut self.words, &rhs.words);
    }
}

impl BitOrAssign<&Bitset> for Bitset {
    fn bitor_assign(&mut self, rhs: &Bitset) {
        assert_eq!(self.len, rhs.len);
        kernels::or_assign(&mut self.words, &rhs.words);
    }
}

impl fmt::Debug for Bitset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitset[{}; {} ones]", self.len, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_false_and_true() {
        let f = Bitset::new_false(100);
        assert_eq!(f.count_ones(), 0);
        assert!(!f.any());
        let t = Bitset::new_true(100);
        assert_eq!(t.count_ones(), 100);
        assert!(t.all());
    }

    #[test]
    fn set_get() {
        let mut s = Bitset::new_false(70);
        s.set(0, true);
        s.set(69, true);
        assert!(s.get(0) && s.get(69) && !s.get(35));
        s.set(0, false);
        assert!(!s.get(0));
        assert_eq!(s.count_ones(), 1);
    }

    #[test]
    fn invert_respects_tail() {
        let mut s = Bitset::new_false(65);
        s.invert();
        assert_eq!(s.count_ones(), 65);
        assert!(s.all());
    }

    #[test]
    fn first_one_and_zero() {
        let mut s = Bitset::new_false(130);
        assert_eq!(s.first_one(), None);
        assert_eq!(s.first_zero(), Some(0));
        s.set(128, true);
        assert_eq!(s.first_one(), Some(128));
        let mut t = Bitset::new_true(130);
        assert_eq!(t.first_zero(), None);
        t.set(129, false);
        assert_eq!(t.first_zero(), Some(129));
    }

    #[test]
    fn ones_iterator() {
        let mut s = Bitset::new_false(200);
        for i in [3, 64, 150] {
            s.set(i, true);
        }
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![3, 64, 150]);
    }

    #[test]
    fn boolean_ops() {
        let mut a = Bitset::new_false(10);
        a.set(1, true);
        a.set(2, true);
        let mut b = Bitset::new_false(10);
        b.set(2, true);
        b.set(3, true);
        let mut and = a.clone();
        and &= &b;
        assert_eq!(and.ones().collect::<Vec<_>>(), vec![2]);
        let mut or = a.clone();
        or |= &b;
        assert_eq!(or.ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(and.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn and_implication_matches_bitwise_definition() {
        // 70 bits so the tail word is partial: and_implication's `!a`
        // must not resurrect tail bits.
        let mut scope = Bitset::new_false(70);
        let mut believes = Bitset::new_false(70);
        for i in 0..70 {
            if i % 2 == 0 {
                scope.set(i, true);
            }
            if i % 3 == 0 {
                believes.set(i, true);
            }
        }
        let mut out = Bitset::new_true(70);
        out.and_implication(&scope, &believes);
        for i in 0..70 {
            assert_eq!(out.get(i), !scope.get(i) || believes.get(i), "bit {i}");
        }
        // Canonical tail: equality with a reconstructed bitset holds.
        let mut expect = Bitset::new_false(70);
        for i in 0..70 {
            expect.set(i, !scope.get(i) || believes.get(i));
        }
        assert_eq!(out, expect);
    }

    #[test]
    fn or_conjunction_matches_bitwise_definition() {
        let mut scope = Bitset::new_false(70);
        let mut believes = Bitset::new_false(70);
        for i in 0..70 {
            if i % 2 == 1 {
                scope.set(i, true);
            }
            if i % 5 == 0 {
                believes.set(i, true);
            }
        }
        let mut out = Bitset::new_false(70);
        out.or_conjunction(&scope, &believes);
        for i in 0..70 {
            assert_eq!(out.get(i), scope.get(i) && believes.get(i), "bit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let s = Bitset::new_false(3);
        let _ = s.get(3);
    }

    #[test]
    fn zeros_iterator_respects_tail() {
        // 130 bits: two full words plus a 2-bit tail, so the complement
        // must not leak phantom zeros past `len`.
        let mut s = Bitset::new_true(130);
        for i in [0, 63, 64, 129] {
            s.set(i, false);
        }
        assert_eq!(s.zeros().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        let t = Bitset::new_true(130);
        assert_eq!(t.zeros().count(), 0);
        let f = Bitset::new_false(70);
        assert_eq!(f.zeros().count(), 70);
    }

    #[test]
    fn set_range_matches_per_bit_fill() {
        for (start, end) in [(0, 0), (0, 64), (3, 7), (60, 70), (0, 200), (63, 129)] {
            let mut fast = Bitset::new_false(200);
            fast.set_range(start, end);
            let mut slow = Bitset::new_false(200);
            for i in start..end {
                slow.set(i, true);
            }
            assert_eq!(fast, slow, "range {start}..{end}");
        }
    }

    #[test]
    fn all_is_word_exact() {
        for len in [0, 1, 63, 64, 65, 128, 130] {
            let t = Bitset::new_true(len);
            assert!(t.all(), "all-true of length {len}");
            if len > 0 {
                let mut missing = Bitset::new_true(len);
                missing.set(len - 1, false);
                assert!(!missing.all(), "length {len} with last bit clear");
            }
        }
    }
}
