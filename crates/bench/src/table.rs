//! Minimal aligned-table rendering for experiment output.

use std::fmt::Write as _;

/// A simple text table: a header row plus data rows, rendered with
/// per-column alignment. Every experiment binary prints its results as
/// one or more of these so EXPERIMENTS.md can quote them verbatim.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let pad = w - cell.chars().count();
                let _ = write!(s, "| {}{} ", cell, " ".repeat(pad));
            }
            s.push('|');
            s
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let mut sep = String::new();
        for w in &widths {
            let _ = write!(sep, "|{}", "-".repeat(w + 2));
        }
        sep.push('|');
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats an `Option<f64>` with three decimals, `-` when absent.
#[must_use]
pub fn fmt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_owned(), |v| format!("{v:.3}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(["alpha".into(), "1".into()]);
        t.row(["b".into(), "23456".into()]);
        let rendered = t.render();
        assert!(rendered.contains("## demo"));
        assert!(rendered.contains("| alpha | 1     |"));
        assert!(rendered.contains("| b     | 23456 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(["only-one".into()]);
    }

    #[test]
    fn fmt_f64_handles_none() {
        assert_eq!(fmt_f64(None), "-");
        assert_eq!(fmt_f64(Some(1.5)), "1.500");
    }
}
